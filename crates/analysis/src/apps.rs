//! Application-requirement analysis.
//!
//! §4.1's cost-effectiveness argument rests on application needs: "the
//! network requirements of most applications such as 1080P video streaming
//! can already be met by Roam … the more cost-friendly Roam plan can
//! effectively serve as a viable alternative to the Mobility plan." This
//! module encodes a catalogue of application requirement profiles and
//! computes, for a throughput/RTT sample set, how often each application
//! would have been satisfied.

use serde::{Deserialize, Serialize};

/// One application's network requirements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRequirement {
    pub name: String,
    /// Sustained downlink throughput needed, Mbps.
    pub min_mbps: f64,
    /// Maximum tolerable RTT, ms (`f64::INFINITY` = insensitive).
    pub max_rtt_ms: f64,
}

impl AppRequirement {
    fn new(name: &str, min_mbps: f64, max_rtt_ms: f64) -> Self {
        Self {
            name: name.to_string(),
            min_mbps,
            max_rtt_ms,
        }
    }
}

/// The default application catalogue, ordered by increasing demand.
///
/// Bitrates follow the usual streaming-service recommendations; the
/// interactive entries carry RTT bounds.
pub fn default_catalogue() -> Vec<AppRequirement> {
    vec![
        AppRequirement::new("voice call", 0.1, 300.0),
        AppRequirement::new("web browsing", 2.0, 500.0),
        AppRequirement::new("HD video call", 3.5, 250.0),
        AppRequirement::new("1080p video streaming", 8.0, f64::INFINITY),
        AppRequirement::new("4K video streaming", 25.0, f64::INFINITY),
        AppRequirement::new("cloud gaming", 35.0, 80.0),
        AppRequirement::new("8K video streaming", 100.0, f64::INFINITY),
    ]
}

/// Fraction of `(mbps, rtt_ms)` samples satisfying an application's needs.
pub fn satisfaction(app: &AppRequirement, samples: &[(f64, f64)]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let ok = samples
        .iter()
        .filter(|(mbps, rtt)| *mbps >= app.min_mbps && *rtt <= app.max_rtt_ms)
        .count();
    ok as f64 / samples.len() as f64
}

/// Satisfaction of every catalogue entry: `(app name, fraction)`.
pub fn satisfaction_table(
    catalogue: &[AppRequirement],
    samples: &[(f64, f64)],
) -> Vec<(String, f64)> {
    catalogue
        .iter()
        .map(|a| (a.name.clone(), satisfaction(a, samples)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_ordered_by_demand() {
        let cat = default_catalogue();
        for w in cat.windows(2) {
            assert!(w[0].min_mbps <= w[1].min_mbps);
        }
        assert!(cat.iter().any(|a| a.name.contains("1080p")));
    }

    #[test]
    fn satisfaction_checks_both_dimensions() {
        let app = AppRequirement::new("x", 10.0, 100.0);
        let samples = [
            (50.0, 50.0),  // ok
            (5.0, 50.0),   // too slow
            (50.0, 200.0), // too laggy
            (9.9, 99.0),   // just too slow
        ];
        assert!((satisfaction(&app, &samples) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn roam_level_throughput_satisfies_1080p_mostly() {
        // The §4.1 argument: Roam's 75th-percentile 93 Mbps (here: a mix
        // with most samples well above 8 Mbps) satisfies 1080p streaming.
        let samples: Vec<(f64, f64)> = (0..100)
            .map(|i| if i < 25 { (4.0, 70.0) } else { (90.0, 70.0) })
            .collect();
        let cat = default_catalogue();
        let table = satisfaction_table(&cat, &samples);
        let get = |name: &str| {
            table
                .iter()
                .find(|(n, _)| n.contains(name))
                .map(|(_, f)| *f)
                .unwrap()
        };
        assert!(get("1080p") >= 0.75);
        assert!(get("8K") < get("1080p"));
    }

    #[test]
    fn empty_samples_yield_zero() {
        let app = AppRequirement::new("x", 1.0, 100.0);
        assert_eq!(satisfaction(&app, &[]), 0.0);
    }
}
