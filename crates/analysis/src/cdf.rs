//! Empirical cumulative distribution functions.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
///
/// Construction sorts once; evaluation and quantiles are then `O(log n)`.
/// Non-finite samples are rejected at construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples.
    ///
    /// # Panics
    /// Panics if any sample is NaN or infinite (they would poison every
    /// quantile silently).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "CDF samples must be finite"
        );
        // total_cmp, not partial_cmp().expect(): the assertion above is
        // the documented rejection point; the sort itself must stay
        // panic-free even if the two lines ever drift apart.
        samples.sort_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// `P(X ≤ x)`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `p`-quantile (`p ∈ [0, 1]`), with linear interpolation.
    ///
    /// Returns `None` on an empty sample.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let idx = p * (self.sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        Some(self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * (idx - lo as f64))
    }

    /// Median (`quantile(0.5)`).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Sample mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evaluates the CDF at `n` evenly spaced points over `[lo, hi]`,
    /// yielding `(x, P(X ≤ x))` pairs — the series a CDF plot draws.
    pub fn curve(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2 && hi > lo);
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_function() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.eval(0.5), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(2.5), 0.5);
        assert_eq!(c.eval(4.0), 1.0);
        assert_eq!(c.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let c = Cdf::new(vec![0.0, 10.0]);
        assert_eq!(c.quantile(0.0), Some(0.0));
        assert_eq!(c.quantile(0.5), Some(5.0));
        assert_eq!(c.quantile(1.0), Some(10.0));
    }

    #[test]
    fn summary_statistics() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(c.median(), Some(2.0));
        assert_eq!(c.mean(), Some(2.0));
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(3.0));
    }

    #[test]
    fn empty_cdf() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.eval(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.mean(), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_samples_rejected() {
        let _ = Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_samples_rejected() {
        // The documented contract covers ±∞, not just NaN: an infinite
        // sample would drag every upper quantile to ∞ silently.
        let _ = Cdf::new(vec![1.0, f64::INFINITY]);
    }

    #[test]
    fn signed_zeros_sort_without_panicking() {
        let c = Cdf::new(vec![0.0, -0.0, 1.0]);
        assert_eq!(c.min(), Some(-0.0));
        assert_eq!(c.eval(0.0), 2.0 / 3.0);
    }

    #[test]
    fn curve_is_monotone() {
        let c = Cdf::new((0..100).map(|i| (i * 7 % 31) as f64).collect());
        let curve = c.curve(0.0, 31.0, 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.len(), 50);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn eval_in_unit_interval(samples in prop::collection::vec(-1e6..1e6f64, 0..200), x in -2e6..2e6f64) {
                let c = Cdf::new(samples);
                let p = c.eval(x);
                prop_assert!((0.0..=1.0).contains(&p));
            }

            #[test]
            fn eval_is_monotone(samples in prop::collection::vec(-1e3..1e3f64, 1..100), a in -2e3..2e3f64, b in -2e3..2e3f64) {
                let c = Cdf::new(samples);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(c.eval(lo) <= c.eval(hi));
            }

            #[test]
            fn quantile_is_monotone(samples in prop::collection::vec(-1e3..1e3f64, 1..100), p in 0.0..1.0f64, q in 0.0..1.0f64) {
                let c = Cdf::new(samples);
                let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
                prop_assert!(c.quantile(lo).unwrap() <= c.quantile(hi).unwrap());
            }

            #[test]
            fn quantile_within_range(samples in prop::collection::vec(-1e3..1e3f64, 1..100), p in 0.0..1.0f64) {
                let c = Cdf::new(samples.clone());
                let v = c.quantile(p).unwrap();
                prop_assert!(v >= c.min().unwrap() && v <= c.max().unwrap());
            }

            #[test]
            fn median_splits_mass(samples in prop::collection::vec(-1e3..1e3f64, 1..100)) {
                let c = Cdf::new(samples);
                let m = c.median().unwrap();
                // At least half the mass lies at or below the median.
                prop_assert!(c.eval(m) >= 0.5 - 1e-9);
            }
        }
    }
}
