//! Performance-coverage levels and network combination (§5.2).

use serde::{Deserialize, Serialize};

/// The paper's four performance levels.
///
/// "The high-performance regions are characterized by throughput exceeding
/// 100 Mbps … medium … between 50 and 100 Mbps … low … between 20 and
/// 50 Mbps … very-low … under 20 Mbps."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CoverageLevel {
    VeryLow,
    Low,
    Medium,
    High,
}

impl CoverageLevel {
    /// All levels, worst first (the stacking order of Figure 9).
    pub const ALL: [CoverageLevel; 4] = [
        CoverageLevel::VeryLow,
        CoverageLevel::Low,
        CoverageLevel::Medium,
        CoverageLevel::High,
    ];

    /// Classifies a throughput sample, Mbps.
    ///
    /// NaN is a measurement-pipeline bug, not a throughput: it is rejected
    /// in debug builds and (since every `>` comparison on NaN is false)
    /// falls through to `VeryLow` in release. Aggregations must filter NaN
    /// *before* classifying — [`coverage_proportions`] does.
    pub fn of_mbps(mbps: f64) -> Self {
        debug_assert!(
            !mbps.is_nan(),
            "NaN throughput sample reached CoverageLevel::of_mbps"
        );
        if mbps > 100.0 {
            CoverageLevel::High
        } else if mbps > 50.0 {
            CoverageLevel::Medium
        } else if mbps > 20.0 {
            CoverageLevel::Low
        } else {
            CoverageLevel::VeryLow
        }
    }

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            CoverageLevel::VeryLow => "Very Low",
            CoverageLevel::Low => "Low",
            CoverageLevel::Medium => "Medium",
            CoverageLevel::High => "High",
        }
    }
}

/// Proportion of samples in each level, ordered as [`CoverageLevel::ALL`].
/// Empty input yields all zeros.
///
/// NaN samples are *skipped* — they carry no throughput information, and
/// silently binning them as `VeryLow` would inflate the poor-coverage bar
/// of Fig. 8/9. Proportions are normalized by the NaN-free count, so they
/// still sum to 1 whenever at least one sample is classifiable.
pub fn coverage_proportions(mbps_samples: &[f64]) -> [f64; 4] {
    let mut counts = [0usize; 4];
    let mut n = 0usize;
    for &v in mbps_samples {
        if v.is_nan() {
            continue;
        }
        n += 1;
        let idx = match CoverageLevel::of_mbps(v) {
            CoverageLevel::VeryLow => 0,
            CoverageLevel::Low => 1,
            CoverageLevel::Medium => 2,
            CoverageLevel::High => 3,
        };
        counts[idx] += 1;
    }
    if n == 0 {
        return [0.0; 4];
    }
    counts.map(|c| c as f64 / n as f64)
}

/// Element-wise best across several aligned series — the §5.2 combination
/// bars (BestCL = best of the three cellular series; RM+CL, MOB+CL = a
/// Starlink series combined with the cellular best; MOB+ATT etc. for the
/// §6 "zero-effort switching" upper bound).
///
/// # Panics
/// Panics if the series lengths differ (they must be timestamp-aligned)
/// or no series is given.
pub fn best_of(series: &[&[f64]]) -> Vec<f64> {
    assert!(!series.is_empty(), "need at least one series");
    let len = series[0].len();
    assert!(
        series.iter().all(|s| s.len() == len),
        "series must be aligned to the same timestamps"
    );
    (0..len)
        .map(|i| {
            series
                .iter()
                .map(|s| s[i])
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_thresholds_match_paper() {
        assert_eq!(CoverageLevel::of_mbps(10.0), CoverageLevel::VeryLow);
        assert_eq!(CoverageLevel::of_mbps(20.0), CoverageLevel::VeryLow);
        assert_eq!(CoverageLevel::of_mbps(35.0), CoverageLevel::Low);
        assert_eq!(CoverageLevel::of_mbps(50.0), CoverageLevel::Low);
        assert_eq!(CoverageLevel::of_mbps(75.0), CoverageLevel::Medium);
        assert_eq!(CoverageLevel::of_mbps(100.0), CoverageLevel::Medium);
        assert_eq!(CoverageLevel::of_mbps(101.0), CoverageLevel::High);
    }

    #[test]
    fn proportions_partition() {
        let samples = [5.0, 30.0, 30.0, 70.0, 150.0, 150.0, 150.0, 150.0];
        let p = coverage_proportions(&samples);
        assert_eq!(p, [0.125, 0.25, 0.125, 0.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proportions_of_empty() {
        assert_eq!(coverage_proportions(&[]), [0.0; 4]);
    }

    #[test]
    fn proportions_skip_nan_samples() {
        // Pre-fix, the NaN landed in VeryLow ([0.5, 0, 0, 0.5]) and
        // inflated the poor-coverage bar; the policy is to drop it and
        // normalize by the classifiable count.
        let p = coverage_proportions(&[f64::NAN, 150.0]);
        assert_eq!(p, [0.0, 0.0, 0.0, 1.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // All-NaN input has nothing classifiable: all zeros, like empty.
        assert_eq!(coverage_proportions(&[f64::NAN; 3]), [0.0; 4]);
    }

    #[test]
    fn best_of_takes_pointwise_max() {
        let a = [10.0, 100.0, 5.0];
        let b = [50.0, 20.0, 5.0];
        let c = [5.0, 5.0, 80.0];
        assert_eq!(best_of(&[&a, &b, &c]), vec![50.0, 100.0, 80.0]);
    }

    #[test]
    fn best_of_dominates_every_input() {
        let a = [1.0, 7.0, 3.0, 9.0];
        let b = [4.0, 2.0, 8.0, 1.0];
        let best = best_of(&[&a, &b]);
        for i in 0..a.len() {
            assert!(best[i] >= a[i] && best[i] >= b[i]);
        }
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn best_of_rejects_misaligned() {
        let a = [1.0, 2.0];
        let b = [1.0];
        let _ = best_of(&[&a, &b]);
    }

    #[test]
    fn combination_never_reduces_high_coverage() {
        // The Figure 9 property: combining networks can only improve the
        // high-performance share.
        let sl = [150.0, 10.0, 150.0, 10.0];
        let cl = [10.0, 150.0, 10.0, 10.0];
        let combined = best_of(&[&sl, &cl]);
        let high = |s: &[f64]| coverage_proportions(s)[3];
        assert!(high(&combined) >= high(&sl).max(high(&cl)));
        assert_eq!(high(&combined), 0.75);
    }
}
