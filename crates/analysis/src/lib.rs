//! Analysis toolkit for the leo-cell measurement study.
//!
//! Pure statistics and rendering over plain numeric series — this crate
//! knows nothing about satellites or carriers, so every function here is
//! directly unit- and property-testable:
//!
//! * [`cdf`] — empirical distribution functions and quantiles (the paper's
//!   Figures 3 and 4 are CDF plots),
//! * [`stats`] — box statistics, means, improvement percentages,
//! * [`coverage`] — the §5.2 performance levels (<20 / 20–50 / 50–100 /
//!   >100 Mbps), per-network coverage proportions, and best-of-network
//!   > combination (BestCL, RM+CL, MOB+CL),
//! * [`render`] — terminal renderers: CDF plots, bar charts, box rows, and
//!   the Figure 1 heat strips.

pub mod apps;
pub mod cdf;
pub mod coverage;
pub mod render;
pub mod stats;
pub mod timeseries;

pub use apps::{default_catalogue, satisfaction, satisfaction_table, AppRequirement};
pub use cdf::Cdf;
pub use coverage::{best_of, coverage_proportions, CoverageLevel};
pub use render::{render_bars, render_box_row, render_cdf, render_heat_strip};
pub use stats::{improvement_pct, mean, BoxStats};
pub use timeseries::{
    coefficient_of_variation, fluctuation_index, longest_run_below, moving_average,
};
