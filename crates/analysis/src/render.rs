//! Terminal renderers for the paper's figure types.
//!
//! Each renderer returns a plain-text block using Unicode block elements —
//! good enough to eyeball every figure from `cargo run --example figures`
//! without a plotting stack.

use crate::cdf::Cdf;
use crate::stats::BoxStats;

/// Shade characters from empty to full.
const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];

fn shade(frac: f64) -> char {
    let idx = (frac.clamp(0.0, 1.0) * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[idx]
}

/// Renders a set of labelled CDFs as an ASCII plot (`height` rows ×
/// `width` cols). The x-axis spans `[0, x_max]`.
pub fn render_cdf(curves: &[(&str, &Cdf)], x_max: f64, width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 4 && x_max > 0.0);
    let mut grid = vec![vec![' '; width]; height];
    let marks = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    for (ci, (_, cdf)) in curves.iter().enumerate() {
        let mark = marks[ci % marks.len()];
        for (col, x) in (0..width).map(|c| (c, x_max * c as f64 / (width - 1) as f64)) {
            let p = cdf.eval(x);
            let row = ((1.0 - p) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = mark;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let y = 1.0 - i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y:4.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "     +{}\n      0{:>width$.0}\n",
        "-".repeat(width),
        x_max,
        width = width - 1
    ));
    for (ci, (label, _)) in curves.iter().enumerate() {
        out.push_str(&format!("      {} {}\n", marks[ci % marks.len()], label));
    }
    out
}

/// Renders labelled values as a horizontal bar chart.
pub fn render_bars(rows: &[(&str, f64)], width: usize) -> String {
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max).max(1e-12);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let filled = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:>label_w$} | {}{} {v:.1}\n",
            "█".repeat(filled),
            " ".repeat(width - filled.min(width)),
        ));
    }
    out
}

/// Renders one box-plot row on a `[0, x_max]` axis:
/// `min ─── [q1 ▓ median ▓ q3] ─── max`.
pub fn render_box_row(label: &str, stats: &BoxStats, x_max: f64, width: usize) -> String {
    let pos = |v: f64| ((v / x_max).clamp(0.0, 1.0) * (width - 1) as f64).round() as usize;
    let mut row = vec![' '; width];
    let (pmin, pq1, pmed, pq3, pmax) = (
        pos(stats.min),
        pos(stats.q1),
        pos(stats.median),
        pos(stats.q3),
        pos(stats.max),
    );
    for cell in row.iter_mut().take(pq1).skip(pmin) {
        *cell = '─';
    }
    for cell in row.iter_mut().take(pq3 + 1).skip(pq1) {
        *cell = '▓';
    }
    for cell in row.iter_mut().take(pmax + 1).skip(pq3 + 1) {
        *cell = '─';
    }
    row[pmed] = '┃';
    format!(
        "{label:>6} |{}| med {:.0}, mean {:.0}\n",
        row.into_iter().collect::<String>(),
        stats.median,
        stats.mean
    )
}

/// Renders a per-second series as a shaded heat strip (Figure 1's form):
/// darker = higher throughput, normalised to `v_max`.
pub fn render_heat_strip(label: &str, series: &[f64], v_max: f64, width: usize) -> String {
    assert!(v_max > 0.0 && width > 0);
    let chunk = (series.len() as f64 / width as f64).max(1.0);
    let mut strip = String::with_capacity(width);
    for i in 0..width.min(series.len()) {
        let a = (i as f64 * chunk) as usize;
        let b = (((i + 1) as f64 * chunk) as usize).min(series.len());
        if a >= series.len() || a >= b {
            break;
        }
        let avg = series[a..b].iter().sum::<f64>() / (b - a) as f64;
        strip.push(shade(avg / v_max));
    }
    format!("{label:>6} |{strip}|\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_render_contains_axes_and_legend() {
        let c = Cdf::new((0..100).map(|i| i as f64).collect());
        let s = render_cdf(&[("MOB", &c)], 100.0, 40, 10);
        assert!(s.contains("1.00 |"));
        assert!(s.contains("* MOB"));
        assert!(s.lines().count() >= 12);
    }

    #[test]
    fn bars_scale_to_max() {
        let s = render_bars(&[("A", 100.0), ("B", 50.0)], 20);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|&c| c == '█').count();
        assert_eq!(count(lines[0]), 20);
        assert_eq!(count(lines[1]), 10);
    }

    #[test]
    fn box_row_orders_glyphs() {
        let stats = BoxStats::from_samples(&[10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        let s = render_box_row("X", &stats, 100.0, 50);
        assert!(s.contains('┃'));
        assert!(s.contains('▓'));
        assert!(s.contains("med 30"));
    }

    #[test]
    fn heat_strip_darkness_tracks_value() {
        let hi = render_heat_strip("HI", &[100.0; 50], 100.0, 25);
        let lo = render_heat_strip("LO", &[5.0; 50], 100.0, 25);
        assert!(hi.matches('█').count() > 20);
        assert_eq!(lo.matches('█').count(), 0);
    }

    #[test]
    fn heat_strip_handles_short_series() {
        let s = render_heat_strip("S", &[50.0, 100.0], 100.0, 40);
        assert!(s.contains('|'));
    }
}
