//! Box statistics and simple aggregates.

use serde::{Deserialize, Serialize};

/// Five-number summary plus mean — what one box in a box plot shows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    pub mean: f64,
    pub n: usize,
}

impl BoxStats {
    /// Computes box statistics; `None` on an empty or non-finite input
    /// (NaN or ±∞ would silently poison every quantile).
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        // total_cmp rather than partial_cmp().expect(): the rejection
        // above makes NaN unreachable today, but a sort must never be
        // the thing that panics if that guard and this line drift apart
        // (the workspace-wide NaN-robustness convention).
        let mut v = samples.to_vec();
        v.sort_by(f64::total_cmp);
        let q = |p: f64| {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
        };
        Some(Self {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: v[v.len() - 1],
            mean: v.iter().sum::<f64>() / v.len() as f64,
            n: v.len(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Arithmetic mean; `None` on empty input.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

/// Percentage improvement of `new` over `base` (Figure 7's y-axis, and
/// §6's "improvement over the better path").
///
/// Returns 0 when the baseline is non-positive (no meaningful ratio).
pub fn improvement_pct(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_of_known_series() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.iqr(), 2.0);
        assert_eq!(s.n, 5);
    }

    #[test]
    fn box_stats_rejects_bad_input() {
        // The documented contract: non-finite inputs are *rejected*
        // (None), never total-ordered into the quantiles.
        assert!(BoxStats::from_samples(&[]).is_none());
        assert!(BoxStats::from_samples(&[1.0, f64::NAN]).is_none());
        assert!(BoxStats::from_samples(&[1.0, f64::INFINITY]).is_none());
        assert!(BoxStats::from_samples(&[f64::NEG_INFINITY, 1.0]).is_none());
        assert!(BoxStats::from_samples(&[f64::NAN]).is_none());
    }

    #[test]
    fn box_stats_handles_signed_zero() {
        // total_cmp orders -0.0 before 0.0; the summary must treat the
        // pair as numerically equal zeros rather than panic or reorder.
        let s = BoxStats::from_samples(&[0.0, -0.0, 0.0]).unwrap();
        assert_eq!(s.min, -0.0);
        assert_eq!(s.median, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn ordering_invariant() {
        let s = BoxStats::from_samples(&[9.0, 1.0, 5.0, 7.0, 3.0, 2.0]).unwrap();
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
    }

    #[test]
    fn improvement_percentages() {
        assert_eq!(improvement_pct(100.0, 150.0), 50.0);
        assert_eq!(improvement_pct(100.0, 100.0), 0.0);
        assert_eq!(improvement_pct(100.0, 50.0), -50.0);
        assert_eq!(improvement_pct(0.0, 50.0), 0.0);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn box_ordering_holds(samples in prop::collection::vec(-1e6..1e6f64, 1..200)) {
                let s = BoxStats::from_samples(&samples).unwrap();
                prop_assert!(s.min <= s.q1);
                prop_assert!(s.q1 <= s.median);
                prop_assert!(s.median <= s.q3);
                prop_assert!(s.q3 <= s.max);
                prop_assert!(s.mean >= s.min && s.mean <= s.max);
            }
        }
    }
}
