//! Time-series utilities: smoothing and stability metrics.
//!
//! §6 closes by suggesting future MPTCP schedulers could aim at "reducing
//! throughput fluctuations"; these metrics quantify exactly that, and the
//! scheduler ablation bench uses them to compare BLEST against the
//! LEO-aware scheduler.

/// Simple moving average with window `w` (output has the input's length;
/// the first `w-1` entries average the available prefix).
pub fn moving_average(series: &[f64], w: usize) -> Vec<f64> {
    assert!(w >= 1, "window must be positive");
    let mut out = Vec::with_capacity(series.len());
    let mut sum = 0.0;
    for i in 0..series.len() {
        sum += series[i];
        if i >= w {
            sum -= series[i - w];
        }
        let n = (i + 1).min(w);
        out.push(sum / n as f64);
    }
    out
}

/// Coefficient of variation (σ/μ); `None` for empty input or zero mean.
pub fn coefficient_of_variation(series: &[f64]) -> Option<f64> {
    if series.is_empty() {
        return None;
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    if mean.abs() < 1e-12 {
        return None;
    }
    let var = series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    Some(var.sqrt() / mean)
}

/// Fluctuation index: mean absolute step-to-step change, normalised by the
/// mean level. Lower = smoother delivery.
pub fn fluctuation_index(series: &[f64]) -> Option<f64> {
    if series.len() < 2 {
        return None;
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    if mean.abs() < 1e-12 {
        return None;
    }
    let mean_step =
        series.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (series.len() - 1) as f64;
    Some(mean_step / mean)
}

/// Longest run of consecutive entries below `threshold` — the §5/§6
/// "outage streak" view of a throughput series.
pub fn longest_run_below(series: &[f64], threshold: f64) -> usize {
    let mut best = 0;
    let mut cur = 0;
    for &v in series {
        if v < threshold {
            cur += 1;
            best = best.max(cur);
        } else {
            cur = 0;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_smooths() {
        let s = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let ma = moving_average(&s, 2);
        assert_eq!(ma.len(), s.len());
        assert_eq!(ma[0], 0.0);
        assert_eq!(ma[1], 5.0);
        assert_eq!(ma[5], 5.0);
        // Smoothed series fluctuates less.
        assert!(fluctuation_index(&ma).unwrap() < fluctuation_index(&s).unwrap());
    }

    #[test]
    fn cv_of_constant_is_zero() {
        assert_eq!(coefficient_of_variation(&[5.0; 10]), Some(0.0));
        assert_eq!(coefficient_of_variation(&[]), None);
        assert_eq!(coefficient_of_variation(&[0.0; 4]), None);
    }

    #[test]
    fn fluctuation_orders_smooth_vs_spiky() {
        let smooth = [100.0, 101.0, 99.0, 100.0, 100.0];
        let spiky = [100.0, 0.0, 200.0, 0.0, 200.0];
        assert!(fluctuation_index(&smooth).unwrap() < fluctuation_index(&spiky).unwrap());
        assert_eq!(fluctuation_index(&[1.0]), None);
    }

    #[test]
    fn longest_run_counts_streaks() {
        let s = [50.0, 5.0, 5.0, 5.0, 50.0, 5.0, 50.0];
        assert_eq!(longest_run_below(&s, 20.0), 3);
        assert_eq!(longest_run_below(&s, 1.0), 0);
        assert_eq!(longest_run_below(&[], 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = moving_average(&[1.0], 0);
    }
}
