//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Scheduler ablation** — all five MPTCP schedulers (including the
//!   future-work LEO-aware one) over the same Starlink+cellular trace
//!   pair; Criterion reports runtime, and the bench prints goodput and
//!   fluctuation once per scheduler so `cargo bench` output doubles as
//!   the ablation table.
//! * **Buffer ablation** — the §6 tuning knob swept across regimes.
//! * **Engine ablation** — analytic vs. packet-level iPerf on the same
//!   trace.

use criterion::{criterion_group, criterion_main, Criterion};
use leo_analysis::timeseries::fluctuation_index;
use leo_bench::bench_campaign;
use leo_core::mptcp_emu::{run_mptcp, run_single_path, BufferTuning};
use leo_dataset::record::NetworkId;
use leo_measure::iperf::{Engine, IperfConfig, IperfRunner};
use leo_transport::cc::CcAlgorithm;
use leo_transport::mptcp::SchedulerKind;
use std::hint::black_box;
use std::sync::Once;

fn window(n: NetworkId, secs: u64) -> leo_link::trace::LinkTrace {
    let c = bench_campaign();
    let timeline = c.samples.len() as u64;
    let t0 = (timeline / 3).min(timeline.saturating_sub(secs));
    c.traces[&n].0.window(t0, t0 + secs)
}

fn bench_scheduler_ablation(c: &mut Criterion) {
    let mob = window(NetworkId::Mobility, 60);
    let vz = window(NetworkId::Verizon, 60);

    static PRINT: Once = Once::new();
    PRINT.call_once(|| {
        eprintln!("\nscheduler ablation (60 s MOB+VZ window, tuned buffers):");
        for sched in SchedulerKind::ALL {
            let r = run_mptcp(&mob, &vz, sched, BufferTuning::Tuned, 9);
            eprintln!(
                "  {:<10} {:>6.1} Mbps, fluctuation {:.2}",
                sched.label(),
                r.mean_mbps,
                fluctuation_index(&r.per_second_mbps).unwrap_or(f64::NAN)
            );
        }
    });

    let mut g = c.benchmark_group("scheduler_ablation");
    g.sample_size(10);
    for sched in SchedulerKind::ALL {
        g.bench_function(sched.label(), |b| {
            b.iter(|| black_box(run_mptcp(&mob, &vz, sched, BufferTuning::Tuned, 9)))
        });
    }
    g.finish();
}

fn bench_buffer_ablation(c: &mut Criterion) {
    let mob = window(NetworkId::Mobility, 60);
    let att = window(NetworkId::Att, 60);

    static PRINT: Once = Once::new();
    PRINT.call_once(|| {
        eprintln!("\nbuffer ablation (60 s MOB+ATT window, BLEST):");
        let single = run_single_path(&mob, 9).mean_mbps;
        eprintln!("  single-path MOB: {single:.1} Mbps");
        for tuning in [BufferTuning::Default, BufferTuning::Tuned] {
            let r = run_mptcp(&mob, &att, SchedulerKind::Blest, tuning, 9);
            eprintln!("  {tuning:?}: {:.1} Mbps", r.mean_mbps);
        }
    });

    let mut g = c.benchmark_group("buffer_ablation");
    g.sample_size(10);
    for tuning in [BufferTuning::Default, BufferTuning::Tuned] {
        g.bench_function(format!("{tuning:?}"), |b| {
            b.iter(|| black_box(run_mptcp(&mob, &att, SchedulerKind::Blest, tuning, 9)))
        });
    }
    g.finish();
}

fn bench_engine_ablation(c: &mut Criterion) {
    let mob = window(NetworkId::Mobility, 30);
    let mut g = c.benchmark_group("engine_ablation");
    g.bench_function("analytic_udp", |b| {
        let runner = IperfRunner::new(IperfConfig::udp_down());
        b.iter(|| black_box(runner.run(&mob)))
    });
    g.sample_size(10);
    g.bench_function("packet_level_udp", |b| {
        let runner = IperfRunner::new(IperfConfig::udp_down().with_engine(Engine::PacketLevel));
        b.iter(|| black_box(runner.run(&mob)))
    });
    g.finish();
}

fn bench_cc_ablation(c: &mut Criterion) {
    // CUBIC vs BBR-lite on the same Starlink window, replayed through the
    // packet-level iPerf engine, which *keeps* the channel's loss series —
    // so the controllers face the real §4.1 conditions (unlike the MpShell
    // harness, which by the paper's methodology replays capacity only).
    let mob = window(NetworkId::Mobility, 45);

    static PRINT: Once = Once::new();
    PRINT.call_once(|| {
        eprintln!(
            "
cc ablation (45 s Starlink window incl. channel loss):"
        );
        for cc in [CcAlgorithm::Cubic, CcAlgorithm::BbrLite] {
            let runner = IperfRunner::new(
                IperfConfig::tcp_down_starlink(1)
                    .with_engine(Engine::PacketLevel)
                    .with_cc(cc),
            );
            eprintln!("  {cc:?}: {:.1} Mbps", runner.run(&mob).mean_mbps);
        }
    });

    let mut g = c.benchmark_group("cc_ablation");
    g.sample_size(10);
    for cc in [CcAlgorithm::Cubic, CcAlgorithm::BbrLite] {
        let runner = IperfRunner::new(
            IperfConfig::tcp_down_starlink(1)
                .with_engine(Engine::PacketLevel)
                .with_cc(cc),
        );
        let mob = mob.clone();
        g.bench_function(format!("{cc:?}"), |b| {
            b.iter(|| black_box(runner.run(&mob)))
        });
    }
    g.finish();
}

criterion_group!(
    ablation,
    bench_scheduler_ablation,
    bench_buffer_ablation,
    bench_engine_ablation,
    bench_cc_ablation,
);
criterion_main!(ablation);
