//! Microbenchmarks of the substrates: constellation sweeps, pipes, the
//! event loop, congestion control, and the campaign generator — the
//! ablation view of where simulation time goes.

use criterion::{criterion_group, criterion_main, Criterion};
use leo_cellular::carrier::Carrier;
use leo_cellular::deployment::Deployment;
use leo_geo::places::PlaceDb;
use leo_geo::point::GeoPoint;
use leo_link::mahimahi::MahimahiTrace;
use leo_netsim::{ConstPipe, Pipe, SimTime, TracePipe};
use leo_orbit::constellation::Constellation;
use leo_orbit::fastpath::{visible_satellites_fast, PropagationTable, VisibilitySearcher};
use leo_orbit::visibility::visible_satellites;
use leo_transport::cc::CcAlgorithm;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_constellation_sweep(c: &mut Criterion) {
    let ground = GeoPoint::new(44.5, -93.3);
    let mut g = c.benchmark_group("orbit_visible_satellites_sweep");
    for (name, constellation) in [
        ("shell1", Constellation::starlink()),
        ("starlink_full", Constellation::starlink_full()),
    ] {
        // The naive full-constellation scan: the pre-fast-path baseline
        // and the oracle the fast path must match bit-for-bit.
        g.bench_function(format!("{name}/naive"), |b| {
            let mut t = 0.0;
            b.iter(|| {
                t += 15.0;
                black_box(visible_satellites(&constellation, &ground, t, 25.0))
            })
        });
        // One-shot fast path: plane pruning over a prebuilt table, no
        // temporal coherence (windows rebuilt every query).
        let table = PropagationTable::new(&constellation);
        g.bench_function(format!("{name}/fast_oneshot"), |b| {
            let mut t = 0.0;
            b.iter(|| {
                t += 15.0;
                black_box(visible_satellites_fast(&table, &ground, t, 25.0))
            })
        });
        // Coherent searcher at the drive model's 1 Hz sampling: cached
        // windows amortise the rebuild across consecutive queries.
        let mut searcher = VisibilitySearcher::new(&constellation);
        let mut views = Vec::new();
        g.bench_function(format!("{name}/fast_searcher_1hz"), |b| {
            let mut t = 0.0;
            b.iter(|| {
                t += 1.0;
                searcher.visible_into(&ground, t, 25.0, &mut views);
                black_box(views.len())
            })
        });
    }
    g.finish();
}

fn bench_deployment_query(c: &mut Criterion) {
    let places = PlaceDb::five_state_corridor();
    let corridor = vec![GeoPoint::new(44.95, -93.2), GeoPoint::new(41.88, -87.63)];
    let dep = Deployment::generate(Carrier::Verizon, &places, &corridor, 1);
    let p = GeoPoint::new(43.4, -90.2);
    c.bench_function("cellular_nearest_sites", |b| {
        b.iter(|| black_box(dep.nearest_sites(&p, 4)))
    });
}

fn bench_pipes(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipes");
    g.bench_function("const_pipe_offer", |b| {
        let mut pipe = ConstPipe::new(100.0, SimTime::from_millis(20), 0.01, 1 << 20);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut t = 0u64;
        b.iter(|| {
            t += 120;
            black_box(pipe.offer(1500, SimTime::from_micros(t), &mut rng))
        })
    });
    g.bench_function("trace_pipe_offer", |b| {
        let trace = MahimahiTrace::from_capacity_series(&vec![100.0; 60]);
        let mut pipe = TracePipe::new(trace, SimTime::from_millis(20), 1 << 20);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut t = 0u64;
        b.iter(|| {
            t += 120;
            black_box(pipe.offer(1500, SimTime::from_micros(t), &mut rng))
        })
    });
    g.finish();
}

fn bench_congestion_control(c: &mut Criterion) {
    let mut g = c.benchmark_group("cc");
    for algo in [CcAlgorithm::Reno, CcAlgorithm::Cubic] {
        g.bench_function(format!("{algo:?}_on_ack"), |b| {
            let mut cc = algo.build();
            let mut t = 0.0;
            b.iter(|| {
                t += 0.001;
                cc.on_ack(1, t, 0.05);
                if cc.cwnd() > 10_000.0 {
                    cc.on_loss_event(t);
                }
                black_box(cc.cwnd())
            })
        });
    }
    g.finish();
}

fn bench_mahimahi_conversion(c: &mut Criterion) {
    let caps: Vec<f64> = (0..300).map(|i| 50.0 + (i % 100) as f64).collect();
    c.bench_function("mahimahi_from_capacity_series", |b| {
        b.iter(|| black_box(MahimahiTrace::from_capacity_series(&caps)))
    });
}

fn bench_campaign_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("campaign_generate_1pct", |b| {
        b.iter(|| {
            black_box(leo_dataset::campaign::Campaign::generate(
                leo_dataset::campaign::CampaignConfig {
                    scale: 0.01,
                    seed: 7,
                    ..Default::default()
                },
            ))
        })
    });
    // The same campaign forced onto the naive orbit scan — the
    // before/after comparison for the orbit fast path (outputs are
    // bit-identical; only the wall clock differs).
    g.bench_function("campaign_generate_1pct_naive_orbit", |b| {
        std::env::set_var("LEO_ORBIT_NAIVE", "1");
        b.iter(|| {
            black_box(leo_dataset::campaign::Campaign::generate(
                leo_dataset::campaign::CampaignConfig {
                    scale: 0.01,
                    seed: 7,
                    ..Default::default()
                },
            ))
        });
        std::env::remove_var("LEO_ORBIT_NAIVE");
    });
    g.finish();
}

criterion_group!(
    engine,
    bench_constellation_sweep,
    bench_deployment_query,
    bench_pipes,
    bench_congestion_control,
    bench_mahimahi_conversion,
    bench_campaign_generation,
);
criterion_main!(engine);
