//! One Criterion group per paper figure: each benchmark regenerates the
//! figure's analysis from a cached 10 %-scale campaign and reports the
//! cost of the full analysis path.
//!
//! Figures 10 and 11 additionally run the packet-level MPTCP emulation,
//! so their benchmarks are the heavyweight entries (as in the paper,
//! where §6's experiments dominate runtime).

use criterion::{criterion_group, criterion_main, Criterion};
use leo_bench::bench_campaign;
use leo_core::{fig1, fig10, fig11, fig3, fig4, fig5, fig6, fig7, fig8, fig9};
use leo_dataset::campaign::campaign_threads;
use std::hint::black_box;

fn bench_fig01_motivation(c: &mut Criterion) {
    let campaign = bench_campaign();
    c.bench_function("fig01_motivation", |b| {
        b.iter(|| black_box(fig1::run(campaign)))
    });
}

fn bench_fig03_throughput_cdfs(c: &mut Criterion) {
    let campaign = bench_campaign();
    let mut g = c.benchmark_group("fig03");
    g.bench_function("fig03_tcp_udp_roam_mobility_updown", |b| {
        b.iter(|| black_box(fig3::run(campaign)))
    });
    g.finish();
}

fn bench_fig04_latency(c: &mut Criterion) {
    let campaign = bench_campaign();
    c.bench_function("fig04_latency", |b| {
        b.iter(|| black_box(fig4::run(campaign)))
    });
}

fn bench_fig05_loss(c: &mut Criterion) {
    let campaign = bench_campaign();
    c.bench_function("fig05_loss", |b| b.iter(|| black_box(fig5::run(campaign))));
}

fn bench_fig06_speed(c: &mut Criterion) {
    let campaign = bench_campaign();
    c.bench_function("fig06_speed", |b| b.iter(|| black_box(fig6::run(campaign))));
}

fn bench_fig07_parallelism(c: &mut Criterion) {
    let campaign = bench_campaign();
    c.bench_function("fig07_parallelism", |b| {
        b.iter(|| black_box(fig7::run(campaign)))
    });
}

fn bench_fig08_area(c: &mut Criterion) {
    let campaign = bench_campaign();
    c.bench_function("fig08_area", |b| b.iter(|| black_box(fig8::run(campaign))));
}

fn bench_fig09_coverage(c: &mut Criterion) {
    let campaign = bench_campaign();
    c.bench_function("fig09_coverage", |b| {
        b.iter(|| black_box(fig9::run(campaign)))
    });
}

fn bench_fig10_mptcp(c: &mut Criterion) {
    let campaign = bench_campaign();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("fig10_mptcp_boxes", |b| {
        b.iter(|| {
            black_box(fig10::run(
                campaign,
                fig10::Fig10Params {
                    windows: 2,
                    window_s: 60,
                    seed: 0xbe9c,
                },
            ))
        })
    });
    g.finish();
}

fn bench_fig11_traces(c: &mut Criterion) {
    let campaign = bench_campaign();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("fig11_traces", |b| {
        b.iter(|| {
            black_box(fig11::run(
                campaign,
                fig11::Fig11Params {
                    window_s: 60,
                    seed: 0xbe9c,
                },
            ))
        })
    });
    g.finish();
}

fn bench_figures_sweep(c: &mut Criterion) {
    let campaign = bench_campaign();
    let mut g = c.benchmark_group("sweep");
    // The statistical figures (1, 3–9) as one unit, swept sequentially
    // and fanned out over `campaign_threads()` workers — the same
    // parallelisation the `figures` example uses for its render pass.
    g.bench_function("stat_figures_sequential", |b| {
        b.iter(|| {
            black_box(fig1::run(campaign));
            black_box(fig3::run(campaign));
            black_box(fig4::run(campaign));
            black_box(fig5::run(campaign));
            black_box(fig6::run(campaign));
            black_box(fig7::run(campaign));
            black_box(fig8::run(campaign));
            black_box(fig9::run(campaign));
        })
    });
    g.bench_function("stat_figures_parallel", |b| {
        let jobs: Vec<fn(&leo_dataset::campaign::Campaign)> = vec![
            |c| {
                black_box(fig1::run(c));
            },
            |c| {
                black_box(fig3::run(c));
            },
            |c| {
                black_box(fig4::run(c));
            },
            |c| {
                black_box(fig5::run(c));
            },
            |c| {
                black_box(fig6::run(c));
            },
            |c| {
                black_box(fig7::run(c));
            },
            |c| {
                black_box(fig8::run(c));
            },
            |c| {
                black_box(fig9::run(c));
            },
        ];
        let workers = campaign_threads().min(jobs.len());
        b.iter(|| {
            crossbeam::thread::scope(|s| {
                let jobs = &jobs;
                for w in 0..workers {
                    s.spawn(move |_| {
                        for job in jobs.iter().skip(w).step_by(workers) {
                            job(campaign);
                        }
                    });
                }
            })
            .expect("sweep scope panicked")
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_figures_sweep,
    bench_fig01_motivation,
    bench_fig03_throughput_cdfs,
    bench_fig04_latency,
    bench_fig05_loss,
    bench_fig06_speed,
    bench_fig07_parallelism,
    bench_fig08_area,
    bench_fig09_coverage,
    bench_fig10_mptcp,
    bench_fig11_traces,
);
criterion_main!(figures);
