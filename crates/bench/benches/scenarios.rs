//! Scenario-engine benchmarks: the built-in sweep at one worker vs.
//! several (the speedup the determinism contract makes free), plus the
//! fault-injection layer alone.

use criterion::{criterion_group, criterion_main, Criterion};
use leo_dataset::campaign::{Campaign, CampaignConfig};
use leo_scenario::{apply_all, builtin, builtin_scenarios, ScenarioRunner};
use std::hint::black_box;

fn tiny_base() -> CampaignConfig {
    CampaignConfig {
        scale: 0.005,
        seed: 0xbe_c4,
        ..CampaignConfig::default()
    }
}

fn bench_sweep_threads(c: &mut Criterion) {
    let specs = builtin_scenarios();
    let mut g = c.benchmark_group("scenario_sweep");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("builtin_library_t{threads}"), |b| {
            b.iter(|| {
                black_box(
                    ScenarioRunner::new(tiny_base())
                        .with_threads(threads)
                        .run(&specs),
                )
            })
        });
    }
    g.finish();
}

fn bench_perturbation_layer(c: &mut Criterion) {
    let base = Campaign::generate_with_threads(tiny_base(), 1);
    let storm = builtin("handover-storm").expect("builtin");
    let mut g = c.benchmark_group("scenario_perturb");
    g.sample_size(10);
    g.bench_function("handover_storm_apply", |b| {
        b.iter(|| {
            let mut campaign = base.clone();
            apply_all(&mut campaign, &storm.perturbations);
            black_box(campaign.records.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sweep_threads, bench_perturbation_layer);
criterion_main!(benches);
