//! Shared fixtures for the benchmark harness.
//!
//! The benches live in `benches/`:
//!
//! * `figures` — one Criterion group per paper figure, each benchmark
//!   regenerating that figure's analysis from a cached campaign,
//! * `engine` — microbenchmarks of the substrates: event loop, pipes,
//!   congestion-control steps, scheduler decisions, constellation sweeps.

use leo_dataset::campaign::{Campaign, CampaignConfig};
use std::sync::OnceLock;

/// A shared campaign so every figure bench measures *analysis* cost, not
/// repeated world generation.
pub fn bench_campaign() -> &'static Campaign {
    static CAMPAIGN: OnceLock<Campaign> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        Campaign::generate(CampaignConfig {
            scale: 0.1,
            seed: 0xbe9c,
            ..CampaignConfig::default()
        })
    })
}
