//! Shared fixtures for the benchmark harness.
//!
//! The benches live in `benches/`:
//!
//! * `figures` — one Criterion group per paper figure, each benchmark
//!   regenerating that figure's analysis from a cached campaign,
//! * `engine` — microbenchmarks of the substrates: event loop, pipes,
//!   congestion-control steps, scheduler decisions, constellation sweeps.

use leo_dataset::campaign::Campaign;

/// A shared campaign so every figure bench measures *analysis* cost, not
/// repeated world generation. Served by the process-wide `(scale, seed)`
/// cache in `leo-core`, so benches and tests in one process share it.
pub fn bench_campaign() -> &'static Campaign {
    leo_core::cached_campaign(0.1, 0xbe9c)
}
