//! Carrier profiles.
//!
//! The paper measured AT&T, T-Mobile, and Verizon side by side (§3.1). The
//! profiles below encode the qualitative differences its results exposed:
//!
//! * **AT&T** showed "the highest network latency among the tested
//!   networks, likely due to its relatively low coverage along our trip"
//!   (§4.1) and the poorest performance coverage (§5.2: ≈53 % of samples in
//!   low/very-low regions) → sparsest deployment, least mid-band, highest
//!   core latency.
//! * **T-Mobile** and **Verizon** had the lowest RTTs and ≈42–44 % of
//!   samples in high-performance regions → denser deployments; T-Mobile
//!   gets the largest mid-band 5G share (its n41 build-out), Verizon a
//!   dense LTE grid with mid-band in cities.

use serde::{Deserialize, Serialize};

/// A commercial cellular carrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Carrier {
    Att,
    TMobile,
    Verizon,
}

impl Carrier {
    /// All carriers, in the paper's ATT/TM/VZ order.
    pub const ALL: [Carrier; 3] = [Carrier::Att, Carrier::TMobile, Carrier::Verizon];

    /// Short label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Carrier::Att => "ATT",
            Carrier::TMobile => "TM",
            Carrier::Verizon => "VZ",
        }
    }

    /// Relative site-deployment density (1.0 = the densest carrier).
    pub fn density_factor(&self) -> f64 {
        match self {
            Carrier::Att => 0.55,
            Carrier::TMobile => 0.95,
            Carrier::Verizon => 1.0,
        }
    }

    /// Spacing of corridor (freeway) sites in rural stretches, km.
    pub fn corridor_spacing_km(&self) -> f64 {
        match self {
            Carrier::Att => 19.0,
            Carrier::TMobile => 10.0,
            Carrier::Verizon => 12.0,
        }
    }

    /// Probability that an urban/suburban site carries mid-band 5G.
    pub fn midband_share(&self) -> f64 {
        match self {
            Carrier::Att => 0.22,
            Carrier::TMobile => 0.55,
            Carrier::Verizon => 0.45,
        }
    }

    /// Probability that a rural site carries low-band 5G (vs. LTE only).
    ///
    /// Kept well below the urban mid-band shares: most corridor and
    /// small-town sites are LTE, which (with the 15 MHz carrier) is what
    /// pulls rural cellular throughput below urban as in Figure 8 and
    /// leaves the sub-50 Mbps rural windows Figure 9 reports even after
    /// combining with Starlink.
    pub fn rural_lowband_share(&self) -> f64 {
        match self {
            Carrier::Att => 0.22,
            Carrier::TMobile => 0.45,
            Carrier::Verizon => 0.38,
        }
    }

    /// Core-network RTT component (device → test server, unloaded), ms.
    pub fn core_rtt_ms(&self) -> f64 {
        match self {
            Carrier::Att => 62.0,
            Carrier::TMobile => 38.0,
            Carrier::Verizon => 36.0,
        }
    }

    /// Seed salt so each carrier's shadowing/load fields are independent.
    pub fn seed_salt(&self) -> u64 {
        match self {
            Carrier::Att => 0xa77_0001,
            Carrier::TMobile => 0x7e0_0002,
            Carrier::Verizon => 0x52a_0003,
        }
    }
}

impl std::fmt::Display for Carrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn att_is_sparsest_and_slowest_core() {
        assert!(Carrier::Att.density_factor() < Carrier::TMobile.density_factor());
        assert!(Carrier::Att.density_factor() < Carrier::Verizon.density_factor());
        assert!(Carrier::Att.core_rtt_ms() > Carrier::TMobile.core_rtt_ms());
        assert!(Carrier::Att.core_rtt_ms() > Carrier::Verizon.core_rtt_ms());
        assert!(Carrier::Att.corridor_spacing_km() > Carrier::Verizon.corridor_spacing_km());
    }

    #[test]
    fn tmobile_leads_midband() {
        assert!(Carrier::TMobile.midband_share() > Carrier::Verizon.midband_share());
        assert!(Carrier::Verizon.midband_share() > Carrier::Att.midband_share());
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = Carrier::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["ATT", "TM", "VZ"]);
    }
}
