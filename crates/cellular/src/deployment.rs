//! Base-station deployment generation and spatial lookup.
//!
//! §5.1: "cellular network base stations are more densely deployed in
//! populated areas" while "deploying and operating cellular base stations
//! in rural areas incurs much higher costs due to low population density".
//! Deployment therefore follows population: each place gets a cluster of
//! sites scaled by its population and the carrier's density factor, plus
//! sparse corridor sites along the freeway spine connecting the places.

use crate::carrier::Carrier;
use leo_geo::places::PlaceDb;
use leo_geo::point::GeoPoint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Radio access technology of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rat {
    /// 4G LTE.
    Lte,
    /// Low-band 5G NR (coverage layer; speeds similar to good LTE).
    NrLow,
    /// Mid-band 5G NR (capacity layer; urban/suburban).
    NrMid,
}

impl Rat {
    /// Downlink channel bandwidth, MHz.
    pub fn bandwidth_mhz(&self) -> f64 {
        match self {
            Rat::Lte => 15.0,
            Rat::NrLow => 35.0,
            Rat::NrMid => 80.0,
        }
    }

    /// Practical cell range, km (beyond this the UE is out of coverage).
    pub fn range_km(&self) -> f64 {
        match self {
            Rat::Lte => 14.0,
            Rat::NrLow => 16.0,
            Rat::NrMid => 5.0,
        }
    }
}

/// One cell site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaseStation {
    pub location: GeoPoint,
    pub rat: Rat,
    /// Stable site identifier (index into the deployment).
    pub id: u32,
}

/// A carrier's full deployment with a grid index for nearest-site queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deployment {
    pub carrier: Carrier,
    sites: Vec<BaseStation>,
    /// 0.15°-cell grid index: cell → site indices.
    #[serde(skip)]
    grid: HashMap<(i32, i32), Vec<u32>>,
}

/// Grid cell size in degrees (~16 km north-south).
const GRID_DEG: f64 = 0.15;

fn grid_cell(p: &GeoPoint) -> (i32, i32) {
    (
        (p.lat_deg / GRID_DEG).floor() as i32,
        (p.lon_deg / GRID_DEG).floor() as i32,
    )
}

impl Deployment {
    /// Generates the deployment for `carrier` over `places`, with corridor
    /// sites along `corridor` waypoints (typically route polylines).
    /// Deterministic in `(carrier, places, corridor, seed)`.
    pub fn generate(carrier: Carrier, places: &PlaceDb, corridor: &[GeoPoint], seed: u64) -> Self {
        let mut sites = Vec::new();
        let salt = seed ^ carrier.seed_salt();

        // 1. Population clusters around each place.
        for (pi, place) in places.places().iter().enumerate() {
            // Sites per place: ~1 per 12k population, scaled by carrier
            // density, minimum 1 (every town has at least some coverage
            // from the densest carriers).
            let raw = place.population as f64 / 12_000.0 * carrier.density_factor();
            let count = raw.round().max(1.0) as u32;
            // Cluster radius grows with the urban footprint.
            let radius_km = (place.population as f64 / 60_000.0).sqrt().clamp(1.5, 18.0);
            for k in 0..count {
                let h = mix(salt, (pi as u64) << 32 | k as u64);
                let u1 = unit(h);
                let u2 = unit(mix(h, 1));
                let u3 = unit(mix(h, 2));
                let bearing = u1 * 360.0;
                // sqrt for uniform-in-disc density.
                let dist = u2.sqrt() * radius_km;
                let loc = place.location.destination(bearing, dist);
                let rat = if u3 < carrier.midband_share() && place.population >= 50_000 {
                    Rat::NrMid
                } else if u3 < carrier.rural_lowband_share() + carrier.midband_share() {
                    Rat::NrLow
                } else {
                    Rat::Lte
                };
                sites.push(BaseStation {
                    location: loc,
                    rat,
                    id: 0, // assigned below
                });
            }
        }

        // 2. Corridor sites along the freeway spine.
        let spacing = carrier.corridor_spacing_km();
        let mut acc = spacing; // first site one spacing in
        for w in corridor.windows(2) {
            let seg_len = w[0].distance_km(&w[1]);
            let bearing = w[0].bearing_deg(&w[1]);
            while acc < seg_len {
                let h = mix(salt, 0xc0ff_ee00 ^ (sites.len() as u64));
                // Corridor towers sit a little off the road.
                let off = (unit(h) - 0.5) * 2.0;
                let loc = w[0]
                    .destination(bearing, acc)
                    .destination(bearing + 90.0, off);
                let rat = if unit(mix(h, 3)) < carrier.rural_lowband_share() {
                    Rat::NrLow
                } else {
                    Rat::Lte
                };
                sites.push(BaseStation {
                    location: loc,
                    rat,
                    id: 0,
                });
                acc += spacing;
            }
            acc -= seg_len;
        }

        for (i, s) in sites.iter_mut().enumerate() {
            s.id = i as u32;
        }

        let mut dep = Self {
            carrier,
            sites,
            grid: HashMap::new(),
        };
        dep.rebuild_index();
        dep
    }

    /// Rebuilds the grid index (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.grid.clear();
        for s in &self.sites {
            self.grid
                .entry(grid_cell(&s.location))
                .or_default()
                .push(s.id);
        }
    }

    /// All sites.
    pub fn sites(&self) -> &[BaseStation] {
        &self.sites
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the deployment has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The `n` nearest sites to `p` (by great-circle distance), searched in
    /// growing rings of grid cells. Returns fewer when the deployment is
    /// small or everything is far away (search stops after a 5-ring radius
    /// ≈ 80 km, beyond any cell's range).
    pub fn nearest_sites(&self, p: &GeoPoint, n: usize) -> Vec<(BaseStation, f64)> {
        let (cx, cy) = grid_cell(p);
        let mut found: Vec<(BaseStation, f64)> = Vec::new();
        for ring in 0i32..=5 {
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    // Only the ring boundary (interior already visited).
                    if dx.abs() != ring && dy.abs() != ring {
                        continue;
                    }
                    if let Some(ids) = self.grid.get(&(cx + dx, cy + dy)) {
                        for &id in ids {
                            let s = self.sites[id as usize];
                            found.push((s, s.location.distance_km(p)));
                        }
                    }
                }
            }
            // One extra ring after first hits guarantees true nearest across
            // cell boundaries.
            if found.len() >= n && ring >= 1 {
                break;
            }
        }
        found.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"));
        found.truncate(n);
        found
    }

    /// The nearest site within its RAT's coverage range, if any.
    pub fn serving_candidate(&self, p: &GeoPoint) -> Option<(BaseStation, f64)> {
        self.nearest_sites(p, 4)
            .into_iter()
            .find(|(s, d)| *d <= s.rat.range_km())
    }
}

/// SplitMix64 mixer for deterministic deployment randomness.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform [0,1) from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corridor() -> Vec<GeoPoint> {
        vec![
            GeoPoint::new(44.95, -93.20),
            GeoPoint::new(43.05, -89.40),
            GeoPoint::new(41.88, -87.63),
        ]
    }

    fn deployment(carrier: Carrier) -> Deployment {
        Deployment::generate(carrier, &PlaceDb::five_state_corridor(), &corridor(), 99)
    }

    #[test]
    fn denser_carrier_has_more_sites() {
        let att = deployment(Carrier::Att).len();
        let vz = deployment(Carrier::Verizon).len();
        assert!(vz > att, "VZ {vz} should out-deploy ATT {att}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = deployment(Carrier::TMobile);
        let b = deployment(Carrier::TMobile);
        assert_eq!(a.sites(), b.sites());
    }

    #[test]
    fn urban_core_is_covered() {
        let dep = deployment(Carrier::Verizon);
        let (_, d) = dep
            .serving_candidate(&GeoPoint::new(41.88, -87.63))
            .expect("downtown must have coverage");
        assert!(d < 5.0, "nearest urban site at {d} km");
    }

    #[test]
    fn deep_rural_has_dead_zones_for_sparse_carrier() {
        let dep = deployment(Carrier::Att);
        // A point far from both places and the (eastern) corridor.
        let p = GeoPoint::new(43.9, -100.8);
        assert!(
            dep.serving_candidate(&p).is_none(),
            "expected an ATT dead zone in deep rural"
        );
    }

    #[test]
    fn nearest_sites_sorted_ascending() {
        let dep = deployment(Carrier::Verizon);
        let near = dep.nearest_sites(&GeoPoint::new(44.9, -93.2), 6);
        assert!(!near.is_empty());
        for w in near.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn nearest_agrees_with_brute_force() {
        let dep = deployment(Carrier::TMobile);
        let p = GeoPoint::new(43.4, -89.6);
        let brute = dep
            .sites()
            .iter()
            .map(|s| (s.id, s.location.distance_km(&p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let fast = dep.nearest_sites(&p, 1)[0];
        assert_eq!(fast.0.id, brute.0);
    }

    #[test]
    fn midband_sits_in_cities() {
        // NrMid sites only spawn from places with ≥50k population, so every
        // NrMid site must be within a city cluster radius (≤18 km) of one.
        let dep = deployment(Carrier::TMobile);
        let db = PlaceDb::five_state_corridor();
        for s in dep.sites().iter().filter(|s| s.rat == Rat::NrMid) {
            let (_, d) = db
                .nearest_of_at_least(&s.location, leo_geo::places::PlaceCategory::City)
                .unwrap();
            assert!(d <= 18.5, "NrMid site {} km from any city", d);
        }
    }

    #[test]
    fn corridor_sites_exist_between_cities() {
        let dep = deployment(Carrier::Verizon);
        // Midpoint of the Lakeport→Brewton leg is ~180 km from either city;
        // corridor sites must be nearby even though no place is.
        let mid = GeoPoint::new(44.0, -91.3);
        let near = dep.nearest_sites(&mid, 1);
        assert!(!near.is_empty());
        assert!(
            near[0].1 < 25.0,
            "nearest corridor site {} km away",
            near[0].1
        );
    }
}
