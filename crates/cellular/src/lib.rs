//! Terrestrial cellular network simulator.
//!
//! Stands in for the three commercial carriers the paper measured (AT&T,
//! T-Mobile, Verizon) with a deployment-grounded model:
//!
//! * [`carrier`] — per-carrier profiles: deployment density, band mix,
//!   core-network latency. The defaults encode the paper's observations
//!   (AT&T's "relatively low coverage along our trip" and highest RTT;
//!   Verizon/T-Mobile's lower RTTs and better high-performance coverage),
//! * [`deployment`] — base-station placement around populated places and
//!   along freeway corridors, with a grid spatial index for fast
//!   nearest-site queries,
//! * [`radio`] — log-distance path loss with hash-based shadowing, SINR,
//!   and truncated-Shannon rate mapping per radio access technology,
//! * [`model`] — [`CellularLinkModel`]: serving-cell selection with
//!   hysteresis, handover, cell load, and per-second
//!   [`leo_link::LinkCondition`] traces, the same interface the Starlink
//!   model exposes (§2's point that the two networks' *deployment
//!   strategies* drive their complementary coverage).

pub mod carrier;
pub mod deployment;
pub mod model;
pub mod radio;

pub use carrier::Carrier;
pub use deployment::{BaseStation, Deployment, Rat};
pub use model::{CellularLinkModel, CellularModelConfig};
pub use radio::{rate_mbps, shadowing_db, sinr_db, RadioParams};
