//! The per-carrier cellular link model.
//!
//! Mirrors the interface of `leo_orbit::StarlinkLinkModel`: a drive's
//! environment samples go in, aligned per-second downlink/uplink
//! [`LinkTrace`]s come out. Internally each second performs serving-cell
//! selection with hysteresis over the carrier's [`Deployment`], evaluates
//! the radio link (path loss, shadowing, SINR, truncated-Shannon rate,
//! cell load), and adds the carrier's core-network latency.

use crate::carrier::Carrier;
use crate::deployment::{BaseStation, Deployment};
use crate::radio::{rate_mbps, shadowing_db, sinr_db, RadioParams};
use leo_geo::area::AreaType;
use leo_geo::drive::EnvironmentSample;
use leo_link::condition::LinkCondition;
use leo_link::trace::LinkTrace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a cellular link model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellularModelConfig {
    pub carrier: Carrier,
    /// RNG seed; traces are a pure function of (drive, config, deployment).
    pub seed: u64,
    /// Uplink/downlink capacity ratio.
    pub uplink_ratio: f64,
    /// Baseline random loss on a healthy link (cellular links hide loss
    /// behind HARQ/RLC retransmission, so this is small — §4.1/Fig. 5).
    pub base_loss: f64,
    /// Handover hysteresis, dB.
    pub hysteresis_db: f64,
}

impl CellularModelConfig {
    /// Default configuration for a carrier.
    pub fn for_carrier(carrier: Carrier) -> Self {
        Self {
            carrier,
            seed: 0xce11_0000,
            uplink_ratio: 0.22,
            base_loss: 0.0001,
            hysteresis_db: 3.0,
        }
    }
}

/// The cellular link model: a deployment plus radio parameters.
#[derive(Debug, Clone)]
pub struct CellularLinkModel {
    deployment: Deployment,
    radio: RadioParams,
    config: CellularModelConfig,
}

impl CellularLinkModel {
    /// Creates a model over an existing deployment.
    pub fn new(config: CellularModelConfig, deployment: Deployment) -> Self {
        assert_eq!(
            deployment.carrier, config.carrier,
            "deployment and config must agree on the carrier"
        );
        Self {
            deployment,
            radio: RadioParams::default(),
            config,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &CellularModelConfig {
        &self.config
    }

    /// The underlying deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Per-UE airtime share band for an area type: urban cells are loaded
    /// (many users) but dense; rural cells are lightly loaded but far.
    ///
    /// Rural's advantage is deliberately modest: a rural macro covers a
    /// whole town plus the freeway, so the UE is rarely close to a sole
    /// user. The earlier (0.65, 1.00) band made rural cellular *beat*
    /// urban on mean throughput, inverting the paper's Figure 8.
    fn load_band(area: AreaType) -> (f64, f64) {
        match area {
            AreaType::Urban => (0.40, 0.75),
            AreaType::Suburban => (0.50, 0.85),
            AreaType::Rural => (0.55, 0.90),
        }
    }

    /// Generates aligned downlink and uplink traces for a drive.
    pub fn trace_for_drive(
        &self,
        samples: &[EnvironmentSample],
        areas: &[AreaType],
    ) -> (LinkTrace, LinkTrace) {
        assert_eq!(samples.len(), areas.len(), "one area per sample");
        let label = self.config.carrier.label();
        let mut down = Vec::with_capacity(samples.len());
        let mut up = Vec::with_capacity(samples.len());
        let mut rng = SmallRng::seed_from_u64(
            self.config.seed
                ^ self.config.carrier.seed_salt()
                ^ samples.first().map(|s| s.t_s).unwrap_or(0),
        );
        let mut serving: Option<BaseStation> = None;
        let mut handover_dip = 0u32;

        for (sample, &area) in samples.iter().zip(areas) {
            let segment = sample.travelled_km.floor() as u64;

            // 1. Serving-cell selection with hysteresis.
            let candidates = self.deployment.nearest_sites(&sample.position, 4);
            let rx_of = |s: &BaseStation| {
                let d = s.location.distance_km(&sample.position);
                let sh = shadowing_db(&self.radio, self.config.seed, s.id, segment);
                (self.radio.rx_power_dbm(d, sh), d, sh)
            };
            let best = candidates
                .iter()
                .map(|(s, _)| (*s, rx_of(s)))
                .filter(|(s, (_, d, _))| *d <= s.rat.range_km())
                .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("powers are finite"));

            let serving_now = match (serving, best) {
                (None, Some((s, _))) => {
                    serving = Some(s);
                    Some(s)
                }
                (Some(cur), Some((s, (best_rx, ..)))) => {
                    let (cur_rx, cur_d, _) = rx_of(&cur);
                    let cur_in_range = cur_d <= cur.rat.range_km();
                    if !cur_in_range
                        || (s.id != cur.id && best_rx > cur_rx + self.config.hysteresis_db)
                    {
                        // Handover.
                        serving = Some(s);
                        handover_dip = 1;
                        Some(s)
                    } else {
                        Some(cur)
                    }
                }
                (Some(cur), None) => {
                    let (_, cur_d, _) = rx_of(&cur);
                    if cur_d <= cur.rat.range_km() {
                        Some(cur)
                    } else {
                        serving = None;
                        None
                    }
                }
                (None, None) => None,
            };

            let Some(site) = serving_now else {
                down.push(LinkCondition::OUTAGE);
                up.push(LinkCondition::OUTAGE);
                continue;
            };

            // 2. Radio link evaluation.
            let d_km = site.location.distance_km(&sample.position);
            let shadow = shadowing_db(&self.radio, self.config.seed, site.id, segment);
            let sinr = sinr_db(&self.radio, d_km, shadow);

            // 3. Cell load: slowly varying per (site, 30 s slot).
            let (lo, hi) = Self::load_band(area);
            let slot = sample.t_s / 30;
            let lh = load_hash(self.config.seed, site.id, slot);
            let load_share = lo + (hi - lo) * lh;

            // 4. Rate with fast fading, handover dips, and weather
            // attenuation (§3.3: rain/snow affect both network types;
            // the satellite model applies its own, stronger, factor).
            let fade = 1.0 + rng.gen_range(-0.12..0.12);
            let dip = if handover_dip > 0 {
                handover_dip -= 1;
                0.5
            } else {
                1.0
            };
            let weather = sample.weather.cellular_capacity_factor();
            let capacity_down =
                (rate_mbps(site.rat, sinr, load_share) * fade * dip * weather).clamp(0.0, 450.0);
            let capacity_up =
                (capacity_down * self.config.uplink_ratio * (1.0 + rng.gen_range(-0.15..0.15)))
                    .clamp(0.0, 60.0);

            // 5. RTT: core network + air-interface scheduling + a small
            // distance term; loaded urban cells queue a little more.
            let jitter: f64 = rng.gen_range(3.0..16.0);
            let load_extra = (1.0 - load_share) * 12.0;
            let edge_extra = if sinr < 3.0 {
                rng.gen_range(5.0..25.0)
            } else {
                0.0
            };
            let rtt =
                self.config.carrier.core_rtt_ms() + jitter + load_extra + edge_extra + d_km * 0.05;

            // 6. Loss: tiny baseline, worse at the cell edge and during
            // handover.
            let edge_loss = if sinr < 0.0 { 0.002 } else { 0.0 };
            let ho_loss = if dip < 1.0 { 0.008 } else { 0.0 };
            let loss_down = (self.config.base_loss + edge_loss + ho_loss).clamp(0.0, 1.0);
            let loss_up = (loss_down * 1.3).clamp(0.0, 1.0);

            down.push(LinkCondition::new(capacity_down, rtt, loss_down));
            up.push(LinkCondition::new(capacity_up, rtt, loss_up));
        }

        let start = samples.first().map(|s| s.t_s).unwrap_or(0);
        (
            LinkTrace::new(label, start, down),
            LinkTrace::new(format!("{label}-up"), start, up),
        )
    }
}

/// Uniform [0,1) hash for cell load, keyed by (seed, site, slot).
fn load_hash(seed: u64, site_id: u32, slot: u64) -> f64 {
    let mut z = seed ^ ((site_id as u64) << 40) ^ slot.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::drive::{DayPhase, Weather};
    use leo_geo::places::PlaceDb;
    use leo_geo::point::GeoPoint;

    fn corridor() -> Vec<GeoPoint> {
        vec![
            GeoPoint::new(44.95, -93.20),
            GeoPoint::new(43.05, -89.40),
            GeoPoint::new(41.88, -87.63),
        ]
    }

    fn model(carrier: Carrier) -> CellularLinkModel {
        let dep = Deployment::generate(carrier, &PlaceDb::five_state_corridor(), &corridor(), 99);
        CellularLinkModel::new(CellularModelConfig::for_carrier(carrier), dep)
    }

    /// A drive circling inside the given area.
    fn drive_at(center: GeoPoint, len_s: u64) -> Vec<EnvironmentSample> {
        (0..len_s)
            .map(|t| EnvironmentSample {
                t_s: t,
                position: center.destination((t % 360) as f64, 0.5 + (t as f64 * 0.013) % 3.0),
                speed_kmh: 45.0,
                heading_deg: 90.0,
                day_phase: DayPhase::Day,
                weather: Weather::Clear,
                travelled_km: t as f64 * 0.0125,
            })
            .collect()
    }

    #[test]
    fn urban_verizon_is_fast() {
        let m = model(Carrier::Verizon);
        let s = drive_at(GeoPoint::new(41.88, -87.63), 600);
        let a = vec![AreaType::Urban; s.len()];
        let stats = m.trace_for_drive(&s, &a).0.stats().unwrap();
        assert!(
            stats.mean_mbps > 60.0,
            "urban VZ mean {} too low",
            stats.mean_mbps
        );
        assert!(stats.outage_frac < 0.05);
    }

    #[test]
    fn deep_rural_att_is_mostly_dead() {
        let m = model(Carrier::Att);
        let s = drive_at(GeoPoint::new(43.9, -100.8), 300);
        let a = vec![AreaType::Rural; s.len()];
        let stats = m.trace_for_drive(&s, &a).0.stats().unwrap();
        assert!(
            stats.outage_frac > 0.5,
            "ATT deep-rural outage {} too low",
            stats.outage_frac
        );
    }

    #[test]
    fn rural_corridor_still_covered_by_tmobile() {
        // On the freeway between cities, corridor sites keep TM alive.
        let m = model(Carrier::TMobile);
        let s = drive_at(GeoPoint::new(44.0, -91.3), 300);
        let a = vec![AreaType::Rural; s.len()];
        let stats = m.trace_for_drive(&s, &a).0.stats().unwrap();
        assert!(
            stats.outage_frac < 0.4,
            "TM corridor outage {}",
            stats.outage_frac
        );
    }

    #[test]
    fn att_rtt_exceeds_verizon() {
        let satt = drive_at(GeoPoint::new(41.88, -87.63), 400);
        let a = vec![AreaType::Urban; satt.len()];
        let att = model(Carrier::Att).trace_for_drive(&satt, &a).0;
        let vz = model(Carrier::Verizon).trace_for_drive(&satt, &a).0;
        let att_rtt = att.stats().unwrap().mean_rtt_ms;
        let vz_rtt = vz.stats().unwrap().mean_rtt_ms;
        assert!(att_rtt > vz_rtt + 10.0, "ATT RTT {att_rtt} vs VZ {vz_rtt}");
    }

    #[test]
    fn cellular_loss_is_much_lower_than_starlink_band() {
        // Fig. 5: cellular retransmission rates sit well below Starlink's
        // 0.3–1.3 %.
        let m = model(Carrier::Verizon);
        let s = drive_at(GeoPoint::new(41.88, -87.63), 600);
        let a = vec![AreaType::Urban; s.len()];
        let loss = m.trace_for_drive(&s, &a).0.stats().unwrap().mean_loss;
        assert!(loss < 0.003, "cellular loss {loss}");
    }

    #[test]
    fn uplink_is_fraction_of_downlink() {
        let m = model(Carrier::TMobile);
        let s = drive_at(GeoPoint::new(43.05, -89.40), 400);
        let a = vec![AreaType::Urban; s.len()];
        let (down, up) = m.trace_for_drive(&s, &a);
        let ratio = up.stats().unwrap().mean_mbps / down.stats().unwrap().mean_mbps;
        assert!((0.12..0.35).contains(&ratio), "up/down ratio {ratio}");
    }

    #[test]
    fn weather_attenuates_cellular_capacity() {
        // §3.3: rain/snow affect both network types. The cellular model
        // must apply `Weather::cellular_capacity_factor`, not just the
        // satellite model its Ku-band factor: every rainy sample is the
        // clear-sky sample scaled by exactly that factor (the RNG draw
        // order is weather-independent), except where the 450 Mbps clamp
        // binds.
        let m = model(Carrier::Verizon);
        let clear = drive_at(GeoPoint::new(41.88, -87.63), 400);
        let mut rainy = clear.clone();
        for s in &mut rainy {
            s.weather = Weather::Rain;
        }
        let a = vec![AreaType::Urban; clear.len()];
        let clear_down = m.trace_for_drive(&clear, &a).0;
        let rain_down = m.trace_for_drive(&rainy, &a).0;
        let factor = Weather::Rain.cellular_capacity_factor();
        assert!(factor < 1.0, "rain must attenuate");
        let mut compared = 0;
        for (c, r) in clear_down.samples().iter().zip(rain_down.samples()) {
            if c.is_outage() || c.capacity_mbps * factor >= 450.0 {
                continue;
            }
            assert!(
                (r.capacity_mbps - c.capacity_mbps * factor).abs() < 1e-9,
                "rain {} vs clear {} * {factor}",
                r.capacity_mbps,
                c.capacity_mbps
            );
            compared += 1;
        }
        assert!(compared > 100, "only {compared} comparable samples");
    }

    #[test]
    fn traces_are_deterministic() {
        let m = model(Carrier::Verizon);
        let s = drive_at(GeoPoint::new(44.95, -93.2), 200);
        let a = vec![AreaType::Urban; s.len()];
        assert_eq!(m.trace_for_drive(&s, &a), m.trace_for_drive(&s, &a));
    }

    #[test]
    #[should_panic(expected = "carrier")]
    fn mismatched_carrier_panics() {
        let dep = Deployment::generate(
            Carrier::Att,
            &PlaceDb::five_state_corridor(),
            &corridor(),
            1,
        );
        CellularLinkModel::new(CellularModelConfig::for_carrier(Carrier::Verizon), dep);
    }
}
