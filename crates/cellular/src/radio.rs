//! Radio propagation and rate mapping.
//!
//! A deliberately classical stack: log-distance path loss with log-normal
//! shadowing, an SINR budget, and a truncated-Shannon spectral-efficiency
//! map per RAT. The goal is not RF-planning accuracy but reproducing the
//! *coverage-versus-distance structure* the paper's Figures 8–9 rest on:
//! fast cells close to dense deployments, decaying throughput with
//! distance, and out-of-coverage dead zones where deployments are sparse.

use crate::deployment::Rat;
use serde::{Deserialize, Serialize};

/// Propagation and link-budget parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RadioParams {
    /// Path-loss exponent (3.0–4.0 urban, lower in open country).
    pub path_loss_exp: f64,
    /// Path loss at the 1 km reference distance, dB.
    pub pl_1km_db: f64,
    /// Site EIRP + UE antenna gains, dBm.
    pub eirp_dbm: f64,
    /// Shadowing standard deviation, dB.
    pub shadow_sigma_db: f64,
    /// Interference-plus-noise floor for SINR, dBm (includes a margin for
    /// neighbour-cell interference).
    pub noise_floor_dbm: f64,
}

impl Default for RadioParams {
    fn default() -> Self {
        Self {
            path_loss_exp: 3.2,
            pl_1km_db: 120.0,
            eirp_dbm: 58.0,
            shadow_sigma_db: 6.5,
            noise_floor_dbm: -98.0,
        }
    }
}

impl RadioParams {
    /// Log-distance path loss at `d_km`, dB.
    pub fn path_loss_db(&self, d_km: f64) -> f64 {
        let d = d_km.max(0.05);
        self.pl_1km_db + 10.0 * self.path_loss_exp * d.log10()
    }

    /// Received power at `d_km` with the given shadowing realisation, dBm.
    pub fn rx_power_dbm(&self, d_km: f64, shadow_db: f64) -> f64 {
        self.eirp_dbm - self.path_loss_db(d_km) + shadow_db
    }
}

/// SINR (dB) at distance `d_km` with shadowing `shadow_db`.
pub fn sinr_db(params: &RadioParams, d_km: f64, shadow_db: f64) -> f64 {
    params.rx_power_dbm(d_km, shadow_db) - params.noise_floor_dbm
}

/// Downlink rate (Mbps) from SINR for a RAT: truncated Shannon with
/// protocol overhead.
///
/// `load_share` is the fraction of cell airtime this UE receives
/// (1.0 = sole user).
pub fn rate_mbps(rat: Rat, sinr_db: f64, load_share: f64) -> f64 {
    // Truncated Shannon: zero below -6 dB, capped at the RAT's top
    // modulation efficiency, 75 % protocol efficiency.
    if sinr_db < -6.0 {
        return 0.0;
    }
    let sinr_lin = 10f64.powf(sinr_db / 10.0);
    let eff_cap = match rat {
        Rat::Lte => 5.6,   // 64-QAM 4×4 practical ceiling
        Rat::NrLow => 6.2, // 256-QAM low-band
        Rat::NrMid => 7.0, // 256-QAM massive MIMO
    };
    let eff = (1.0 + sinr_lin).log2().min(eff_cap) * 0.75;
    (eff * rat.bandwidth_mhz() * load_share.clamp(0.0, 1.0)).max(0.0)
}

/// Deterministic per-(site, road-segment) shadowing draw, N(0, σ) dB.
///
/// Hash-based so that revisiting the same spot reproduces the same
/// shadowing — shadowing is a property of the environment, not of time.
pub fn shadowing_db(params: &RadioParams, seed: u64, site_id: u32, segment: u64) -> f64 {
    let h = mix(seed ^ (site_id as u64) << 17, segment);
    // Box-Muller from two hash-derived uniforms.
    let u1 = ((h >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
    let u2 = (mix(h, 0xabcd) >> 11) as f64 / (1u64 << 53) as f64;
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    z * params.shadow_sigma_db
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_increases_with_distance() {
        let p = RadioParams::default();
        assert!(p.path_loss_db(2.0) > p.path_loss_db(1.0));
        assert!(p.path_loss_db(10.0) > p.path_loss_db(2.0));
        // 10× distance adds 10·n dB.
        let delta = p.path_loss_db(10.0) - p.path_loss_db(1.0);
        assert!((delta - 32.0).abs() < 1e-9, "got {delta}");
    }

    #[test]
    fn rate_zero_below_threshold() {
        assert_eq!(rate_mbps(Rat::Lte, -10.0, 1.0), 0.0);
        assert!(rate_mbps(Rat::Lte, 0.0, 1.0) > 0.0);
    }

    #[test]
    fn rate_caps_at_high_sinr() {
        // Beyond the efficiency cap, more SINR buys nothing.
        let r30 = rate_mbps(Rat::Lte, 30.0, 1.0);
        let r50 = rate_mbps(Rat::Lte, 50.0, 1.0);
        assert_eq!(r30, r50);
        // LTE cap: 5.6 × 0.75 × 15 MHz = 63 Mbps.
        assert!((r30 - 63.0).abs() < 0.5, "got {r30}");
    }

    #[test]
    fn midband_is_much_faster_than_lte() {
        let lte = rate_mbps(Rat::Lte, 22.0, 1.0);
        let mid = rate_mbps(Rat::NrMid, 22.0, 1.0);
        assert!(mid > 3.0 * lte, "NrMid {mid} vs LTE {lte}");
        // NrMid at good SINR should exceed 300 Mbps.
        assert!(rate_mbps(Rat::NrMid, 30.0, 1.0) > 300.0);
    }

    #[test]
    fn load_share_scales_rate() {
        let full = rate_mbps(Rat::NrMid, 20.0, 1.0);
        let half = rate_mbps(Rat::NrMid, 20.0, 0.5);
        assert!((half - full / 2.0).abs() < 1e-9);
    }

    #[test]
    fn close_cell_has_usable_sinr() {
        let p = RadioParams::default();
        let s = sinr_db(&p, 0.5, 0.0);
        assert!(s > 15.0, "SINR at 500 m is {s} dB");
    }

    #[test]
    fn cell_edge_sinr_is_marginal() {
        let p = RadioParams::default();
        let s = sinr_db(&p, 14.0, 0.0);
        assert!((-8.0..8.0).contains(&s), "cell-edge SINR {s} dB");
    }

    #[test]
    fn shadowing_is_deterministic_and_zero_mean() {
        let p = RadioParams::default();
        assert_eq!(shadowing_db(&p, 1, 42, 100), shadowing_db(&p, 1, 42, 100));
        let n = 20_000;
        let mean: f64 = (0..n).map(|i| shadowing_db(&p, 7, 3, i)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "shadowing mean {mean}");
        let var: f64 = (0..n)
            .map(|i| shadowing_db(&p, 7, 3, i).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!(
            (var.sqrt() - p.shadow_sigma_db).abs() < 0.3,
            "shadowing σ {}",
            var.sqrt()
        );
    }
}
