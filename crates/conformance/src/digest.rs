//! Compact, human-diffable fingerprints of simulation output.
//!
//! A [`DigestLine`] carries three views of one artifact: an element
//! count (did the shape change?), a magnitude sum (did the values drift?)
//! and an FNV-1a hash over the exact bit patterns (did *anything*
//! change?). One line per artifact keeps the committed golden file
//! readable in a diff: a perturbed model changes the `sum`/`fnv` of the
//! affected lines and nothing else.

use std::fmt;

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms,
/// which is all a golden fingerprint needs (this is not a security hash).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorbs an `f64` by exact bit pattern — two runs digest equal only
    /// if every float is bit-identical, the determinism contract's unit.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Absorbs a string's UTF-8 bytes, length-prefixed so concatenations
    /// can't collide.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One golden-file line: a named artifact's fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct DigestLine {
    /// Artifact name, e.g. `campaign.records` or `figure.fig9`.
    pub name: String,
    /// Element count (samples, records, characters…).
    pub count: u64,
    /// A magnitude sum over the artifact's headline values — drifts
    /// visibly when a model changes, unlike the hash.
    pub sum: f64,
    /// FNV-1a over the exact contents.
    pub fnv: u64,
}

impl fmt::Display for DigestLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 6 decimal places keeps the sum diffable; the hash carries the
        // full precision.
        write!(
            f,
            "{} count={} sum={:.6} fnv={:#018x}",
            self.name, self.count, self.sum, self.fnv
        )
    }
}

impl DigestLine {
    /// Parses a line produced by `Display` (used by the goldens checker).
    pub fn parse(line: &str) -> Option<Self> {
        let mut parts = line.split_whitespace();
        let name = parts.next()?.to_string();
        let count = parts.next()?.strip_prefix("count=")?.parse().ok()?;
        let sum = parts.next()?.strip_prefix("sum=")?.parse().ok()?;
        let fnv_s = parts.next()?.strip_prefix("fnv=")?;
        let fnv = u64::from_str_radix(fnv_s.strip_prefix("0x")?, 16).ok()?;
        Some(Self {
            name,
            count,
            sum,
            fnv,
        })
    }
}

/// Digests a float series: count, plain sum, and an order-sensitive hash
/// of the exact bit patterns.
pub fn digest_series(name: impl Into<String>, values: &[f64]) -> DigestLine {
    let mut h = Fnv64::new();
    for &v in values {
        h.write_f64(v);
    }
    DigestLine {
        name: name.into(),
        count: values.len() as u64,
        sum: values.iter().sum(),
        fnv: h.finish(),
    }
}

/// Digests rendered text (figure output, report tables): character count,
/// line count as the sum, and a hash of the exact bytes.
pub fn digest_text(name: impl Into<String>, text: &str) -> DigestLine {
    DigestLine {
        name: name.into(),
        count: text.len() as u64,
        sum: text.lines().count() as f64,
        fnv: Fnv64::new().write_str(text).finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Reference FNV-1a vectors: empty input is the offset basis, and
        // "a" / "foobar" match the published 64-bit values.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::new().write(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv64::new().write(b"foobar").finish(), 0x85944171f73967e8);
    }

    #[test]
    fn series_digest_is_order_and_bit_sensitive() {
        let a = digest_series("s", &[1.0, 2.0, 3.0]);
        let b = digest_series("s", &[2.0, 1.0, 3.0]);
        assert_eq!(a.sum, b.sum, "sums ignore order");
        assert_ne!(a.fnv, b.fnv, "hash must see order");
        let c = digest_series("s", &[1.0 + f64::EPSILON, 2.0, 3.0]);
        assert_ne!(a.fnv, c.fnv, "hash must see a 1-ulp change");
    }

    #[test]
    fn display_parse_round_trip() {
        let d = digest_series("campaign.records", &[1.5, -2.25, 1e9]);
        let back = DigestLine::parse(&d.to_string()).expect("parses");
        assert_eq!(back.name, d.name);
        assert_eq!(back.count, d.count);
        assert_eq!(back.fnv, d.fnv);
        assert!((back.sum - d.sum).abs() <= 1e-6 * d.sum.abs().max(1.0));
    }

    #[test]
    fn negative_zero_differs_from_zero_in_hash() {
        let a = digest_series("z", &[0.0]);
        let b = digest_series("z", &[-0.0]);
        assert_ne!(a.fnv, b.fnv);
    }
}
