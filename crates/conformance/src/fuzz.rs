//! The seeded schedule fuzzer.
//!
//! Composes random pipe stacks (Const/Trace base, optional fault and
//! jitter wrappers), random fault schedules, and random transport
//! workloads; drives them deterministically; and asserts every
//! registered invariant after every step. A violation panics with the
//! case seed and a copy-pasteable reproduction command, so any failure
//! found in CI replays locally in milliseconds.

use crate::invariant::{audit_invariants, check_all, pipe_invariants};
use leo_link::mahimahi::MahimahiTrace;
use leo_netsim::{
    ConstPipe, FaultPipe, FaultSchedule, JitterPipe, LinkId, Pipe, PipeStats, SimTime, Simulator,
    TracePipe,
};
use leo_transport::cc::CcAlgorithm;
use leo_transport::tcp::{TcpConfig, TcpReceiver, TcpSender};
use leo_transport::udp::{UdpBlaster, UdpSink};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fuzzer configuration.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Number of cases to run.
    pub cases: u64,
    /// Master seed; case `i` runs under `case_seed(seed, i)`.
    pub seed: u64,
}

/// What one case exercised.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseReport {
    /// Packets offered to the standalone pipe stack.
    pub offers: u64,
    /// Of those, admitted for delivery.
    pub delivered: u64,
    /// Whether the case also ran a transport workload simulation.
    pub transport: bool,
}

/// Aggregate over a fuzz run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzSummary {
    pub cases: u64,
    pub offers: u64,
    pub delivered: u64,
    pub transport_runs: u64,
}

impl std::fmt::Display for FuzzSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cases: {} offers, {} delivered, {} transport sims, all invariants held",
            self.cases, self.offers, self.delivered, self.transport_runs
        )
    }
}

/// splitmix64 — the same per-unit seed derivation idiom the campaign
/// generator uses, so case seeds are decorrelated even for adjacent
/// indices.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seed case `index` of a run with master `seed` executes under.
pub fn case_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index.wrapping_add(1)))
}

/// Runs the full campaign of fuzz cases; panics with reproduction
/// instructions on the first violation.
pub fn run(cfg: &FuzzConfig) -> FuzzSummary {
    let mut summary = FuzzSummary::default();
    for i in 0..cfg.cases {
        let r = run_case(case_seed(cfg.seed, i));
        summary.cases += 1;
        summary.offers += r.offers;
        summary.delivered += r.delivered;
        summary.transport_runs += r.transport as u64;
    }
    summary
}

macro_rules! fail {
    ($seed:expr, $($arg:tt)*) => {
        panic!(
            "conformance fuzz violation (case-seed {seed:#018x}): {detail}\n\
             reproduce with: cargo run --release --example conformance -- --case-seed {seed:#018x}",
            seed = $seed,
            detail = format_args!($($arg)*),
        )
    };
}

/// The randomly composed subject of one case.
struct PipeCase {
    pipe: Box<dyn Pipe>,
    /// Deliveries can arrive out of admission order (jitter wrapper or a
    /// fault window adding extra delay), so the FIFO check is off.
    reorders: bool,
}

/// Builds a random Const/Trace base with optional Fault and Jitter
/// wrappers. `allow_reorder` gates the delay-adding features so the TCP
/// sub-case can stay within its RTO budget.
fn random_stack(rng: &mut SmallRng) -> PipeCase {
    let delay = SimTime::from_millis(rng.gen_range(0..=100));
    let queue = rng.gen_range(3_000..=1_000_000u64);
    let mut base: Box<dyn Pipe> = if rng.gen_bool(0.5) {
        Box::new(ConstPipe::new(
            rng.gen_range(0.5..500.0),
            delay,
            rng.gen_range(0.0..0.3),
            queue,
        ))
    } else {
        // A 1 Hz capacity series with deliberate dead seconds, replayed
        // through the wrapping Mahimahi schedule.
        let len = rng.gen_range(1..=40usize);
        let caps: Vec<f64> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.2) {
                    0.0
                } else {
                    rng.gen_range(1.0..200.0)
                }
            })
            .collect();
        let mm = MahimahiTrace::from_capacity_series(&caps);
        if mm.is_empty() {
            // All-dead series yields an empty schedule; fall back to a
            // constant pipe so the case still exercises something.
            Box::new(ConstPipe::new(
                rng.gen_range(0.5..500.0),
                delay,
                rng.gen_range(0.0..0.3),
                queue,
            ))
        } else {
            Box::new(TracePipe::new(mm, delay, queue))
        }
    };
    let mut reorders = false;
    if rng.gen_bool(0.6) {
        let mut sched = FaultSchedule::new();
        for _ in 0..rng.gen_range(1..=3) {
            let a = rng.gen_range(0..=18u64);
            let b = a + rng.gen_range(1..=6);
            sched = match rng.gen_range(0..3) {
                0 => sched.outage_s(a, b),
                1 => sched.loss_s(a, b, rng.gen_range(0.05..0.9)),
                _ => {
                    reorders = true; // extra delay ends abruptly at b
                    sched.extra_delay_s(a, b, rng.gen_range(1..=200))
                }
            };
        }
        base = Box::new(FaultPipe::new(base, sched));
    }
    if rng.gen_bool(0.3) {
        reorders = true;
        base = Box::new(JitterPipe::new(
            base,
            SimTime::from_millis(rng.gen_range(1..=20)),
        ));
    }
    PipeCase {
        pipe: base,
        reorders,
    }
}

fn assert_stats_conserved(seed: u64, stage: &str, stats: &PipeStats) {
    if let Some(v) = check_all(&pipe_invariants(), stats).first() {
        fail!(seed, "{stage}: {v} ({stats:?})");
    }
}

/// Runs one case: a standalone offer-loop over a random pipe stack, plus
/// (for a deterministic subset of seeds) a full transport simulation over
/// another random stack.
pub fn run_case(seed: u64) -> CaseReport {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut report = CaseReport::default();

    // --- Layer 1: direct offer-loop over a random stack. ---
    let mut case = random_stack(&mut rng);
    let mut offer_rng = SmallRng::seed_from_u64(splitmix64(seed));
    let offers = rng.gen_range(50..=400u64);
    let mut now = SimTime::ZERO;
    let mut last_delivery = SimTime::ZERO;
    for i in 0..offers {
        now += SimTime::from_nanos(rng.gen_range(0..=5_000_000));
        let size = rng.gen_range(40..=1500u32);
        let admitted = case.pipe.offer(size, now, &mut offer_rng);
        report.offers += 1;
        if let Some(at) = admitted {
            report.delivered += 1;
            if at < now {
                fail!(
                    seed,
                    "offer {i}: delivery at {:?} precedes its offer at {:?}",
                    at,
                    now
                );
            }
            if !case.reorders && at < last_delivery {
                fail!(
                    seed,
                    "offer {i}: FIFO pipe delivered at {:?} before the previous delivery {:?}",
                    at,
                    last_delivery
                );
            }
            last_delivery = last_delivery.max(at);
        }
        // Conservation is exact after *every* offer, not just at the end.
        assert_stats_conserved(seed, &format!("after offer {i}"), &case.pipe.stats());
    }
    let final_stats = case.pipe.stats();
    if final_stats.offered_packets != report.offers {
        fail!(
            seed,
            "stats counted {} offers, the harness made {}",
            final_stats.offered_packets,
            report.offers
        );
    }
    if final_stats.delivered_packets != report.delivered {
        fail!(
            seed,
            "stats counted {} deliveries, the harness observed {}",
            final_stats.delivered_packets,
            report.delivered
        );
    }
    if case.pipe.queued_bytes(now) > final_stats.offered_bytes {
        fail!(seed, "queued bytes exceed everything ever offered");
    }

    // --- Layer 2: a transport workload for a subset of seeds. ---
    match rng.gen_range(0..8u32) {
        0 | 1 => {
            run_udp_case(seed, &mut rng);
            report.transport = true;
        }
        2 => {
            run_tcp_case(seed, &mut rng);
            report.transport = true;
        }
        _ => {}
    }
    report
}

/// UDP blast through a random stack: end-to-end counters must reconcile
/// with the pipe's, and the completed run must audit clean.
fn run_udp_case(seed: u64, rng: &mut SmallRng) {
    let case = random_stack(rng);
    let secs = rng.gen_range(2..=6u64);
    let rate = rng.gen_range(1.0..100.0);
    let mut sim = Simulator::new(splitmix64(seed ^ 0xdeb5));
    let sink = sim.add_node(Box::new(UdpSink::new(1)));
    let blaster = sim.add_node(Box::new(UdpBlaster::new(
        1,
        LinkId(0),
        rate,
        SimTime::from_secs(secs),
    )));
    sim.add_link(Box::new(case.pipe), sink);
    sim.with_agent(blaster, |a, ctx| {
        a.as_any_mut()
            .downcast_mut::<UdpBlaster>()
            .expect("blaster")
            .start(ctx)
    });
    sim.run_until(SimTime::from_secs(secs + 2));
    let audit = sim.audit();
    if let Some(v) = check_all(&audit_invariants(), &audit).first() {
        fail!(seed, "udp sim: {v}");
    }
    let sent = sim.agent_as::<UdpBlaster>(blaster).packets_sent;
    let sink = sim.agent_as::<UdpSink>(sink);
    let stats = audit.links[0];
    if stats.offered_packets != sent {
        fail!(
            seed,
            "udp sim: pipe saw {} offers, blaster sent {sent}",
            stats.offered_packets
        );
    }
    if sink.packets_received > stats.delivered_packets {
        fail!(
            seed,
            "udp sim: sink received {} of {} admitted packets",
            sink.packets_received,
            stats.delivered_packets
        );
    }
    let loss = sink.loss_rate();
    if !(0.0..=1.0).contains(&loss) {
        fail!(seed, "udp sim: loss rate {loss} outside [0, 1]");
    }
}

/// TCP download over a lossy constant pipe: goodput must stay within the
/// data pipe's deliveries, and the completed run must audit clean.
fn run_tcp_case(seed: u64, rng: &mut SmallRng) {
    let secs = rng.gen_range(3..=8u64);
    let data = ConstPipe::new(
        rng.gen_range(1.0..100.0),
        SimTime::from_millis(rng.gen_range(1..=50)),
        rng.gen_range(0.0..0.05),
        rng.gen_range(30_000..=500_000u64),
    );
    let ack = ConstPipe::new(100.0, SimTime::from_millis(10), 0.0, 1 << 22);
    let mut sim = Simulator::new(splitmix64(seed ^ 0x7c9));
    let sender = sim.add_node(Box::new(TcpSender::new(TcpConfig {
        flow: 1,
        cc: CcAlgorithm::Cubic,
        rwnd_packets: 1 << 16,
        data_link: LinkId(0),
        limit_packets: None,
    })));
    let receiver = sim.add_node(Box::new(TcpReceiver::new(1, LinkId(1))));
    sim.add_link(Box::new(data), receiver);
    sim.add_link(Box::new(ack), sender);
    sim.with_agent(sender, |a, ctx| {
        a.as_any_mut()
            .downcast_mut::<TcpSender>()
            .expect("sender")
            .start(ctx)
    });
    sim.run_until(SimTime::from_secs(secs));
    let audit = sim.audit();
    if let Some(v) = check_all(&audit_invariants(), &audit).first() {
        fail!(seed, "tcp sim: {v}");
    }
    let goodput = sim.agent_as::<TcpReceiver>(receiver).meter.total_bytes();
    if goodput > audit.links[0].delivered_bytes {
        fail!(
            seed,
            "tcp sim: receiver delivered {goodput} bytes, the data pipe only carried {}",
            audit.links[0].delivered_bytes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_decorrelated() {
        let a = case_seed(7, 0);
        let b = case_seed(7, 1);
        let c = case_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And stable: the repro command depends on this exact derivation.
        assert_eq!(case_seed(7, 0), a);
    }

    #[test]
    fn smoke_fuzz_holds_invariants() {
        let s = run(&FuzzConfig { cases: 25, seed: 7 });
        assert_eq!(s.cases, 25);
        assert!(s.offers >= 25 * 50);
    }
}
