//! Golden digests of the canonical pipelines.
//!
//! [`compute_digests`] fingerprints three canonical artifacts — the
//! small campaign every test fixture shares, a full sweep of the eight
//! built-in scenarios, and every registered figure pipeline — and
//! [`compare`] diffs the result against the committed golden file. Any
//! behavior change in any layer (orbit, link model, transport, figure
//! aggregation, scenario engine) shifts at least one line and fails
//! loudly; intentional changes are re-blessed with
//! `cargo run --release --example conformance -- --bless`.

use crate::digest::{digest_text, DigestLine, Fnv64};
use crate::invariant::{campaign_invariants, check_all, report_invariants, Violation};
use leo_core::all_figures;
use leo_dataset::campaign::CampaignConfig;
use leo_link::trace::LinkTrace;
use leo_scenario::library::builtin_scenarios;
use leo_scenario::runner::ScenarioRunner;
use std::path::PathBuf;

/// Scale of the canonical campaign (= [`CampaignConfig::small`]).
pub const CAMPAIGN_SCALE: f64 = 0.02;
/// Seed of the canonical campaign (= the default seed).
pub const CAMPAIGN_SEED: u64 = 0xcafe_2023;
/// Scale of the canonical scenario sweep.
pub const SCENARIO_SCALE: f64 = 0.01;
/// Seed of the canonical scenario sweep.
pub const SCENARIO_SEED: u64 = 0x5eed;

/// The committed golden file, resolved relative to this crate so the
/// checker works from any working directory.
pub fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens/conformance.txt")
}

fn digest_trace(name: String, trace: &LinkTrace) -> DigestLine {
    let mut h = Fnv64::new();
    let mut cap_sum = 0.0;
    for c in trace.samples() {
        h.write_f64(c.capacity_mbps)
            .write_f64(c.rtt_ms)
            .write_f64(c.loss);
        cap_sum += c.capacity_mbps;
    }
    DigestLine {
        name,
        count: trace.duration_s(),
        sum: cap_sum,
        fnv: h.finish(),
    }
}

/// Computes the full digest set. Deterministic by construction: every
/// input below is a pure function of fixed `(scale, seed)` configs, and
/// the campaign/scenario engines are byte-identical across thread
/// counts, so the result matches at `LEO_CAMPAIGN_THREADS=1` and `=4`.
pub fn compute_digests() -> Vec<DigestLine> {
    let mut out = Vec::new();

    // 1. The canonical campaign: per-network traces + the test records.
    let campaign = leo_core::cached_campaign(CAMPAIGN_SCALE, CAMPAIGN_SEED);
    for (network, (down, up)) in &campaign.traces {
        out.push(digest_trace(
            format!("campaign.trace.{}.down", network.label()),
            down,
        ));
        out.push(digest_trace(
            format!("campaign.trace.{}.up", network.label()),
            up,
        ));
    }
    {
        let mut h = Fnv64::new();
        let mut sum = 0.0;
        for r in &campaign.records {
            // Debug formatting of f64 is shortest-roundtrip, so the hash
            // sees every bit of every field.
            h.write_str(&format!("{r:?}"));
            sum += r.mean_mbps;
        }
        out.push(DigestLine {
            name: "campaign.records".to_string(),
            count: campaign.records.len() as u64,
            sum,
            fnv: h.finish(),
        });
    }

    // 2. Every registered figure pipeline, rendered from that campaign.
    for f in all_figures() {
        out.push(digest_text(
            format!("figure.{}", f.id),
            &(f.render)(campaign),
        ));
    }

    // 3. The eight built-in scenarios, swept at the canonical config.
    let report = ScenarioRunner::new(CampaignConfig {
        scale: SCENARIO_SCALE,
        seed: SCENARIO_SEED,
        ..CampaignConfig::default()
    })
    .run(&builtin_scenarios());
    for o in &report.outcomes {
        out.push(DigestLine {
            name: format!("scenario.{}", o.name),
            count: o.tests as u64,
            sum: o.udp_down_mean_mbps,
            fnv: Fnv64::new().write_str(&format!("{o:?}")).finish(),
        });
    }
    out.push(digest_text("scenario.report-json", &report.to_json()));

    out
}

/// Runs the full invariant suite over the same canonical artifacts the
/// digests cover, returning every violation.
pub fn check_invariants() -> Vec<Violation> {
    let mut v = Vec::new();
    let campaign = leo_core::cached_campaign(CAMPAIGN_SCALE, CAMPAIGN_SEED);
    v.extend(check_all(&campaign_invariants(), campaign));
    let report = ScenarioRunner::new(CampaignConfig {
        scale: SCENARIO_SCALE,
        seed: SCENARIO_SEED,
        ..CampaignConfig::default()
    })
    .run(&builtin_scenarios());
    v.extend(check_all(&report_invariants(), &report));
    v
}

/// Renders digests in the committed file format.
pub fn render(digests: &[DigestLine]) -> String {
    let mut s = String::new();
    s.push_str("# leo-cell conformance goldens\n");
    s.push_str("# regenerate: cargo run --release --example conformance -- --bless\n");
    s.push_str(&format!(
        "# campaign scale={CAMPAIGN_SCALE} seed={CAMPAIGN_SEED:#x} | scenarios scale={SCENARIO_SCALE} seed={SCENARIO_SEED:#x}\n"
    ));
    for d in digests {
        s.push_str(&d.to_string());
        s.push('\n');
    }
    s
}

/// Parses a golden file's digest lines (comments and blanks skipped).
pub fn parse(text: &str) -> Vec<DigestLine> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(DigestLine::parse)
        .collect()
}

/// Diffs freshly computed digests against the committed goldens.
///
/// `Ok(n)` is the number of matching lines; `Err` lists every mismatch
/// (changed hash, missing line, unexpected extra line) plus the bless
/// instructions.
pub fn compare(current: &[DigestLine], golden_text: &str) -> Result<usize, String> {
    let golden = parse(golden_text);
    let mut problems = Vec::new();
    for c in current {
        match golden.iter().find(|g| g.name == c.name) {
            None => problems.push(format!("missing from goldens: {c}")),
            // Compare on the hash and count: the sum is informational
            // (rounded for display), the fnv carries the full precision.
            Some(g) if g.fnv != c.fnv || g.count != c.count => {
                problems.push(format!("changed: {c}\n   golden: {g}"));
            }
            Some(_) => {}
        }
    }
    for g in &golden {
        if !current.iter().any(|c| c.name == g.name) {
            problems.push(format!("stale golden (no longer computed): {g}"));
        }
    }
    if problems.is_empty() {
        Ok(current.len())
    } else {
        Err(format!(
            "{} golden digest mismatch(es):\n{}\n\nIf this change is intentional, re-bless with:\n  cargo run --release --example conformance -- --bless",
            problems.len(),
            problems.join("\n")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::digest_series;

    #[test]
    fn render_parse_round_trip() {
        let ds = vec![
            digest_series("a.one", &[1.0, 2.0]),
            digest_series("b.two", &[-3.5]),
        ];
        let text = render(&ds);
        let back = parse(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "a.one");
        assert_eq!(back[0].fnv, ds[0].fnv);
        assert_eq!(compare(&ds, &text), Ok(2));
    }

    #[test]
    fn compare_reports_changes_and_staleness() {
        let ds = vec![digest_series("a", &[1.0]), digest_series("b", &[2.0])];
        let text = render(&ds);
        // A perturbed value fails with a "changed" line.
        let perturbed = vec![digest_series("a", &[1.0 + 1e-12]), ds[1].clone()];
        let err = compare(&perturbed, &text).unwrap_err();
        assert!(err.contains("changed: a"), "{err}");
        assert!(err.contains("--bless"), "{err}");
        // A new artifact fails as missing; a removed one as stale.
        let extra = vec![ds[0].clone(), ds[1].clone(), digest_series("c", &[3.0])];
        assert!(compare(&extra, &text).unwrap_err().contains("missing"));
        let fewer = vec![ds[0].clone()];
        assert!(compare(&fewer, &text).unwrap_err().contains("stale"));
    }
}
