//! Machine-checked simulation laws.
//!
//! Every law the reproduction's credibility rests on is expressed as an
//! [`Invariant`] over some subject type — pipe counters, simulator
//! audits, link traces, whole campaigns, emulation results, scenario
//! reports — and collected into per-subject registries. `check_all`
//! evaluates a registry and returns the violations, so callers can
//! assert emptiness (tests, the fuzzer) or report them (the
//! `conformance` example).

use leo_core::mptcp_emu::EmulationResult;
use leo_dataset::campaign::Campaign;
use leo_dataset::record::NetworkId;
use leo_link::trace::LinkTrace;
use leo_netsim::{PipeStats, SimAudit};
use leo_scenario::runner::ScenarioReport;

/// One broken law.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the invariant that failed.
    pub invariant: &'static str,
    /// What exactly went wrong, with the offending numbers.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// A law over subjects of type `S`.
pub trait Invariant<S: ?Sized> {
    /// Stable identifier, e.g. `"pipe.packet-conservation"`.
    fn name(&self) -> &'static str;

    /// `Ok(())` when the law holds; `Err(detail)` with the offending
    /// numbers when it does not.
    fn check(&self, subject: &S) -> Result<(), String>;
}

/// Evaluates every invariant in `registry` against `subject`.
pub fn check_all<S: ?Sized>(registry: &[Box<dyn Invariant<S>>], subject: &S) -> Vec<Violation> {
    registry
        .iter()
        .filter_map(|inv| {
            inv.check(subject).err().map(|detail| Violation {
                invariant: inv.name(),
                detail,
            })
        })
        .collect()
}

/// A named closure-backed invariant — the registry building block.
struct Law<S: ?Sized> {
    name: &'static str,
    #[allow(clippy::type_complexity)]
    check: Box<dyn Fn(&S) -> Result<(), String> + Send + Sync>,
}

impl<S: ?Sized> Invariant<S> for Law<S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn check(&self, subject: &S) -> Result<(), String> {
        (self.check)(subject)
    }
}

fn law<S: ?Sized + 'static>(
    name: &'static str,
    check: impl Fn(&S) -> Result<(), String> + Send + Sync + 'static,
) -> Box<dyn Invariant<S>> {
    Box::new(Law {
        name,
        check: Box::new(check),
    })
}

/// Laws over a single pipe's counters.
///
/// Conservation here is exact, with no in-flight term: both pipe models
/// count `delivered_packets` at offer time (delivery is scheduled the
/// moment the packet is admitted), so after *any* prefix of offers
/// `offered == delivered + dropped_random + dropped_queue + dropped_fault`
/// holds to the packet.
pub fn pipe_invariants() -> Vec<Box<dyn Invariant<PipeStats>>> {
    vec![
        law("pipe.packet-conservation", |s: &PipeStats| {
            if s.conservation_residual() == 0 {
                Ok(())
            } else {
                Err(format!(
                    "offered {} != delivered {} + random {} + queue {} + fault {} (residual {})",
                    s.offered_packets,
                    s.delivered_packets,
                    s.dropped_random,
                    s.dropped_queue,
                    s.dropped_fault,
                    s.conservation_residual()
                ))
            }
        }),
        law("pipe.byte-conservation", |s: &PipeStats| {
            if s.delivered_bytes <= s.offered_bytes {
                Ok(())
            } else {
                Err(format!(
                    "delivered {} bytes exceed offered {}",
                    s.delivered_bytes, s.offered_bytes
                ))
            }
        }),
        law("pipe.drops-bounded", |s: &PipeStats| {
            let drops = s.dropped_random + s.dropped_queue + s.dropped_fault;
            if drops <= s.offered_packets {
                Ok(())
            } else {
                Err(format!(
                    "{} drops exceed {} offered packets",
                    drops, s.offered_packets
                ))
            }
        }),
    ]
}

/// Laws over a completed simulator run.
pub fn audit_invariants() -> Vec<Box<dyn Invariant<SimAudit>>> {
    vec![
        law("sim.clock-monotonic", |a: &SimAudit| {
            if a.clock_monotonic {
                Ok(())
            } else {
                Err("the event clock ran backwards during the run".to_string())
            }
        }),
        law("sim.links-conserved", |a: &SimAudit| {
            for (i, s) in a.links.iter().enumerate() {
                let v = check_all(&pipe_invariants(), s);
                if let Some(first) = v.first() {
                    return Err(format!("link {i}: {first}"));
                }
            }
            Ok(())
        }),
    ]
}

/// Laws over a link-condition trace.
pub fn trace_invariants() -> Vec<Box<dyn Invariant<LinkTrace>>> {
    vec![
        law("trace.capacity-nonnegative", |t: &LinkTrace| {
            for (i, c) in t.samples().iter().enumerate() {
                if !(c.capacity_mbps.is_finite() && c.capacity_mbps >= 0.0) {
                    return Err(format!(
                        "{} sample {i}: capacity {} Mbps",
                        t.label, c.capacity_mbps
                    ));
                }
            }
            Ok(())
        }),
        law("trace.rtt-nonnegative", |t: &LinkTrace| {
            for (i, c) in t.samples().iter().enumerate() {
                if !(c.rtt_ms.is_finite() && c.rtt_ms >= 0.0) {
                    return Err(format!("{} sample {i}: rtt {} ms", t.label, c.rtt_ms));
                }
            }
            Ok(())
        }),
        law("trace.loss-in-unit-range", |t: &LinkTrace| {
            for (i, c) in t.samples().iter().enumerate() {
                if !(c.loss.is_finite() && (0.0..=1.0).contains(&c.loss)) {
                    return Err(format!("{} sample {i}: loss {}", t.label, c.loss));
                }
            }
            Ok(())
        }),
    ]
}

/// Laws over a generated campaign: every trace healthy, every record's
/// statistics physical, every test inside the drive's timeline.
pub fn campaign_invariants() -> Vec<Box<dyn Invariant<Campaign>>> {
    vec![
        law("campaign.traces-well-formed", |c: &Campaign| {
            let traces = trace_invariants();
            for (down, up) in c.traces.values() {
                for t in [down, up] {
                    if let Some(first) = check_all(&traces, t).first() {
                        return Err(first.to_string());
                    }
                }
            }
            Ok(())
        }),
        law("campaign.records-physical", |c: &Campaign| {
            for r in &c.records {
                if !(r.mean_mbps.is_finite() && r.mean_mbps >= 0.0) {
                    return Err(format!("test {}: mean {} Mbps", r.test_id, r.mean_mbps));
                }
                if !(r.median_mbps.is_finite() && r.median_mbps >= 0.0) {
                    return Err(format!("test {}: median {} Mbps", r.test_id, r.median_mbps));
                }
                if !(r.retrans_rate.is_finite() && (0.0..=1.0).contains(&r.retrans_rate)) {
                    return Err(format!("test {}: retrans {}", r.test_id, r.retrans_rate));
                }
                if let Some(rtt) = r.mean_rtt_ms {
                    if !(rtt.is_finite() && rtt >= 0.0) {
                        return Err(format!("test {}: rtt {} ms", r.test_id, rtt));
                    }
                }
            }
            Ok(())
        }),
        law("campaign.records-inside-drive", |c: &Campaign| {
            let drive_s = c.samples.len() as u64;
            for r in &c.records {
                if r.t_start_s + r.duration_s as u64 > drive_s {
                    return Err(format!(
                        "test {} runs [{}, {}) past the {}s drive",
                        r.test_id,
                        r.t_start_s,
                        r.t_start_s + r.duration_s as u64,
                        drive_s
                    ));
                }
            }
            Ok(())
        }),
    ]
}

/// Laws over one emulated download.
///
/// `link_stats` lists data pipes first, then ack pipes (both harness
/// layouts — single-path and MPTCP — construct links in that order), so
/// the first half of the list carries the download.
pub fn emulation_invariants() -> Vec<Box<dyn Invariant<EmulationResult>>> {
    vec![
        law("emu.links-conserved", |e: &EmulationResult| {
            for (i, s) in e.link_stats.iter().enumerate() {
                if let Some(first) = check_all(&pipe_invariants(), s).first() {
                    return Err(format!("link {i}: {first}"));
                }
            }
            Ok(())
        }),
        law(
            "emu.goodput-bounded-by-data-pipes",
            |e: &EmulationResult| {
                if e.link_stats.is_empty() {
                    // Degenerate (both paths dead): nothing delivered.
                    return if e.delivered_bytes == 0 {
                        Ok(())
                    } else {
                        Err(format!(
                            "{} bytes delivered over no links",
                            e.delivered_bytes
                        ))
                    };
                }
                let data: u64 = e.link_stats[..e.link_stats.len() / 2]
                    .iter()
                    .map(|s| s.delivered_bytes)
                    .sum();
                if e.delivered_bytes <= data {
                    Ok(())
                } else {
                    Err(format!(
                        "receiver delivered {} bytes but the data pipes carried only {}",
                        e.delivered_bytes, data
                    ))
                }
            },
        ),
        law("emu.rates-physical", |e: &EmulationResult| {
            if !(e.mean_mbps.is_finite() && e.mean_mbps >= 0.0) {
                return Err(format!("mean {} Mbps", e.mean_mbps));
            }
            for (i, &v) in e.per_second_mbps.iter().enumerate() {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(format!("second {i}: {v} Mbps"));
                }
            }
            Ok(())
        }),
    ]
}

/// Laws over a scenario sweep report, including the ablation law: the
/// `leo-only` / `cell-only` built-ins must *exactly* zero the dead
/// family's capacity (outage is total, not probabilistic).
pub fn report_invariants() -> Vec<Box<dyn Invariant<ScenarioReport>>> {
    vec![
        law("scenario.shares-in-range", |r: &ScenarioReport| {
            for o in &r.outcomes {
                for (what, v) in [
                    ("mob_high", o.coverage.mob_high),
                    ("best_cell_high", o.coverage.best_cell_high),
                    ("combined_high", o.coverage.combined_high),
                    ("combined_poor", o.coverage.combined_poor),
                ] {
                    if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                        return Err(format!("{}: {what} = {v}", o.name));
                    }
                }
            }
            Ok(())
        }),
        law(
            "scenario.ablations-zero-dead-family",
            |r: &ScenarioReport| {
                for (scenario, dead) in [
                    ("leo-only", &NetworkId::CELLULAR[..]),
                    ("cell-only", &NetworkId::STARLINK[..]),
                ] {
                    let Some(o) = r.outcomes.iter().find(|o| o.name == scenario) else {
                        continue;
                    };
                    for n in dead {
                        let Some(m) = o.networks.iter().find(|m| m.network == n.label()) else {
                            return Err(format!("{scenario}: network {} missing", n.label()));
                        };
                        if m.mean_capacity_mbps != 0.0 || m.outage_frac != 1.0 {
                            return Err(format!(
                                "{scenario}: {} not fully dark (capacity {}, outage {})",
                                n.label(),
                                m.mean_capacity_mbps,
                                m.outage_frac
                            ));
                        }
                    }
                }
                Ok(())
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_link::condition::LinkCondition;

    fn good_stats() -> PipeStats {
        PipeStats {
            offered_packets: 10,
            offered_bytes: 15_000,
            delivered_packets: 7,
            delivered_bytes: 10_500,
            dropped_random: 1,
            dropped_queue: 1,
            dropped_fault: 1,
        }
    }

    #[test]
    fn conserved_stats_pass() {
        assert!(check_all(&pipe_invariants(), &good_stats()).is_empty());
    }

    #[test]
    fn leaked_packet_is_caught() {
        let mut s = good_stats();
        s.delivered_packets = 6; // one packet vanished
        let v = check_all(&pipe_invariants(), &s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "pipe.packet-conservation");
        assert!(v[0].detail.contains("residual 1"), "{}", v[0].detail);
    }

    #[test]
    fn byte_inflation_is_caught() {
        let mut s = good_stats();
        s.delivered_bytes = s.offered_bytes + 1;
        let v = check_all(&pipe_invariants(), &s);
        assert!(v.iter().any(|v| v.invariant == "pipe.byte-conservation"));
    }

    #[test]
    fn audit_flags_rewound_clock() {
        let audit = SimAudit {
            clock_monotonic: false,
            links: vec![good_stats()],
        };
        let v = check_all(&audit_invariants(), &audit);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "sim.clock-monotonic");
    }

    #[test]
    fn trace_laws_catch_bad_samples() {
        // `LinkCondition::new` sanitizes its inputs, so corrupt samples
        // are built field-by-field — the invariants guard against bugs
        // that bypass the constructor, not against constructor misuse.
        let corrupt = |cap: f64, rtt: f64, loss: f64| {
            let mut c = LinkCondition::new(50.0, 40.0, 0.0);
            c.capacity_mbps = cap;
            c.rtt_ms = rtt;
            c.loss = loss;
            c
        };
        let bad = LinkTrace::new(
            "X",
            0,
            vec![
                LinkCondition::new(50.0, 40.0, 0.0),
                corrupt(-1.0, 40.0, 0.0),
            ],
        );
        let v = check_all(&trace_invariants(), &bad);
        assert!(v
            .iter()
            .any(|v| v.invariant == "trace.capacity-nonnegative"));
        let nan_rtt = LinkTrace::new("Y", 0, vec![corrupt(50.0, f64::NAN, 0.0)]);
        let v = check_all(&trace_invariants(), &nan_rtt);
        assert!(v.iter().any(|v| v.invariant == "trace.rtt-nonnegative"));
        let inf_loss = LinkTrace::new("Z", 0, vec![corrupt(50.0, 40.0, f64::INFINITY)]);
        let v = check_all(&trace_invariants(), &inf_loss);
        assert!(v.iter().any(|v| v.invariant == "trace.loss-in-unit-range"));
    }

    #[test]
    fn emulation_goodput_cannot_exceed_data_pipes() {
        let mut data = good_stats();
        data.delivered_bytes = 1000;
        let e = EmulationResult {
            mean_mbps: 1.0,
            per_second_mbps: vec![1.0],
            delivered_bytes: 2000,
            link_stats: vec![data, good_stats()],
        };
        let v = check_all(&emulation_invariants(), &e);
        assert!(v
            .iter()
            .any(|v| v.invariant == "emu.goodput-bounded-by-data-pipes"));
    }
}
