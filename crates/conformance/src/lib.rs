//! The conformance harness: the reproduction's validation layer.
//!
//! The repo's claim — that a fully synthetic pipeline can stand in for
//! the paper's 3,800 km field campaign — only holds if the simulator is
//! provably self-consistent. This crate turns the per-crate spot checks
//! into one enforced layer, in three parts:
//!
//! 1. **[`invariant`]** — machine-checked simulation laws (packet
//!    conservation per pipe, monotonic sim clocks, physical link traces,
//!    MPTCP aggregate bounds, scenario ablation exactness) expressed as
//!    an [`invariant::Invariant`] registry per subject type. The
//!    low-level crates additionally self-audit the same laws at runtime
//!    when `LEO_CONFORMANCE=1` (see [`leo_netsim::strict_checks`]).
//! 2. **[`goldens`]** — compact digests (count, sum, FNV-1a over exact
//!    bit patterns) of the canonical campaign, all eight built-in
//!    scenarios, and every figure pipeline, committed under
//!    `tests/goldens/` and diffed by tests and CI. Intentional behavior
//!    changes are re-blessed via `examples/conformance.rs --bless`.
//! 3. **[`fuzz`]** — a seeded schedule fuzzer composing random pipe
//!    stacks, fault schedules, and transport workloads, asserting every
//!    invariant after every step, with seed-printing repro instructions.

pub mod digest;
pub mod fuzz;
pub mod goldens;
pub mod invariant;

pub use digest::{digest_series, digest_text, DigestLine, Fnv64};
pub use fuzz::{case_seed, run_case, FuzzConfig, FuzzSummary};
pub use invariant::{
    audit_invariants, campaign_invariants, check_all, emulation_invariants, pipe_invariants,
    report_invariants, trace_invariants, Invariant, Violation,
};
