//! The acceptance-criteria fuzz campaign: packet conservation, clock
//! monotonicity, and every other registered invariant must hold over
//! ≥ 500 seeded schedule-fuzzer cases.

use leo_conformance::fuzz::{self, FuzzConfig};

#[test]
fn invariants_hold_over_500_seeded_cases() {
    let summary = fuzz::run(&FuzzConfig {
        cases: 500,
        seed: 0x1e0_c0de,
    });
    assert_eq!(summary.cases, 500);
    // The generator must actually exercise the machinery: tens of
    // thousands of offers, deliveries on both sides of the drop paths,
    // and a healthy number of full transport simulations.
    assert!(summary.offers >= 500 * 50, "only {} offers", summary.offers);
    assert!(
        summary.delivered > 0 && summary.delivered < summary.offers,
        "degenerate delivery profile: {}/{}",
        summary.delivered,
        summary.offers
    );
    assert!(
        summary.transport_runs >= 100,
        "only {} transport sims in 500 cases",
        summary.transport_runs
    );
}

#[test]
fn fuzz_is_deterministic_per_seed() {
    let a = fuzz::run(&FuzzConfig {
        cases: 40,
        seed: 42,
    });
    let b = fuzz::run(&FuzzConfig {
        cases: 40,
        seed: 42,
    });
    assert_eq!(a.offers, b.offers);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.transport_runs, b.transport_runs);
    let c = fuzz::run(&FuzzConfig {
        cases: 40,
        seed: 43,
    });
    assert!(
        a.offers != c.offers || a.delivered != c.delivered,
        "different master seeds produced identical traffic"
    );
}
