//! Figure 1 — motivation: download-throughput heat strips of four
//! networks over a shared 1,200-second drive segment.
//!
//! "Our results are summarized in Figure 1, where darker colors indicate
//! periods of higher throughput. As we traversed different areas, we can
//! observe instances where Starlink demonstrated better throughput
//! performance compared to the cellular network, and vice versa."

use leo_dataset::campaign::Campaign;
use leo_dataset::record::NetworkId;
use serde::{Deserialize, Serialize};

/// Window length in seconds (the paper's x-axis runs to 1,200 s).
pub const WINDOW_S: u64 = 1200;

/// The four networks Figure 1 shows, top to bottom.
pub const NETWORKS: [NetworkId; 4] = [
    NetworkId::Mobility,
    NetworkId::Verizon,
    NetworkId::TMobile,
    NetworkId::Att,
];

/// Per-network, per-second downlink throughput over the window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Data {
    /// `(label, per-second Mbps)`, in figure order.
    pub strips: Vec<(String, Vec<f64>)>,
    /// Scale ceiling for the colour map, Mbps (the paper's 375).
    pub v_max: f64,
}

/// Extracts the Figure 1 window from a campaign.
///
/// The window starts a quarter into the drive, which at full scale places
/// it on a mixed urban/suburban-to-rural transition where the
/// complementarity is visible.
pub fn run(campaign: &Campaign) -> Fig1Data {
    let timeline = campaign.samples.len() as u64;
    let start = timeline / 4;
    let len = WINDOW_S.min(timeline.saturating_sub(start)).max(1);
    let strips = NETWORKS
        .iter()
        .map(|&n| {
            let (down, _) = &campaign.traces[&n];
            let series: Vec<f64> = (start..start + len)
                .map(|t| {
                    down.at(t)
                        .map(|c| c.capacity_mbps * (1.0 - c.loss))
                        .unwrap_or(0.0)
                })
                .collect();
            (n.label().to_string(), series)
        })
        .collect();
    Fig1Data {
        strips,
        v_max: 375.0,
    }
}

/// Renders the heat strips.
pub fn render(data: &Fig1Data) -> String {
    let mut out = String::from("Figure 1: Download throughput of different networks\n");
    out.push_str("(darker = higher throughput; window of the drive, left→right in time)\n");
    for (label, series) in &data.strips {
        out.push_str(&leo_analysis::render::render_heat_strip(
            label, series, data.v_max, 80,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{shared_campaign, small_campaign};

    #[test]
    fn strips_cover_four_networks_and_vary() {
        let data = run(small_campaign());
        assert_eq!(data.strips.len(), 4);
        assert_eq!(data.strips[0].0, "MOB");
        for (label, series) in &data.strips {
            assert!(!series.is_empty(), "{label} strip empty");
            let max = series.iter().cloned().fold(0.0, f64::max);
            assert!(max > 1.0, "{label} never gets any throughput");
        }
        let rendered = render(&data);
        assert!(rendered.contains("MOB"));
        assert!(rendered.contains("ATT"));
    }

    #[test]
    fn complementarity_exists_somewhere() {
        // The figure's entire point: at some instants Starlink wins, at
        // others a cellular network wins.
        let data = run(shared_campaign());
        let mob = &data.strips[0].1;
        let vz = &data.strips[1].1;
        let n = mob.len().min(vz.len());
        let mob_wins = (0..n).filter(|&i| mob[i] > vz[i] + 5.0).count();
        let vz_wins = (0..n).filter(|&i| vz[i] > mob[i] + 5.0).count();
        assert!(
            mob_wins > 0 && vz_wins > 0,
            "no complementarity: MOB wins {mob_wins}, VZ wins {vz_wins}"
        );
    }
}
