//! Figure 10 — single-path TCP vs. MPTCP download performance, tuned and
//! untuned buffers.
//!
//! "The first three boxes represent the single-path TCP transfer results
//! under AT&T, Verizon, and Mobility … The benefits of MPTCP are clear …
//! the bandwidth utilization of the two tested combinations is 81% and
//! 84%, and the improvement over the better path reaches 30% and 66% …
//! with the default buffer sizes, MPTCP has marginal improvements over
//! single-path transfers."

use crate::mptcp_emu::{buffer_packets, run_mptcp, run_single_path, BufferTuning};
use leo_analysis::stats::{improvement_pct, BoxStats};
use leo_dataset::campaign::Campaign;
use leo_dataset::record::NetworkId;
use leo_transport::mptcp::SchedulerKind;
use serde::{Deserialize, Serialize};

/// Per-configuration download means across emulation windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Data {
    /// `(box label, per-window mean Mbps)` in figure order:
    /// ATT, VZ, MOB, MOB+ATT, MOB+VZ, then untuned MOB+ATT / MOB+VZ.
    pub boxes: Vec<(String, Vec<f64>)>,
    /// Mean bandwidth utilisation of the tuned combinations (delivered /
    /// sum of path capacities).
    pub utilisation: Vec<(String, f64)>,
    /// Improvement of each tuned combination over its better single path.
    pub improvement_over_better: Vec<(String, f64)>,
}

/// Parameters of the Figure 10 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Params {
    /// Number of emulation windows.
    pub windows: usize,
    /// Window length, seconds (the paper ran 5-minute downloads).
    pub window_s: u64,
    pub seed: u64,
}

impl Default for Fig10Params {
    fn default() -> Self {
        Self {
            windows: 6,
            window_s: 300,
            seed: 0xf1610,
        }
    }
}

impl Fig10Params {
    /// A fast configuration for unit tests.
    pub fn quick() -> Self {
        Self {
            windows: 2,
            window_s: 45,
            seed: 0xf1610,
        }
    }
}

/// Picks the emulation windows: candidate windows are scored by the
/// *worst* network's mean capacity and the best `count` survive — the
/// paper ran its 5-minute downloads on drive segments where every network
/// had service, not inside urban satellite dead zones.
pub fn select_windows(campaign: &Campaign, count: usize, span: u64) -> Vec<u64> {
    let timeline = campaign.samples.len() as u64;
    let usable = timeline.saturating_sub(span);
    let candidates = (count * 4).max(8) as u64;
    let stride = (usable / candidates).max(1);
    let mut scored: Vec<(f64, u64)> = (0..candidates)
        .map(|i| {
            let t0 = (i * stride).min(usable);
            let score = [NetworkId::Att, NetworkId::Verizon, NetworkId::Mobility]
                .iter()
                .map(|n| {
                    campaign.traces[n]
                        .0
                        .window(t0, t0 + span)
                        .stats()
                        .map(|s| s.mean_mbps)
                        .unwrap_or(0.0)
                })
                .fold(f64::INFINITY, f64::min);
            (score, t0)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    let mut picked: Vec<u64> = scored.into_iter().take(count).map(|(_, t)| t).collect();
    picked.sort_unstable();
    picked
}

/// Runs the Figure 10 emulation sweep.
pub fn run(campaign: &Campaign, params: Fig10Params) -> Fig10Data {
    let span = params.window_s;
    let windows = select_windows(campaign, params.windows, span);

    let trace = |n: NetworkId| &campaign.traces[&n].0;
    let mut results: Vec<(String, Vec<f64>)> = [
        "ATT",
        "VZ",
        "MOB",
        "MOB+ATT",
        "MOB+VZ",
        "MOB+ATT (untuned)",
        "MOB+VZ (untuned)",
    ]
    .iter()
    .map(|l| (l.to_string(), Vec::new()))
    .collect();
    let mut caps_mob_att = Vec::new();
    let mut caps_mob_vz = Vec::new();

    for (w, &t0) in windows.iter().enumerate() {
        let t1 = t0 + span;
        let att = trace(NetworkId::Att).window(t0, t1);
        let vz = trace(NetworkId::Verizon).window(t0, t1);
        let mob = trace(NetworkId::Mobility).window(t0, t1);
        let seed = params.seed ^ (w as u64);

        results[0].1.push(run_single_path(&att, seed).mean_mbps);
        results[1].1.push(run_single_path(&vz, seed).mean_mbps);
        results[2].1.push(run_single_path(&mob, seed).mean_mbps);
        results[3]
            .1
            .push(run_mptcp(&mob, &att, SchedulerKind::Blest, BufferTuning::Tuned, seed).mean_mbps);
        results[4]
            .1
            .push(run_mptcp(&mob, &vz, SchedulerKind::Blest, BufferTuning::Tuned, seed).mean_mbps);
        results[5].1.push(
            run_mptcp(
                &mob,
                &att,
                SchedulerKind::Blest,
                BufferTuning::Default,
                seed,
            )
            .mean_mbps,
        );
        results[6].1.push(
            run_mptcp(&mob, &vz, SchedulerKind::Blest, BufferTuning::Default, seed).mean_mbps,
        );

        let cap = |t: &leo_link::trace::LinkTrace| t.stats().map(|s| s.mean_mbps).unwrap_or(0.0);
        caps_mob_att.push(cap(&mob) + cap(&att));
        caps_mob_vz.push(cap(&mob) + cap(&vz));
        // Untuned buffer sanity: it must actually be smaller.
        debug_assert!(
            buffer_packets(BufferTuning::Default, &mob, &att)
                < buffer_packets(BufferTuning::Tuned, &mob, &att)
        );
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let utilisation = vec![
        (
            "MOB+ATT".to_string(),
            mean(&results[3].1) / mean(&caps_mob_att).max(1e-9),
        ),
        (
            "MOB+VZ".to_string(),
            mean(&results[4].1) / mean(&caps_mob_vz).max(1e-9),
        ),
    ];
    let improvement_over_better = vec![
        (
            "MOB+ATT".to_string(),
            improvement_pct(
                mean(&results[0].1).max(mean(&results[2].1)),
                mean(&results[3].1),
            ),
        ),
        (
            "MOB+VZ".to_string(),
            improvement_pct(
                mean(&results[1].1).max(mean(&results[2].1)),
                mean(&results[4].1),
            ),
        ),
    ];

    Fig10Data {
        boxes: results,
        utilisation,
        improvement_over_better,
    }
}

/// Renders the box summaries.
pub fn render(data: &Fig10Data) -> String {
    let mut out = String::from("Figure 10: Single-path TCP and MPTCP data download performance\n");
    for (label, samples) in &data.boxes {
        match BoxStats::from_samples(samples) {
            Some(s) => out.push_str(&leo_analysis::render::render_box_row(label, &s, 400.0, 60)),
            None => out.push_str(&format!("{label:>6} | (no windows)\n")),
        }
    }
    out.push('\n');
    for (label, u) in &data.utilisation {
        out.push_str(&format!(
            "  {label} bandwidth utilisation: {:.0}%\n",
            u * 100.0
        ));
    }
    for (label, imp) in &data.improvement_over_better {
        out.push_str(&format!(
            "  {label} improvement over better path: {imp:+.0}%\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    #[test]
    fn tuned_mptcp_beats_single_paths() {
        let d = run(shared_campaign(), Fig10Params::quick());
        let mean = |l: &str| {
            let (_, v) = d.boxes.iter().find(|(bl, _)| bl == l).unwrap();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let best_single = mean("ATT").max(mean("VZ")).max(mean("MOB"));
        let mp = mean("MOB+VZ").max(mean("MOB+ATT"));
        assert!(
            mp > best_single * 0.95,
            "tuned MPTCP {mp} should at least match the better path {best_single}"
        );
    }

    #[test]
    fn untuned_is_worse_than_tuned() {
        let d = run(shared_campaign(), Fig10Params::quick());
        let mean = |l: &str| {
            let (_, v) = d.boxes.iter().find(|(bl, _)| bl == l).unwrap();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean("MOB+VZ (untuned)") <= mean("MOB+VZ") * 1.05,
            "untuned {} vs tuned {}",
            mean("MOB+VZ (untuned)"),
            mean("MOB+VZ")
        );
    }

    #[test]
    fn utilisation_is_a_sane_fraction() {
        let d = run(shared_campaign(), Fig10Params::quick());
        for (label, u) in &d.utilisation {
            assert!(
                (0.2..=1.05).contains(u),
                "{label} utilisation {u} out of range"
            );
        }
    }

    #[test]
    fn render_mentions_all_boxes() {
        let d = run(shared_campaign(), Fig10Params::quick());
        let s = render(&d);
        assert!(s.contains("MOB+ATT"));
        assert!(s.contains("untuned"));
        assert!(s.contains("utilisation"));
    }
}
