//! Figure 11 — throughput over time: MPTCP vs. each single path, for
//! Mobility+AT&T and Mobility+Verizon.
//!
//! "MPTCP almost always outperforms either single-path transfer, taking
//! advantage of the bandwidth of the faster path … when both network
//! conditions are favorable … MPTCP throughput exceeds 300 Mbps which can
//! never be achieved by either network alone."

use crate::mptcp_emu::{run_mptcp, run_single_path, BufferTuning};
use leo_dataset::campaign::Campaign;
use leo_dataset::record::NetworkId;
use leo_transport::mptcp::SchedulerKind;
use serde::{Deserialize, Serialize};

/// One panel: per-second series for the two single paths and MPTCP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Panel {
    pub title: String,
    pub single_a: (String, Vec<f64>),
    pub single_b: (String, Vec<f64>),
    pub mptcp: Vec<f64>,
}

/// Both panels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Data {
    pub panels: Vec<Fig11Panel>,
}

/// Parameters of the Figure 11 run.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Params {
    /// Window length, seconds (the paper shows 300 s).
    pub window_s: u64,
    pub seed: u64,
}

impl Default for Fig11Params {
    fn default() -> Self {
        Self {
            window_s: 300,
            seed: 0xf1611,
        }
    }
}

impl Fig11Params {
    /// A fast configuration for unit tests.
    pub fn quick() -> Self {
        Self {
            window_s: 40,
            seed: 0xf1611,
        }
    }
}

/// Runs both panels on the best emulation window (every network live —
/// the same segment-selection rule as Figure 10).
pub fn run(campaign: &Campaign, params: Fig11Params) -> Fig11Data {
    let t0 = crate::fig10::select_windows(campaign, 1, params.window_s)
        .first()
        .copied()
        .unwrap_or(0);
    let t1 = t0 + params.window_s.min(campaign.samples.len() as u64);
    let trace = |n: NetworkId| campaign.traces[&n].0.window(t0, t1);

    let mob = trace(NetworkId::Mobility);
    let panels = [
        (NetworkId::Att, "(a) Mobility and AT&T"),
        (NetworkId::Verizon, "(b) Mobility and Verizon"),
    ]
    .into_iter()
    .map(|(cell, title)| {
        let ct = trace(cell);
        let sm = run_single_path(&mob, params.seed);
        let sc = run_single_path(&ct, params.seed);
        let mp = run_mptcp(
            &mob,
            &ct,
            SchedulerKind::Blest,
            BufferTuning::Tuned,
            params.seed,
        );
        Fig11Panel {
            title: title.to_string(),
            single_a: ("MOB".to_string(), sm.per_second_mbps),
            single_b: (cell.label().to_string(), sc.per_second_mbps),
            mptcp: mp.per_second_mbps,
        }
    })
    .collect();
    Fig11Data { panels }
}

/// Fraction of seconds where MPTCP is at least as fast as both singles.
pub fn mptcp_dominance(panel: &Fig11Panel) -> f64 {
    let n = panel
        .mptcp
        .len()
        .min(panel.single_a.1.len())
        .min(panel.single_b.1.len());
    if n == 0 {
        return 0.0;
    }
    let wins = (0..n)
        .filter(|&i| panel.mptcp[i] + 1.0 >= panel.single_a.1[i].max(panel.single_b.1[i]) * 0.9)
        .count();
    wins as f64 / n as f64
}

/// Renders both panels as heat strips plus a dominance summary.
pub fn render(data: &Fig11Data) -> String {
    let mut out = String::from("Figure 11: Throughput traces, single-path TCP vs MPTCP\n");
    for p in &data.panels {
        out.push_str(&format!("\n{}\n", p.title));
        out.push_str(&leo_analysis::render::render_heat_strip(
            &p.single_a.0,
            &p.single_a.1,
            400.0,
            80,
        ));
        out.push_str(&leo_analysis::render::render_heat_strip(
            &p.single_b.0,
            &p.single_b.1,
            400.0,
            80,
        ));
        out.push_str(&leo_analysis::render::render_heat_strip(
            "MPTCP", &p.mptcp, 400.0, 80,
        ));
        out.push_str(&format!(
            "  MPTCP ≥ max(single paths) in {:.0}% of seconds\n",
            mptcp_dominance(p) * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    #[test]
    fn panels_have_aligned_series() {
        let c = shared_campaign();
        let d = run(c, Fig11Params::quick());
        assert_eq!(d.panels.len(), 2);
        for p in &d.panels {
            assert_eq!(p.mptcp.len(), p.single_a.1.len());
            assert_eq!(p.mptcp.len(), p.single_b.1.len());
            assert!(!p.mptcp.is_empty());
        }
    }

    #[test]
    fn mptcp_mostly_dominates() {
        let c = shared_campaign();
        let d = run(c, Fig11Params::quick());
        for p in &d.panels {
            let dom = mptcp_dominance(p);
            assert!(
                dom > 0.5,
                "{}: MPTCP dominates only {:.0}% of seconds",
                p.title,
                dom * 100.0
            );
        }
    }

    #[test]
    fn render_includes_both_panels() {
        let c = shared_campaign();
        let s = render(&run(c, Fig11Params::quick()));
        assert!(s.contains("(a) Mobility and AT&T"));
        assert!(s.contains("(b) Mobility and Verizon"));
        assert!(s.contains("MPTCP"));
    }
}
