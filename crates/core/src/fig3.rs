//! Figure 3 — throughput CDFs from three aspects:
//! (a) TCP vs. UDP downlink (Mobility vs. pooled cellular),
//! (b) Roam vs. Mobility (UDP downlink),
//! (c) Starlink uplink vs. downlink (UDP, Mobility).

use leo_analysis::cdf::Cdf;
use leo_dataset::campaign::Campaign;
use leo_dataset::record::{NetworkId, TestKind};
use leo_link::condition::Direction;
use serde::{Deserialize, Serialize};

/// One labelled CDF sample set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelledSamples {
    pub label: String,
    pub mbps: Vec<f64>,
}

impl LabelledSamples {
    /// Builds the CDF (panics only if samples were non-finite, which the
    /// campaign never produces).
    pub fn cdf(&self) -> Cdf {
        Cdf::new(self.mbps.clone())
    }
}

/// All three panels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Data {
    /// Panel (a): MOB-TCP, Cellular-TCP, MOB-UDP, Cellular-UDP.
    pub tcp_vs_udp: Vec<LabelledSamples>,
    /// Panel (b): RM vs MOB, UDP downlink.
    pub roam_vs_mobility: Vec<LabelledSamples>,
    /// Panel (c): uplink vs downlink, UDP, Mobility.
    pub up_vs_down: Vec<LabelledSamples>,
}

fn collect(
    campaign: &Campaign,
    networks: &[NetworkId],
    kind_filter: impl Fn(TestKind) -> bool,
    direction: Direction,
) -> Vec<f64> {
    campaign
        .records
        .iter()
        .filter(|r| {
            networks.contains(&r.network) && kind_filter(r.kind) && r.direction == direction
        })
        .map(|r| r.mean_mbps)
        .collect()
}

/// Runs the Figure 3 analysis over the campaign records.
pub fn run(campaign: &Campaign) -> Fig3Data {
    let is_udp = |k: TestKind| k == TestKind::Udp;
    let is_tcp1 = |k: TestKind| k == TestKind::Tcp { parallel: 1 };
    let mob = [NetworkId::Mobility];
    let rm = [NetworkId::Roam];
    let cell = NetworkId::CELLULAR;

    let tcp_vs_udp = vec![
        LabelledSamples {
            label: "MOB-TCP".into(),
            mbps: collect(campaign, &mob, is_tcp1, Direction::Down),
        },
        LabelledSamples {
            label: "Cellular-TCP".into(),
            mbps: collect(campaign, &cell, is_tcp1, Direction::Down),
        },
        LabelledSamples {
            label: "MOB-UDP".into(),
            mbps: collect(campaign, &mob, is_udp, Direction::Down),
        },
        LabelledSamples {
            label: "Cellular-UDP".into(),
            mbps: collect(campaign, &cell, is_udp, Direction::Down),
        },
    ];
    let roam_vs_mobility = vec![
        LabelledSamples {
            label: "RM".into(),
            mbps: collect(campaign, &rm, is_udp, Direction::Down),
        },
        LabelledSamples {
            label: "MOB".into(),
            mbps: collect(campaign, &mob, is_udp, Direction::Down),
        },
    ];
    let up_vs_down = vec![
        LabelledSamples {
            label: "Uplink".into(),
            mbps: collect(campaign, &mob, is_udp, Direction::Up),
        },
        LabelledSamples {
            label: "Downlink".into(),
            mbps: collect(campaign, &mob, is_udp, Direction::Down),
        },
    ];
    Fig3Data {
        tcp_vs_udp,
        roam_vs_mobility,
        up_vs_down,
    }
}

/// Renders all three panels as ASCII CDF plots plus summary lines.
pub fn render(data: &Fig3Data) -> String {
    let mut out = String::from("Figure 3: Throughput performance comparison\n");
    for (title, sets) in [
        ("(a) TCP vs. UDP", &data.tcp_vs_udp),
        ("(b) Roam vs. Mobility", &data.roam_vs_mobility),
        ("(c) Uplink vs. Downlink", &data.up_vs_down),
    ] {
        out.push_str(&format!("\n{title}\n"));
        let cdfs: Vec<(String, Cdf)> = sets
            .iter()
            .filter(|s| !s.mbps.is_empty())
            .map(|s| (s.label.clone(), s.cdf()))
            .collect();
        let refs: Vec<(&str, &Cdf)> = cdfs.iter().map(|(l, c)| (l.as_str(), c)).collect();
        if !refs.is_empty() {
            out.push_str(&leo_analysis::render::render_cdf(&refs, 400.0, 60, 12));
        }
        for s in sets {
            if let (Some(mean), Some(median)) =
                (leo_analysis::stats::mean(&s.mbps), s.cdf().median())
            {
                out.push_str(&format!(
                    "  {:<14} n={:<4} mean {:>6.1} Mbps, median {:>6.1} Mbps\n",
                    s.label,
                    s.mbps.len(),
                    mean,
                    median
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;
    use leo_analysis::stats::mean;

    fn data() -> Fig3Data {
        run(shared_campaign())
    }

    #[test]
    fn panel_a_udp_beats_tcp_on_starlink() {
        let d = data();
        let get = |label: &str| {
            d.tcp_vs_udp
                .iter()
                .find(|s| s.label == label)
                .map(|s| mean(&s.mbps).unwrap_or(0.0))
                .unwrap()
        };
        let mob_udp = get("MOB-UDP");
        let mob_tcp = get("MOB-TCP");
        assert!(
            mob_udp > 2.5 * mob_tcp,
            "MOB UDP {mob_udp} should dwarf TCP {mob_tcp}"
        );
        // Cellular TCP and UDP stay close.
        let cell_udp = get("Cellular-UDP");
        let cell_tcp = get("Cellular-TCP");
        assert!(
            cell_tcp > cell_udp * 0.6,
            "cellular TCP {cell_tcp} vs UDP {cell_udp} should be comparable"
        );
    }

    #[test]
    fn panel_b_mobility_doubles_roam() {
        let d = data();
        let rm = mean(&d.roam_vs_mobility[0].mbps).unwrap();
        let mob = mean(&d.roam_vs_mobility[1].mbps).unwrap();
        let ratio = mob / rm.max(0.1);
        assert!(
            (1.4..3.5).contains(&ratio),
            "MOB/RM mean ratio {ratio} (MOB {mob}, RM {rm})"
        );
    }

    #[test]
    fn panel_c_downlink_near_10x_uplink() {
        let d = data();
        let up = mean(&d.up_vs_down[0].mbps).unwrap();
        let down = mean(&d.up_vs_down[1].mbps).unwrap();
        let ratio = down / up.max(0.1);
        assert!(
            (6.0..14.0).contains(&ratio),
            "down/up ratio {ratio} (down {down}, up {up})"
        );
    }

    #[test]
    fn render_includes_all_panels() {
        let s = render(&data());
        assert!(s.contains("(a) TCP vs. UDP"));
        assert!(s.contains("(b) Roam vs. Mobility"));
        assert!(s.contains("(c) Uplink vs. Downlink"));
        assert!(s.contains("mean"));
    }
}
