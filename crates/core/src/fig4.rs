//! Figure 4 — UDP-Ping latency CDFs of all five networks.
//!
//! "Overall, the RTTs for all networks primarily fall within the range of
//! 50 to 100 ms. Verizon and T-Mobile exhibit the lowest RTT values, while
//! Starlink Roam and Starlink Mobility plans experience comparatively
//! higher latency … AT&T demonstrates the highest network latency."

use leo_analysis::cdf::Cdf;
use leo_dataset::campaign::Campaign;
use leo_dataset::record::{NetworkId, TestKind};
use serde::{Deserialize, Serialize};

/// Per-network RTT samples (one per ping test).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Data {
    /// `(label, RTT samples ms)` in the paper's legend order.
    pub rtts: Vec<(String, Vec<f64>)>,
}

/// Runs the Figure 4 analysis.
pub fn run(campaign: &Campaign) -> Fig4Data {
    let rtts = NetworkId::ALL
        .iter()
        .map(|&n| {
            let samples: Vec<f64> = campaign
                .records
                .iter()
                .filter(|r| r.network == n && r.kind == TestKind::Ping)
                .filter_map(|r| r.mean_rtt_ms)
                .collect();
            (n.label().to_string(), samples)
        })
        .collect();
    Fig4Data { rtts }
}

/// Mean RTT of a network's samples, if any.
pub fn mean_rtt(data: &Fig4Data, label: &str) -> Option<f64> {
    data.rtts
        .iter()
        .find(|(l, _)| l == label)
        .and_then(|(_, v)| leo_analysis::stats::mean(v))
}

/// Renders the latency CDFs.
pub fn render(data: &Fig4Data) -> String {
    let mut out = String::from("Figure 4: UDP Ping Latency (CDF of per-test mean RTT)\n");
    let cdfs: Vec<(String, Cdf)> = data
        .rtts
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(l, v)| (l.clone(), Cdf::new(v.clone())))
        .collect();
    let refs: Vec<(&str, &Cdf)> = cdfs.iter().map(|(l, c)| (l.as_str(), c)).collect();
    if !refs.is_empty() {
        out.push_str(&leo_analysis::render::render_cdf(&refs, 150.0, 60, 12));
    }
    for (label, v) in &data.rtts {
        if let Some(m) = leo_analysis::stats::mean(v) {
            out.push_str(&format!(
                "  {label:<4} n={:<3} mean RTT {m:>6.1} ms\n",
                v.len()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    fn data() -> Fig4Data {
        run(shared_campaign())
    }

    #[test]
    fn rtts_mostly_in_50_to_100ms_band() {
        let d = data();
        let all: Vec<f64> = d.rtts.iter().flat_map(|(_, v)| v.iter().copied()).collect();
        assert!(all.len() >= 10, "need enough ping tests, got {}", all.len());
        let in_band = all.iter().filter(|r| (40.0..=110.0).contains(*r)).count();
        assert!(
            in_band as f64 / all.len() as f64 > 0.7,
            "only {in_band}/{} RTTs near the paper's 50–100 ms band",
            all.len()
        );
    }

    #[test]
    fn att_is_slowest_vz_tm_fastest() {
        let d = data();
        let att = mean_rtt(&d, "ATT").expect("ATT pings");
        let vz = mean_rtt(&d, "VZ").expect("VZ pings");
        let tm = mean_rtt(&d, "TM").expect("TM pings");
        let mob = mean_rtt(&d, "MOB").expect("MOB pings");
        assert!(att > mob, "ATT {att} should exceed MOB {mob}");
        assert!(mob > vz.min(tm), "Starlink above the best cellular");
    }

    #[test]
    fn starlink_latency_not_catastrophic() {
        // The paper's surprise: Starlink latency is comparable, not the
        // multi-hundred-ms of GEO satellites.
        let d = data();
        let mob = mean_rtt(&d, "MOB").expect("MOB pings");
        assert!(mob < 120.0, "MOB mean RTT {mob} ms");
    }

    #[test]
    fn render_lists_all_networks() {
        let s = render(&data());
        for label in ["ATT", "TM", "VZ", "RM", "MOB"] {
            assert!(s.contains(label), "{label} missing");
        }
    }
}
