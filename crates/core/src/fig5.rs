//! Figure 5 — TCP retransmission ("packet loss in TCP transfer") per
//! network, uplink and downlink.
//!
//! "When using Starlink, there is a much higher occurrence of packet loss
//! in both the uplink and downlink directions, compared to cellular
//! networks. This leads to retransmissions ranging from 0.3% to 1.3%."

use leo_dataset::campaign::Campaign;
use leo_dataset::record::{NetworkId, TestKind};
use leo_link::condition::Direction;
use leo_measure::tcpdump::TcpdumpStats;
use serde::{Deserialize, Serialize};

/// Mean retransmission rate per (network, direction).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Data {
    /// `(label, uplink %, downlink %)` in figure order ATT, TM, VZ, RM, MOB.
    pub rows: Vec<(String, f64, f64)>,
}

fn retrans_percent(campaign: &Campaign, network: NetworkId, direction: Direction) -> f64 {
    let rates: Vec<f64> = campaign
        .records
        .iter()
        .filter(|r| {
            r.network == network
                && matches!(r.kind, TestKind::Tcp { .. })
                && r.direction == direction
        })
        .map(|r| r.retrans_rate)
        .collect();
    // Reuse the tcpdump aggregation for the mean.
    let reports: Vec<leo_measure::iperf::IperfReport> = rates
        .iter()
        .map(|&retrans_rate| leo_measure::iperf::IperfReport {
            per_second_mbps: vec![],
            mean_mbps: 0.0,
            retrans_rate,
        })
        .collect();
    TcpdumpStats::from_reports(reports.iter()).mean_percent()
}

/// Runs the Figure 5 analysis.
pub fn run(campaign: &Campaign) -> Fig5Data {
    let rows = NetworkId::ALL
        .iter()
        .map(|&n| {
            (
                n.label().to_string(),
                retrans_percent(campaign, n, Direction::Up),
                retrans_percent(campaign, n, Direction::Down),
            )
        })
        .collect();
    Fig5Data { rows }
}

/// Renders the grouped bars.
pub fn render(data: &Fig5Data) -> String {
    let mut out = String::from("Figure 5: Packet loss (retransmission rate) in TCP transfer\n");
    let mut bars = Vec::new();
    let labels: Vec<(String, f64)> = data
        .rows
        .iter()
        .flat_map(|(l, up, down)| vec![(format!("{l} up"), *up), (format!("{l} down"), *down)])
        .collect();
    for (l, v) in &labels {
        bars.push((l.as_str(), *v));
    }
    out.push_str(&leo_analysis::render::render_bars(&bars, 50));
    out.push_str("(values in %)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    fn pct(d: &Fig5Data, label: &str) -> (f64, f64) {
        d.rows
            .iter()
            .find(|(l, ..)| l == label)
            .map(|(_, u, dn)| (*u, *dn))
            .unwrap()
    }

    #[test]
    fn starlink_loss_dwarfs_cellular() {
        let d = run(shared_campaign());
        let (mob_up, mob_down) = pct(&d, "MOB");
        let (vz_up, vz_down) = pct(&d, "VZ");
        assert!(
            mob_down > 2.0 * vz_down.max(0.01),
            "MOB down {mob_down}% vs VZ {vz_down}%"
        );
        assert!(mob_up > vz_up, "MOB up {mob_up}% vs VZ {vz_up}%");
    }

    #[test]
    fn starlink_retransmissions_in_paper_band() {
        // Paper: 0.3 % – 1.3 % for Starlink; our band is slightly wider to
        // absorb campaign-sampling noise at small scales.
        let d = run(shared_campaign());
        for label in ["RM", "MOB"] {
            let (_, down) = pct(&d, label);
            assert!(
                (0.2..4.0).contains(&down),
                "{label} downlink retrans {down}% out of band"
            );
        }
    }

    #[test]
    fn cellular_loss_is_small() {
        let d = run(shared_campaign());
        for label in ["TM", "VZ"] {
            let (_, down) = pct(&d, label);
            assert!(down < 0.6, "{label} downlink retrans {down}%");
        }
    }

    #[test]
    fn render_shows_percentages() {
        let s = render(&run(shared_campaign()));
        assert!(s.contains("MOB down"));
        assert!(s.contains('%'));
    }
}
