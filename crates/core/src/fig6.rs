//! Figure 6 — impact of moving speed: mean throughput by speed bucket,
//! rural data only.
//!
//! "both satellite (Mobility) and cellular network throughputs have
//! minimal variation in relation to driving speed … the speed of an object
//! on the ground is negligible" against a 28,000 km/h satellite.

use leo_dataset::campaign::Campaign;
use leo_dataset::record::NetworkId;
use leo_geo::area::AreaType;
use serde::{Deserialize, Serialize};

/// Networks shown: Mobility + the three carriers.
pub const NETWORKS: [NetworkId; 4] = [
    NetworkId::Mobility,
    NetworkId::Att,
    NetworkId::TMobile,
    NetworkId::Verizon,
];

/// Mean throughput per 10 km/h speed bucket, per network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Data {
    /// Bucket lower edges, km/h (0, 10, …, 90).
    pub buckets: Vec<u32>,
    /// `(label, mean Mbps per bucket — NaN-free, 0 where no samples)`.
    pub series: Vec<(String, Vec<f64>)>,
    /// Sample counts per (network, bucket) for significance checks.
    pub counts: Vec<(String, Vec<usize>)>,
}

/// Runs the Figure 6 analysis over the per-second rural samples — every
/// (second, network) pair where the drive was in rural country yields one
/// deliverable-throughput data point tagged with the instantaneous speed,
/// exactly as §4.2 isolates ("we specifically extract data collected in
/// rural areas").
pub fn run(campaign: &Campaign) -> Fig6Data {
    let buckets: Vec<u32> = (0..10).map(|b| b * 10).collect();
    let mut series = Vec::new();
    let mut counts = Vec::new();
    for n in NETWORKS {
        let (down, _) = &campaign.traces[&n];
        let mut sums = vec![0.0; buckets.len()];
        let mut ns = vec![0usize; buckets.len()];
        for (sample, &area) in campaign.samples.iter().zip(&campaign.areas) {
            if area != AreaType::Rural {
                continue;
            }
            let Some(c) = down.at(sample.t_s) else {
                continue;
            };
            let idx = ((sample.speed_kmh / 10.0).floor() as usize).min(9);
            sums[idx] += c.capacity_mbps * (1.0 - c.loss);
            ns[idx] += 1;
        }
        let means: Vec<f64> = sums
            .iter()
            .zip(&ns)
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect();
        series.push((n.label().to_string(), means));
        counts.push((n.label().to_string(), ns));
    }
    Fig6Data {
        buckets,
        series,
        counts,
    }
}

/// Coefficient of variation of a network's bucket means (ignoring empty
/// buckets) — the figure's "flatness" metric.
pub fn flatness(data: &Fig6Data, label: &str) -> Option<f64> {
    let (_, means) = data.series.iter().find(|(l, _)| l == label)?;
    let (_, ns) = data.counts.iter().find(|(l, _)| l == label)?;
    let filled: Vec<f64> = means
        .iter()
        .zip(ns)
        .filter(|(_, &c)| c > 0)
        .map(|(&m, _)| m)
        .collect();
    if filled.len() < 2 {
        return None;
    }
    let mean = filled.iter().sum::<f64>() / filled.len() as f64;
    let var = filled.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / filled.len() as f64;
    Some(var.sqrt() / mean.max(1e-9))
}

/// Renders the bucket table.
pub fn render(data: &Fig6Data) -> String {
    let mut out =
        String::from("Figure 6: Impact of speed (rural UDP downlink, mean Mbps per bucket)\n");
    out.push_str("speed ");
    for b in &data.buckets {
        out.push_str(&format!("{:>7}", format!("{b}-{}", b + 10)));
    }
    out.push('\n');
    for (label, means) in &data.series {
        out.push_str(&format!("{label:>5} "));
        for m in means {
            out.push_str(&format!("{m:>7.0}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{shared_campaign, small_campaign};

    #[test]
    fn throughput_is_flat_across_speeds() {
        // The headline: speed barely matters. CV of the occupied buckets
        // stays modest for Mobility.
        let d = run(shared_campaign());
        if let Some(cv) = flatness(&d, "MOB") {
            assert!(cv < 0.8, "MOB speed-bucket CV {cv} too wild");
        }
    }

    #[test]
    fn buckets_are_decades_to_100() {
        let d = run(small_campaign());
        assert_eq!(d.buckets, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
        assert_eq!(d.series.len(), 4);
    }

    #[test]
    fn rural_tests_reach_high_speed_buckets() {
        let d = run(shared_campaign());
        let (_, mob_counts) = d.counts.iter().find(|(l, _)| l == "MOB").unwrap();
        let high_bucket_samples: usize = mob_counts[6..].iter().sum();
        assert!(
            high_bucket_samples > 0,
            "interstate driving should produce ≥60 km/h rural tests"
        );
    }

    #[test]
    fn render_has_all_buckets() {
        let s = render(&run(small_campaign()));
        assert!(s.contains("90-100"));
        assert!(s.contains("MOB"));
    }
}
