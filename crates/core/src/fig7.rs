//! Figure 7 — impact of TCP parallelism: throughput improvement of 4 and
//! 8 parallel connections over a single connection, Starlink Roam vs.
//! pooled cellular.
//!
//! "Starlink achieves a better throughput improvement, over 50% with 4
//! parallel TCP connections and over 130% improvement with 8 connections."
//!
//! The comparison is *paired*: every TCP test window in the campaign is
//! re-evaluated at P ∈ {1, 4, 8} over the same link conditions, so the
//! improvement percentages measure parallelism itself rather than
//! differences between the windows each variant happened to land on.

use leo_analysis::stats::improvement_pct;
use leo_dataset::campaign::Campaign;
use leo_dataset::record::{NetworkId, TestKind};
use leo_link::condition::Direction;
use leo_measure::iperf::{IperfConfig, IperfProtocol, IperfRunner};
use serde::{Deserialize, Serialize};

/// Improvement percentages per network group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Data {
    /// `(group label, +% at 4P, +% at 8P)`.
    pub rows: Vec<(String, f64, f64)>,
    /// Underlying paired means `(group, [mean@1P, mean@4P, mean@8P])`.
    pub means: Vec<(String, [f64; 3])>,
}

/// Paired mean throughput at each parallelism level over the group's TCP
/// test windows.
fn paired_means(campaign: &Campaign, networks: &[NetworkId], starlink: bool) -> [f64; 3] {
    let mut sums = [0.0f64; 3];
    let mut n = 0usize;
    for r in &campaign.records {
        if !networks.contains(&r.network)
            || !matches!(r.kind, TestKind::Tcp { .. })
            || r.direction != Direction::Down
        {
            continue;
        }
        let (down, _) = &campaign.traces[&r.network];
        let window = down.window(r.t_start_s, r.t_start_s + r.duration_s as u64);
        for (i, parallel) in [1u32, 4, 8].into_iter().enumerate() {
            let mut cfg = if starlink {
                IperfConfig::tcp_down_starlink(parallel)
            } else {
                IperfConfig::tcp_down_cellular(parallel)
            };
            cfg.protocol = IperfProtocol::Tcp { parallel };
            sums[i] += IperfRunner::new(cfg).run(&window).mean_mbps;
        }
        n += 1;
    }
    if n == 0 {
        return [0.0; 3];
    }
    sums.map(|s| s / n as f64)
}

/// Runs the Figure 7 analysis.
pub fn run(campaign: &Campaign) -> Fig7Data {
    let mut rows = Vec::new();
    let mut means = Vec::new();
    for (label, networks, starlink) in [
        ("Roam", &[NetworkId::Roam][..], true),
        ("Cellular", &NetworkId::CELLULAR[..], false),
    ] {
        let m = paired_means(campaign, networks, starlink);
        rows.push((
            label.to_string(),
            improvement_pct(m[0], m[1]),
            improvement_pct(m[0], m[2]),
        ));
        means.push((label.to_string(), m));
    }
    Fig7Data { rows, means }
}

/// Renders the improvement bars.
pub fn render(data: &Fig7Data) -> String {
    let mut out = String::from("Figure 7: Impact of TCP parallelism (downlink, vs 1 connection)\n");
    let labels: Vec<(String, f64)> = data
        .rows
        .iter()
        .flat_map(|(l, p4, p8)| vec![(format!("{l} 4P"), *p4), (format!("{l} 8P"), *p8)])
        .collect();
    let bars: Vec<(&str, f64)> = labels.iter().map(|(l, v)| (l.as_str(), *v)).collect();
    out.push_str(&leo_analysis::render::render_bars(&bars, 50));
    for (label, m) in &data.means {
        out.push_str(&format!(
            "  {label:<9} 1P {:>6.1}  4P {:>6.1}  8P {:>6.1} Mbps (paired windows)\n",
            m[0], m[1], m[2]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    fn row(d: &Fig7Data, label: &str) -> (f64, f64) {
        d.rows
            .iter()
            .find(|(l, ..)| l == label)
            .map(|(_, a, b)| (*a, *b))
            .unwrap()
    }

    #[test]
    fn starlink_gains_more_than_cellular() {
        let d = run(shared_campaign());
        let (rm4, rm8) = row(&d, "Roam");
        let (cl4, cl8) = row(&d, "Cellular");
        assert!(rm4 > cl4, "RM 4P {rm4}% vs cellular {cl4}%");
        assert!(rm8 > cl8, "RM 8P {rm8}% vs cellular {cl8}%");
    }

    #[test]
    fn starlink_gains_are_large() {
        // Paper anchors: >50 % at 4P, >130 % at 8P.
        let d = run(shared_campaign());
        let (rm4, rm8) = row(&d, "Roam");
        assert!(rm4 > 40.0, "RM 4P gain only {rm4}%");
        assert!(rm8 > 60.0, "RM 8P gain only {rm8}%");
        assert!(rm8 >= rm4, "more connections should not hurt");
    }

    #[test]
    fn cellular_gains_are_modest() {
        let d = run(shared_campaign());
        let (cl4, cl8) = row(&d, "Cellular");
        assert!(cl4 < 45.0, "cellular 4P gain {cl4}% too large");
        assert!(cl8 < 60.0, "cellular 8P gain {cl8}% too large");
        assert!(cl8 >= cl4 - 1e-9, "paired evaluation is monotone");
    }

    #[test]
    fn render_mentions_both_groups() {
        let s = render(&run(shared_campaign()));
        assert!(s.contains("Roam 4P"));
        assert!(s.contains("Cellular 8P"));
        assert!(s.contains("paired windows"));
    }
}
