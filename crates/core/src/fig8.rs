//! Figure 8 — downlink throughput by area type: cellular falls towards
//! rural, Starlink rises; suburban ≈ rural for Starlink.
//!
//! "the throughput of cellular networks decreases when reaching rural
//! areas, while the throughput of Starlink networks increases in rural
//! areas … the throughput of Starlink is distributed similarly in suburban
//! and rural areas."

use leo_analysis::stats::BoxStats;
use leo_dataset::campaign::Campaign;
use leo_dataset::record::{NetworkId, TestKind};
use leo_geo::area::AreaType;
use leo_link::condition::Direction;
use serde::{Deserialize, Serialize};

/// Box statistics per (group, area type), UDP downlink.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Data {
    /// `(group label, area, stats)`; groups are "Cellular" and "MOB".
    pub boxes: Vec<(String, AreaType, Option<BoxStats>)>,
}

fn samples(campaign: &Campaign, networks: &[NetworkId], area: AreaType) -> Vec<f64> {
    campaign
        .records
        .iter()
        .filter(|r| {
            networks.contains(&r.network)
                && r.kind == TestKind::Udp
                && r.direction == Direction::Down
                && r.area == area
        })
        .map(|r| r.mean_mbps)
        .collect()
}

/// Runs the Figure 8 analysis.
pub fn run(campaign: &Campaign) -> Fig8Data {
    let mut boxes = Vec::new();
    for (label, networks) in [
        ("Cellular", &NetworkId::CELLULAR[..]),
        ("MOB", &[NetworkId::Mobility][..]),
    ] {
        for area in AreaType::ALL {
            let s = samples(campaign, networks, area);
            boxes.push((label.to_string(), area, BoxStats::from_samples(&s)));
        }
    }
    Fig8Data { boxes }
}

/// Fetches a group's mean for an area.
pub fn group_mean(data: &Fig8Data, label: &str, area: AreaType) -> Option<f64> {
    data.boxes
        .iter()
        .find(|(l, a, _)| l == label && *a == area)
        .and_then(|(_, _, s)| s.map(|s| s.mean))
}

/// Renders the box rows.
pub fn render(data: &Fig8Data) -> String {
    let mut out = String::from("Figure 8: Downlink throughput at different area types (UDP)\n");
    for area in AreaType::ALL {
        out.push_str(&format!("\n{area}:\n"));
        for (label, a, stats) in &data.boxes {
            if *a == area {
                match stats {
                    Some(s) => {
                        out.push_str(&leo_analysis::render::render_box_row(label, s, 400.0, 60))
                    }
                    None => out.push_str(&format!("{label:>6} | (no samples)\n")),
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    fn data() -> Fig8Data {
        run(shared_campaign())
    }

    #[test]
    fn starlink_wins_rural_cellular_wins_urban() {
        let d = data();
        let cu = group_mean(&d, "Cellular", AreaType::Urban).expect("urban cellular");
        let cr = group_mean(&d, "Cellular", AreaType::Rural).expect("rural cellular");
        let mu = group_mean(&d, "MOB", AreaType::Urban).expect("urban MOB");
        let mr = group_mean(&d, "MOB", AreaType::Rural).expect("rural MOB");
        assert!(cu > cr, "cellular urban {cu} should beat rural {cr}");
        assert!(mr > mu, "MOB rural {mr} should beat urban {mu}");
        assert!(mr > cr, "MOB {mr} should beat cellular {cr} in rural areas");
        assert!(cu > mu, "cellular {cu} should beat MOB {mu} in urban areas");
    }

    #[test]
    fn starlink_suburban_similar_to_rural() {
        let d = data();
        let ms = group_mean(&d, "MOB", AreaType::Suburban).expect("suburban MOB");
        let mr = group_mean(&d, "MOB", AreaType::Rural).expect("rural MOB");
        let ratio = ms / mr.max(1e-9);
        assert!(
            (0.6..1.4).contains(&ratio),
            "MOB suburban {ms} vs rural {mr} should be similar"
        );
    }

    #[test]
    fn render_covers_all_areas() {
        let s = render(&data());
        for a in ["Urban", "Suburban", "Rural"] {
            assert!(s.contains(a));
        }
    }
}
