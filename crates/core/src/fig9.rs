//! Figure 9 — performance-coverage proportions across eight bars:
//! ATT, TM, VZ, BestCL, RM, RM+CL, MOB, MOB+CL.
//!
//! "Starlink Mobility exhibits the best overall performance, with a
//! proportion of high-performance regions at 60.61%. Verizon and T-Mobile
//! closely follow, with proportions … at 44.39% and 42.47% … Starlink Roam
//! and AT&T … demonstrate the poorest performance."
//!
//! The combinations require every network's performance *at the same
//! place and time*; the paper's phones ran side by side, and here the
//! aligned per-second traces provide the same simultaneity. Each data
//! point is a one-minute window mean of deliverable UDP throughput.

use leo_analysis::coverage::{best_of, coverage_proportions};
use leo_dataset::campaign::Campaign;
use leo_dataset::record::NetworkId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Window length for one coverage data point, seconds.
pub const WINDOW_S: usize = 60;

/// Coverage proportions per bar.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Data {
    /// `(bar label, [very-low, low, medium, high] proportions)`.
    pub bars: Vec<(String, [f64; 4])>,
}

/// Per-window deliverable-throughput means for every network.
fn window_means(campaign: &Campaign) -> BTreeMap<NetworkId, Vec<f64>> {
    let mut out = BTreeMap::new();
    for (&n, (down, _)) in &campaign.traces {
        let caps: Vec<f64> = down
            .samples()
            .iter()
            .map(|c| c.capacity_mbps * (1.0 - c.loss))
            .collect();
        let means: Vec<f64> = caps
            .chunks(WINDOW_S)
            .filter(|w| w.len() == WINDOW_S)
            .map(|w| w.iter().sum::<f64>() / w.len() as f64)
            .collect();
        out.insert(n, means);
    }
    out
}

/// Runs the Figure 9 analysis.
pub fn run(campaign: &Campaign) -> Fig9Data {
    let means = window_means(campaign);
    let get = |n: NetworkId| means[&n].as_slice();

    let best_cl = best_of(&[
        get(NetworkId::Att),
        get(NetworkId::TMobile),
        get(NetworkId::Verizon),
    ]);
    let rm_cl = best_of(&[get(NetworkId::Roam), &best_cl]);
    let mob_cl = best_of(&[get(NetworkId::Mobility), &best_cl]);

    let bars = vec![
        ("ATT".to_string(), coverage_proportions(get(NetworkId::Att))),
        (
            "TM".to_string(),
            coverage_proportions(get(NetworkId::TMobile)),
        ),
        (
            "VZ".to_string(),
            coverage_proportions(get(NetworkId::Verizon)),
        ),
        ("BestCL".to_string(), coverage_proportions(&best_cl)),
        ("RM".to_string(), coverage_proportions(get(NetworkId::Roam))),
        ("RM+CL".to_string(), coverage_proportions(&rm_cl)),
        (
            "MOB".to_string(),
            coverage_proportions(get(NetworkId::Mobility)),
        ),
        ("MOB+CL".to_string(), coverage_proportions(&mob_cl)),
    ];
    Fig9Data { bars }
}

/// High-performance share of a bar.
pub fn high_share(data: &Fig9Data, label: &str) -> Option<f64> {
    data.bars
        .iter()
        .find(|(l, _)| l == label)
        .map(|(_, p)| p[3])
}

/// Low + very-low share of a bar.
pub fn poor_share(data: &Fig9Data, label: &str) -> Option<f64> {
    data.bars
        .iter()
        .find(|(l, _)| l == label)
        .map(|(_, p)| p[0] + p[1])
}

/// Renders the stacked proportions as a table.
pub fn render(data: &Fig9Data) -> String {
    let mut out = String::from(
        "Figure 9: Performance coverage (share of 1-min windows per level)\n\
         bar      very-low    low   medium    high\n",
    );
    for (label, p) in &data.bars {
        out.push_str(&format!(
            "{label:>7} {:>9.1}% {:>5.1}% {:>7.1}% {:>6.1}%\n",
            p[0] * 100.0,
            p[1] * 100.0,
            p[2] * 100.0,
            p[3] * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    fn data() -> Fig9Data {
        run(shared_campaign())
    }

    #[test]
    fn proportions_sum_to_one_per_bar() {
        let d = data();
        assert_eq!(d.bars.len(), 8);
        for (label, p) in &d.bars {
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{label} sums to {sum}");
        }
    }

    #[test]
    fn mobility_has_best_high_coverage_of_single_networks() {
        let d = data();
        let mob = high_share(&d, "MOB").unwrap();
        for other in ["ATT", "TM", "VZ", "RM"] {
            let o = high_share(&d, other).unwrap();
            assert!(mob >= o, "MOB {mob} vs {other} {o}");
        }
        // And in the paper's ballpark (60.61 %).
        assert!((0.35..0.80).contains(&mob), "MOB high share {mob}");
    }

    #[test]
    fn att_and_roam_are_poorest() {
        let d = data();
        let att = poor_share(&d, "ATT").unwrap();
        let vz = poor_share(&d, "VZ").unwrap();
        let rm = poor_share(&d, "RM").unwrap();
        let mob = poor_share(&d, "MOB").unwrap();
        assert!(att > vz, "ATT poor {att} vs VZ {vz}");
        assert!(rm > mob, "RM poor {rm} vs MOB {mob}");
    }

    #[test]
    fn combinations_dominate_their_parts() {
        let d = data();
        let h = |l: &str| high_share(&d, l).unwrap();
        assert!(h("BestCL") >= h("ATT").max(h("TM")).max(h("VZ")));
        assert!(h("RM+CL") >= h("RM").max(h("BestCL")));
        assert!(h("MOB+CL") >= h("MOB").max(h("BestCL")));
    }

    #[test]
    fn combination_still_leaves_poor_windows() {
        // The paper: "even after combining cellular and Starlink, there are
        // still areas with low performance (<50 Mbps)".
        let d = data();
        let poor = poor_share(&d, "MOB+CL").unwrap();
        assert!(poor > 0.0, "combined coverage implausibly perfect");
        assert!(poor < 0.5, "combined coverage implausibly bad: {poor}");
    }

    #[test]
    fn render_lists_all_bars() {
        let s = render(&data());
        for l in ["ATT", "BestCL", "RM+CL", "MOB+CL"] {
            assert!(s.contains(l));
        }
    }
}
