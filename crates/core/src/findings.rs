//! The paper's summarised findings (§1) as checkable predicates.
//!
//! Integration tests and the `figures` binary use these to assert the
//! reproduction holds the paper's *shape*: who wins, by roughly what
//! factor, where the crossovers fall.

use crate::{fig3, fig4, fig8, fig9};
use leo_dataset::campaign::Campaign;
use leo_geo::area::AreaType;

/// Finding 1: "TCP severely suffers from such a high packet loss of
/// Starlink, leading to only 1/5 of the throughput achieved by UDP over
/// Starlink." Returns the UDP/TCP mean ratio on Mobility downlink.
pub fn starlink_udp_tcp_ratio(campaign: &Campaign) -> f64 {
    let d = fig3::run(campaign);
    let get = |label: &str| {
        d.tcp_vs_udp
            .iter()
            .find(|s| s.label == label)
            .and_then(|s| leo_analysis::stats::mean(&s.mbps))
            .unwrap_or(0.0)
    };
    get("MOB-UDP") / get("MOB-TCP").max(1e-9)
}

/// Finding 2: "Mobility, having 2× higher mean/median throughput" than
/// Roam. Returns the MOB/RM mean ratio (UDP downlink).
pub fn mobility_roam_ratio(campaign: &Campaign) -> f64 {
    let d = fig3::run(campaign);
    let mean = |i: usize| leo_analysis::stats::mean(&d.roam_vs_mobility[i].mbps).unwrap_or(0.0);
    mean(1) / mean(0).max(1e-9)
}

/// §4.1: downlink ≈ 10× uplink on Starlink. Returns the ratio.
pub fn starlink_down_up_ratio(campaign: &Campaign) -> f64 {
    let d = fig3::run(campaign);
    let mean = |i: usize| leo_analysis::stats::mean(&d.up_vs_down[i].mbps).unwrap_or(0.0);
    mean(1) / mean(0).max(1e-9)
}

/// Finding: "the latency stays similar" — Starlink RTT within a factor of
/// the cellular RTTs, all in the 50–100 ms regime. Returns
/// `(mob_rtt_ms, best_cellular_rtt_ms)`.
pub fn latency_comparison(campaign: &Campaign) -> (f64, f64) {
    let d = fig4::run(campaign);
    let get = |l: &str| fig4::mean_rtt(&d, l).unwrap_or(f64::NAN);
    let best_cell = get("VZ").min(get("TM")).min(get("ATT"));
    (get("MOB"), best_cell)
}

/// Finding 4: "Cellular networks offer better performance in urban areas
/// … while Starlink wins in suburban and rural areas." True iff both
/// crossovers hold.
pub fn area_crossover_holds(campaign: &Campaign) -> bool {
    let d = fig8::run(campaign);
    let g = |l: &str, a: AreaType| fig8::group_mean(&d, l, a).unwrap_or(0.0);
    g("Cellular", AreaType::Urban) > g("MOB", AreaType::Urban)
        && g("MOB", AreaType::Rural) > g("Cellular", AreaType::Rural)
        && g("MOB", AreaType::Suburban) > g("Cellular", AreaType::Suburban)
}

/// §5.2: Mobility has the best single-network high-performance coverage.
pub fn mobility_has_best_coverage(campaign: &Campaign) -> bool {
    let d = fig9::run(campaign);
    let h = |l: &str| fig9::high_share(&d, l).unwrap_or(0.0);
    let mob = h("MOB");
    ["ATT", "TM", "VZ", "RM"].iter().all(|l| mob >= h(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    #[test]
    fn headline_findings_hold_on_a_medium_campaign() {
        let c = shared_campaign();

        let udp_tcp = starlink_udp_tcp_ratio(c);
        assert!(
            (2.5..9.0).contains(&udp_tcp),
            "UDP/TCP ratio {udp_tcp} (paper: ≈5×)"
        );

        let mob_rm = mobility_roam_ratio(c);
        assert!(
            (1.4..3.5).contains(&mob_rm),
            "MOB/RM ratio {mob_rm} (paper: ≈2×)"
        );

        let down_up = starlink_down_up_ratio(c);
        assert!(
            (6.0..14.0).contains(&down_up),
            "down/up ratio {down_up} (paper: ≈10×)"
        );

        let (mob_rtt, cell_rtt) = latency_comparison(c);
        assert!(
            mob_rtt < cell_rtt * 2.2,
            "MOB RTT {mob_rtt} vs best cellular {cell_rtt} — latency should stay similar"
        );
        assert!(
            mob_rtt > cell_rtt,
            "Starlink RTT slightly higher, not lower"
        );

        assert!(area_crossover_holds(c), "area crossover missing");
        assert!(mobility_has_best_coverage(c), "MOB not best coverage");
    }
}
