//! Experiment orchestration: every table and figure of *LEO Satellite vs.
//! Cellular Networks* (CoNEXT Companion '23), regenerated.
//!
//! The paper's evaluation consists of Figures 1 and 3–11 plus the §3.3
//! dataset summary. Each has a module here exposing `run(&Campaign) ->
//! FigXData` (structured results) and `render(&FigXData) -> String` (a
//! terminal rendering). [`registry::all_figures`] enumerates them so the
//! `figures` example and the benches can sweep everything.
//!
//! [`findings`] encodes the paper's summarised findings as checkable
//! predicates over a campaign — the reproduction's acceptance tests.

pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod findings;
pub mod mptcp_emu;
pub mod registry;

pub use registry::{all_figures, FigureEntry};

use leo_dataset::campaign::{Campaign, CampaignConfig};

/// Generates the campaign used by every experiment.
///
/// `scale` trades fidelity for runtime: 1.0 is the paper-scale field trip
/// (use `--release`); 0.02 runs in seconds for tests.
///
/// Always generates afresh; use [`cached_campaign`] when several callers
/// in one process want the same world.
pub fn campaign(scale: f64, seed: u64) -> Campaign {
    Campaign::generate(CampaignConfig {
        scale,
        seed,
        ..CampaignConfig::default()
    })
}

/// Process-wide campaign cache keyed by `(scale, seed)`.
///
/// Every fixture that previously kept its own `OnceLock` campaign (this
/// crate's statistical tests, the end-to-end suite, the bench harness)
/// goes through here, so a process never generates the same world twice.
/// Entries are leaked: the cache only ever holds the handful of fixture
/// configurations tests and benches use.
pub fn cached_campaign(scale: f64, seed: u64) -> &'static Campaign {
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    static CACHE: Mutex<BTreeMap<(u64, u64), &'static Campaign>> = Mutex::new(BTreeMap::new());
    let key = (scale.to_bits(), seed);
    // The lock is held across generation on purpose: two tests racing on
    // the same key would otherwise both pay the (multi-second) build.
    let mut cache = CACHE.lock().expect("campaign cache poisoned");
    if let Some(c) = cache.get(&key) {
        return c;
    }
    let c: &'static Campaign = Box::leak(Box::new(campaign(scale, seed)));
    cache.insert(key, c);
    c
}

/// Test fixtures shared across this crate's statistical tests.
#[doc(hidden)]
pub mod test_support {
    use super::*;

    /// One cached medium-scale campaign so every statistical test reads
    /// the same world instead of regenerating it (campaign generation
    /// dominates test time otherwise).
    pub fn shared_campaign() -> &'static Campaign {
        cached_campaign(0.15, 42)
    }

    /// A small cached campaign for smoke tests.
    pub fn small_campaign() -> &'static Campaign {
        cached_campaign(0.03, 7)
    }
}
