//! Experiment orchestration: every table and figure of *LEO Satellite vs.
//! Cellular Networks* (CoNEXT Companion '23), regenerated.
//!
//! The paper's evaluation consists of Figures 1 and 3–11 plus the §3.3
//! dataset summary. Each has a module here exposing `run(&Campaign) ->
//! FigXData` (structured results) and `render(&FigXData) -> String` (a
//! terminal rendering). [`registry::all_figures`] enumerates them so the
//! `figures` example and the benches can sweep everything.
//!
//! [`findings`] encodes the paper's summarised findings as checkable
//! predicates over a campaign — the reproduction's acceptance tests.

pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod findings;
pub mod mptcp_emu;
pub mod registry;

pub use registry::{all_figures, FigureEntry};

use leo_dataset::campaign::{Campaign, CampaignConfig};

/// Generates the campaign used by every experiment.
///
/// `scale` trades fidelity for runtime: 1.0 is the paper-scale field trip
/// (use `--release`); 0.02 runs in seconds for tests.
pub fn campaign(scale: f64, seed: u64) -> Campaign {
    Campaign::generate(CampaignConfig {
        scale,
        seed,
        ..CampaignConfig::default()
    })
}

/// Test fixtures shared across this crate's statistical tests.
#[doc(hidden)]
pub mod test_support {
    use super::*;
    use std::sync::OnceLock;

    /// One cached medium-scale campaign so every statistical test reads
    /// the same world instead of regenerating it (campaign generation
    /// dominates test time otherwise).
    pub fn shared_campaign() -> &'static Campaign {
        static C: OnceLock<Campaign> = OnceLock::new();
        C.get_or_init(|| campaign(0.15, 42))
    }

    /// A small cached campaign for smoke tests.
    pub fn small_campaign() -> &'static Campaign {
        static C: OnceLock<Campaign> = OnceLock::new();
        C.get_or_init(|| campaign(0.03, 7))
    }
}
