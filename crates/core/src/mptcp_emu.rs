//! The §6 emulation harness: trace-driven MPTCP vs. single-path TCP.
//!
//! Reproduces the paper's MpShell methodology: "we use the UDP downlink
//! throughput traces in our driving dataset and convert them to packet
//! traces for replay … Different network traces are aligned via
//! timestamps." Each experiment replays two aligned downlink traces as
//! [`leo_netsim::TracePipe`]s and downloads through either a single-path
//! [`leo_transport::tcp`] connection or an MPTCP connection across both.
//!
//! Fidelity note: like MpShell, the replay carries **capacity and latency
//! only** — the paper deliberately derives link conditions from UDP
//! traces "to emulate the available bandwidth at each timestamp", and
//! trace-driven emulation does not reproduce the channel's random loss
//! (TCP in the emulator sees only its own queue drops). That is exactly
//! why the paper's emulated MPTCP reaches 81–84 % utilisation even though
//! live Starlink TCP suffers badly — and this harness inherits both the
//! methodology and that caveat.

use leo_link::mahimahi::MahimahiTrace;
use leo_link::trace::LinkTrace;
use leo_netsim::{
    ConstPipe, FaultPipe, FaultSchedule, LinkId, NodeId, PipeStats, SimTime, Simulator, TracePipe,
};
use leo_transport::cc::CcAlgorithm;
use leo_transport::mptcp::{MptcpConfig, MptcpReceiver, MptcpSender, SchedulerKind};
use leo_transport::tcp::{TcpConfig, TcpReceiver, TcpSender};
use serde::{Deserialize, Serialize};

/// Receive-buffer regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferTuning {
    /// OS defaults: a buffer around 1× the path bandwidth-delay product —
    /// the regime where the paper saw marginal gains and collapses.
    Default,
    /// ">10× the link's bandwidth-delay product" (§6).
    Tuned,
}

/// Result of one emulated download.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmulationResult {
    pub mean_mbps: f64,
    pub per_second_mbps: Vec<f64>,
    /// Application bytes the receiver delivered in order.
    pub delivered_bytes: u64,
    /// Post-run counters for every pipe in the simulation, in `LinkId`
    /// order (data pipes first, then ack pipes). The conformance harness
    /// reconciles the receiver's goodput against these.
    pub link_stats: Vec<PipeStats>,
}

impl EmulationResult {
    fn empty(secs: u64) -> Self {
        EmulationResult {
            mean_mbps: 0.0,
            per_second_mbps: vec![0.0; secs as usize],
            delivered_bytes: 0,
            link_stats: Vec::new(),
        }
    }
}

fn mean_capacity(trace: &LinkTrace) -> f64 {
    trace.stats().map(|s| s.mean_mbps).unwrap_or(0.0)
}

fn mean_rtt_ms(trace: &LinkTrace) -> f64 {
    trace.stats().map(|s| s.mean_rtt_ms).unwrap_or(60.0)
}

/// Buffer size in packets for a two-path experiment.
pub fn buffer_packets(tuning: BufferTuning, a: &LinkTrace, b: &LinkTrace) -> u64 {
    let cap = mean_capacity(a) + mean_capacity(b);
    let rtt_s = mean_rtt_ms(a).max(mean_rtt_ms(b)) / 1e3;
    let bdp_packets = (cap * 1e6 / 8.0 * rtt_s / 1500.0).max(16.0);
    match tuning {
        BufferTuning::Default => (bdp_packets * 1.0) as u64,
        BufferTuning::Tuned => (bdp_packets * 12.0) as u64,
    }
}

/// Flushes per-subflow sender state into the obs registry after an MPTCP
/// run. Only called when `LEO_OBS=1`; reads the sender through the same
/// downcast the result extraction uses, so the run itself is untouched.
fn flush_mptcp_obs(
    sim: &Simulator,
    sender: NodeId,
    scheduler: SchedulerKind,
    link_stats: &[PipeStats],
) {
    let snd = sim.agent_as::<MptcpSender>(sender);
    leo_obs::incr("mptcp.runs", 1);
    let sched = match scheduler {
        SchedulerKind::RoundRobin => "mptcp.scheduler.round_robin.runs",
        SchedulerKind::MinRtt => "mptcp.scheduler.min_rtt.runs",
        SchedulerKind::Blest => "mptcp.scheduler.blest.runs",
        SchedulerKind::Ecf => "mptcp.scheduler.ecf.runs",
        SchedulerKind::LeoAware => "mptcp.scheduler.leo_aware.runs",
    };
    leo_obs::incr(sched, 1);
    let timeouts = snd.subflow_timeouts();
    for (i, (sent, retx)) in snd.subflow_counters().into_iter().enumerate() {
        leo_obs::incr(&format!("mptcp.subflow.{i}.packets_sent"), sent);
        leo_obs::incr(&format!("mptcp.subflow.{i}.retransmissions"), retx);
        leo_obs::incr(&format!("mptcp.subflow.{i}.timeouts"), timeouts[i]);
        // LinkId convention: data pipes are links 0/1, subflow order.
        leo_obs::incr(
            &format!("mptcp.subflow.{i}.bytes_delivered"),
            link_stats[i].delivered_bytes,
        );
    }
    for s in snd.subflow_srtts() {
        leo_obs::observe("mptcp.subflow.srtt_ms", s * 1e3);
    }
    leo_obs::observe("mptcp.retx_rate", snd.retransmission_rate());
}

fn pipes_for(trace: &LinkTrace, queue_slack: u64) -> Option<(TracePipe, ConstPipe, SimTime)> {
    let caps = trace.capacity_series();
    let mm = MahimahiTrace::from_capacity_series(&caps);
    if mm.is_empty() {
        return None;
    }
    let one_way = SimTime::from_secs_f64(mean_rtt_ms(trace) / 2.0 / 1e3);
    let queue = (mean_capacity(trace) * 1e6 / 8.0 * mean_rtt_ms(trace) / 1e3) as u64 + queue_slack;
    // No loss series: MpShell replays bandwidth + latency from the UDP
    // traces; channel loss is not part of the emulation (see module docs).
    let data = TracePipe::new(mm, one_way, queue);
    let ack = ConstPipe::new(mean_capacity(trace).max(10.0), one_way, 0.0, 1 << 22);
    Some((data, ack, one_way))
}

/// Downloads for the traces' duration over a single path with CUBIC.
pub fn run_single_path(trace: &LinkTrace, seed: u64) -> EmulationResult {
    run_single_path_cc(trace, seed, CcAlgorithm::Cubic)
}

/// Downloads over a single path with an explicit congestion controller —
/// the CC-ablation entry point (CUBIC vs. BBR-lite).
pub fn run_single_path_cc(trace: &LinkTrace, seed: u64, cc: CcAlgorithm) -> EmulationResult {
    run_single_path_impl(trace, seed, cc, &FaultSchedule::new())
}

/// [`run_single_path`] with a scheduled-fault overlay on the data path —
/// the scenario engine's entry point for degraded solo downloads.
pub fn run_single_path_faulted(
    trace: &LinkTrace,
    seed: u64,
    faults: &FaultSchedule,
) -> EmulationResult {
    run_single_path_impl(trace, seed, CcAlgorithm::Cubic, faults)
}

fn run_single_path_impl(
    trace: &LinkTrace,
    seed: u64,
    cc: CcAlgorithm,
    faults: &FaultSchedule,
) -> EmulationResult {
    let secs = trace.duration_s();
    let Some((data_pipe, ack_pipe, _)) = pipes_for(trace, 60_000) else {
        return EmulationResult::empty(secs);
    };
    // An empty schedule makes FaultPipe bit-transparent (no extra RNG
    // draws), so fault-free callers are unaffected by the wrapping.
    let data_pipe = FaultPipe::new(data_pipe, faults.clone());
    let mut sim = Simulator::new(seed);
    let sender = sim.add_node(Box::new(TcpSender::new(TcpConfig {
        flow: 1,
        cc,
        rwnd_packets: 1 << 16,
        data_link: LinkId(0),
        limit_packets: None,
    })));
    let receiver = sim.add_node(Box::new(TcpReceiver::new(1, LinkId(1))));
    sim.add_link(Box::new(data_pipe), receiver);
    sim.add_link(Box::new(ack_pipe), sender);
    sim.with_agent(sender, |a, ctx| {
        a.as_any_mut()
            .downcast_mut::<TcpSender>()
            .expect("sender")
            .start(ctx)
    });
    sim.run_until(SimTime::from_secs(secs));
    leo_obs::incr("tcp.single_path.runs", 1);
    let link_stats = sim.audit().links;
    let r = sim.agent_as::<TcpReceiver>(receiver);
    let delivered_bytes = r.meter.total_bytes();
    if leo_netsim::strict_checks() {
        // Goodput cannot exceed what the data pipe physically carried.
        assert!(
            delivered_bytes <= link_stats[0].delivered_bytes,
            "single-path goodput {} exceeds data-pipe delivery {}",
            delivered_bytes,
            link_stats[0].delivered_bytes
        );
    }
    let mut series = r.meter.series_mbps();
    series.resize(secs as usize, 0.0);
    EmulationResult {
        mean_mbps: r.meter.mean_mbps_over(SimTime::from_secs(secs)),
        per_second_mbps: series,
        delivered_bytes,
        link_stats,
    }
}

/// Downloads over MPTCP across two aligned traces.
pub fn run_mptcp(
    trace_a: &LinkTrace,
    trace_b: &LinkTrace,
    scheduler: SchedulerKind,
    tuning: BufferTuning,
    seed: u64,
) -> EmulationResult {
    let none = FaultSchedule::new();
    run_mptcp_faulted(trace_a, trace_b, scheduler, tuning, seed, &none, &none)
}

/// [`run_mptcp`] with per-path scheduled-fault overlays on the data
/// pipes — the §6 emulation under injected degradation (forced outages,
/// loss bursts, delay spikes mid-download). Fault drops count as
/// `dropped_fault`, so MPTCP sees them exactly like mid-path packet
/// loss: RTO-driven reinjection must rescue stranded data.
#[allow(clippy::too_many_arguments)]
pub fn run_mptcp_faulted(
    trace_a: &LinkTrace,
    trace_b: &LinkTrace,
    scheduler: SchedulerKind,
    tuning: BufferTuning,
    seed: u64,
    faults_a: &FaultSchedule,
    faults_b: &FaultSchedule,
) -> EmulationResult {
    assert_eq!(
        trace_a.duration_s(),
        trace_b.duration_s(),
        "traces must be timestamp-aligned"
    );
    let secs = trace_a.duration_s();
    let buffer = buffer_packets(tuning, trace_a, trace_b);
    let pa = pipes_for(trace_a, 60_000);
    let pb = pipes_for(trace_b, 60_000);
    match (pa, pb) {
        (Some((da, aa, _)), Some((db, ab, _))) => {
            let da = FaultPipe::new(da, faults_a.clone());
            let db = FaultPipe::new(db, faults_b.clone());
            let mut sim = Simulator::new(seed);
            let sender = sim.add_node(Box::new(MptcpSender::new(MptcpConfig {
                flow: 10,
                cc: CcAlgorithm::Cubic,
                coupled: true,
                scheduler,
                recv_buffer_packets: buffer,
                subflow_links: vec![LinkId(0), LinkId(1)],
                limit_packets: None,
                // By convention `trace_a` is the satellite path; the
                // LEO-aware scheduler gets the Starlink reconfiguration
                // clock for it.
                leo_guard: (scheduler == SchedulerKind::LeoAware)
                    .then(leo_transport::mptcp::LeoGuard::starlink_default),
            })));
            let receiver = sim.add_node(Box::new(MptcpReceiver::new(
                10,
                vec![LinkId(2), LinkId(3)],
                buffer,
            )));
            sim.add_link(Box::new(da), receiver);
            sim.add_link(Box::new(db), receiver);
            sim.add_link(Box::new(aa), sender);
            sim.add_link(Box::new(ab), sender);
            sim.with_agent(sender, |a, ctx| {
                a.as_any_mut()
                    .downcast_mut::<MptcpSender>()
                    .expect("sender")
                    .start(ctx)
            });
            sim.run_until(SimTime::from_secs(secs));
            let link_stats = sim.audit().links;
            if leo_obs::enabled() {
                flush_mptcp_obs(&sim, sender, scheduler, &link_stats);
            }
            let r = sim.agent_as::<MptcpReceiver>(receiver);
            let delivered_bytes = r.meter.total_bytes();
            if leo_netsim::strict_checks() {
                // The MPTCP aggregate can never exceed the sum of what the
                // two subflow data pipes (LinkId 0 and 1) delivered.
                let subflow_sum = link_stats[0].delivered_bytes + link_stats[1].delivered_bytes;
                assert!(
                    delivered_bytes <= subflow_sum,
                    "MPTCP goodput {delivered_bytes} exceeds subflow deliveries {subflow_sum}"
                );
            }
            let mut series = r.meter.series_mbps();
            series.resize(secs as usize, 0.0);
            EmulationResult {
                mean_mbps: r.meter.mean_mbps_over(SimTime::from_secs(secs)),
                per_second_mbps: series,
                delivered_bytes,
                link_stats,
            }
        }
        // One path entirely dead: MPTCP degenerates to the live path
        // (still under that path's scheduled faults).
        (Some(_), None) => run_single_path_faulted(trace_a, seed, faults_a),
        (None, Some(_)) => run_single_path_faulted(trace_b, seed, faults_b),
        (None, None) => EmulationResult::empty(secs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_link::condition::LinkCondition;

    fn flat_trace(label: &str, mbps: f64, rtt: f64, secs: usize) -> LinkTrace {
        LinkTrace::new(label, 0, vec![LinkCondition::new(mbps, rtt, 0.0001); secs])
    }

    #[test]
    fn single_path_tracks_trace_capacity() {
        let t = flat_trace("A", 60.0, 50.0, 15);
        let r = run_single_path(&t, 3);
        assert!(
            r.mean_mbps > 35.0,
            "single path {} Mbps on a 60 Mbps trace",
            r.mean_mbps
        );
        assert_eq!(r.per_second_mbps.len(), 15);
    }

    #[test]
    fn mptcp_tuned_pools_paths() {
        let a = flat_trace("A", 60.0, 50.0, 15);
        let b = flat_trace("B", 40.0, 70.0, 15);
        let single = run_single_path(&a, 3);
        let mp = run_mptcp(&a, &b, SchedulerKind::Blest, BufferTuning::Tuned, 3);
        assert!(
            mp.mean_mbps > single.mean_mbps,
            "MPTCP {} vs best single {}",
            mp.mean_mbps,
            single.mean_mbps
        );
    }

    #[test]
    fn dead_path_degenerates_gracefully() {
        let a = flat_trace("A", 50.0, 50.0, 10);
        let dead = LinkTrace::new("D", 0, vec![LinkCondition::OUTAGE; 10]);
        let mp = run_mptcp(&a, &dead, SchedulerKind::MinRtt, BufferTuning::Tuned, 3);
        assert!(mp.mean_mbps > 20.0, "got {}", mp.mean_mbps);
        let both_dead = run_mptcp(&dead, &dead, SchedulerKind::MinRtt, BufferTuning::Tuned, 3);
        assert_eq!(both_dead.mean_mbps, 0.0);
    }

    #[test]
    fn faulted_run_with_empty_schedules_matches_plain_run() {
        let a = flat_trace("A", 60.0, 50.0, 12);
        let b = flat_trace("B", 40.0, 70.0, 12);
        let none = FaultSchedule::new();
        let plain = run_mptcp(&a, &b, SchedulerKind::Blest, BufferTuning::Tuned, 5);
        let wrapped = run_mptcp_faulted(
            &a,
            &b,
            SchedulerKind::Blest,
            BufferTuning::Tuned,
            5,
            &none,
            &none,
        );
        assert_eq!(plain.per_second_mbps, wrapped.per_second_mbps);
        let sp = run_single_path(&a, 5);
        let sf = run_single_path_faulted(&a, 5, &none);
        assert_eq!(sp.per_second_mbps, sf.per_second_mbps);
    }

    #[test]
    fn mptcp_degrades_gracefully_under_injected_outage() {
        // The graceful-degradation property: with one path forced into
        // outage for most of the download, MPTCP must still sustain at
        // least the surviving path's solo throughput (the early dual-path
        // seconds more than pay for the dead subflow's probing).
        let a = flat_trace("A", 60.0, 50.0, 30);
        let b = flat_trace("B", 40.0, 70.0, 30);
        let outage_b = FaultSchedule::new().outage_s(10, 30);
        let mp = run_mptcp_faulted(
            &a,
            &b,
            SchedulerKind::Blest,
            BufferTuning::Tuned,
            7,
            &FaultSchedule::new(),
            &outage_b,
        );
        let solo_surviving = run_single_path(&a, 7);
        assert!(
            mp.mean_mbps >= solo_surviving.mean_mbps,
            "faulted MPTCP {} must sustain the surviving path's solo {}",
            mp.mean_mbps,
            solo_surviving.mean_mbps
        );
        // And the outage really bit: the faulted run stays below the
        // fault-free dual-path run.
        let clean = run_mptcp(&a, &b, SchedulerKind::Blest, BufferTuning::Tuned, 7);
        assert!(
            mp.mean_mbps < clean.mean_mbps,
            "outage had no effect: {} vs clean {}",
            mp.mean_mbps,
            clean.mean_mbps
        );
    }

    #[test]
    fn buffer_sizes_scale_with_tuning() {
        let a = flat_trace("A", 100.0, 60.0, 10);
        let b = flat_trace("B", 50.0, 40.0, 10);
        let small = buffer_packets(BufferTuning::Default, &a, &b);
        let big = buffer_packets(BufferTuning::Tuned, &a, &b);
        assert!(big >= 10 * small, "tuned {big} vs default {small}");
    }
}
