//! The figure registry: every experiment, enumerable.

use leo_dataset::campaign::Campaign;

/// One reproducible figure.
pub struct FigureEntry {
    /// Short id ("fig1", "fig3a", …).
    pub id: &'static str,
    /// The paper's caption, abbreviated.
    pub title: &'static str,
    /// Runs the experiment and renders it for the terminal.
    pub render: fn(&Campaign) -> String,
}

/// Every figure of the paper, in order.
///
/// Figures 10 and 11 run packet-level emulation; their registry entries
/// use moderate window settings so a full sweep stays interactive — the
/// benches run the paper-scale versions.
pub fn all_figures() -> Vec<FigureEntry> {
    vec![
        FigureEntry {
            id: "fig1",
            title: "Download throughput of different networks",
            render: |c| crate::fig1::render(&crate::fig1::run(c)),
        },
        FigureEntry {
            id: "fig3",
            title: "Throughput comparison: TCP/UDP, Roam/Mobility, Up/Down",
            render: |c| crate::fig3::render(&crate::fig3::run(c)),
        },
        FigureEntry {
            id: "fig4",
            title: "UDP Ping latency",
            render: |c| crate::fig4::render(&crate::fig4::run(c)),
        },
        FigureEntry {
            id: "fig5",
            title: "Packet loss in TCP transfer",
            render: |c| crate::fig5::render(&crate::fig5::run(c)),
        },
        FigureEntry {
            id: "fig6",
            title: "Impact of speed",
            render: |c| crate::fig6::render(&crate::fig6::run(c)),
        },
        FigureEntry {
            id: "fig7",
            title: "Impact of TCP parallelism",
            render: |c| crate::fig7::render(&crate::fig7::run(c)),
        },
        FigureEntry {
            id: "fig8",
            title: "Downlink throughput at different area types",
            render: |c| crate::fig8::render(&crate::fig8::run(c)),
        },
        FigureEntry {
            id: "fig9",
            title: "Comparison of network performance coverage",
            render: |c| crate::fig9::render(&crate::fig9::run(c)),
        },
        FigureEntry {
            id: "fig10",
            title: "Single-path TCP and MPTCP download performance",
            render: |c| {
                crate::fig10::render(&crate::fig10::run(
                    c,
                    crate::fig10::Fig10Params {
                        windows: 4,
                        window_s: 120,
                        seed: 0xf1610,
                    },
                ))
            },
        },
        FigureEntry {
            id: "fig11",
            title: "Throughput traces for single-path TCP and MPTCP",
            render: |c| {
                crate::fig11::render(&crate::fig11::run(
                    c,
                    crate::fig11::Fig11Params {
                        window_s: 120,
                        seed: 0xf1611,
                    },
                ))
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let figs = all_figures();
        assert_eq!(figs.len(), 10, "figures 1 and 3–11");
        let mut ids: Vec<&str> = figs.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), figs.len(), "duplicate figure ids");
    }

    #[test]
    fn every_entry_renders_nonempty() {
        let c = crate::test_support::small_campaign();
        for f in all_figures() {
            let out = (f.render)(c);
            assert!(
                out.len() > 40,
                "{} rendered suspiciously little: {out:?}",
                f.id
            );
            assert!(out.contains("Figure"), "{} missing caption", f.id);
        }
    }
}
