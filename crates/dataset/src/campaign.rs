//! Campaign generation: drive the tour, trace every network, run the
//! scheduled tests.
//!
//! Generation is parallel but deterministic: the per-network traces and
//! the per-test records each own an RNG seed derived from the campaign
//! seed (plus the network / test index), so splitting the work across
//! any number of threads reorders no random draws. `Campaign::generate`
//! at any `LEO_CAMPAIGN_THREADS` is byte-identical to the sequential
//! path.

use crate::record::{DriveRecord, NetworkId, TestKind};
use crate::summary::DatasetSummary;
use crate::tour::grand_tour;
use leo_cellular::carrier::Carrier;
use leo_cellular::deployment::Deployment;
use leo_cellular::model::{CellularLinkModel, CellularModelConfig};
use leo_geo::area::{AreaClassifier, AreaType};
use leo_geo::drive::{DrivePlan, EnvironmentSample, Weather};
use leo_geo::places::PlaceDb;
use leo_geo::point::GeoPoint;
use leo_link::condition::Direction;
use leo_link::trace::LinkTrace;
use leo_measure::iperf::{IperfConfig, IperfProtocol, IperfRunner};
use leo_measure::udp_ping::UdpPing;
use leo_orbit::dish::DishPlan;
use leo_orbit::model::{StarlinkLinkModel, StarlinkModelConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Worker threads used by [`Campaign::generate`]: the
/// `LEO_CAMPAIGN_THREADS` environment variable when set to a positive
/// integer, otherwise the machine's available parallelism. The thread
/// count never changes the generated campaign, only how fast it arrives.
pub fn campaign_threads() -> usize {
    std::env::var("LEO_CAMPAIGN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(64)
}

/// Weather mix of a campaign, in tenths of drive time.
///
/// The drive's weather alternates in multi-hour blocks; out of every ten
/// blocks (hashed pseudo-randomly from the campaign seed), `rain_tenths`
/// are rainy and `snow_tenths` snowy, the rest clear. The default 2/1 mix
/// reproduces §3.3's "clear weather conditions but also rainy and snowy
/// conditions"; scenario campaigns override it (e.g. a thunderstorm
/// front). Tenths beyond ten are clamped so the mix always partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeatherMix {
    pub rain_tenths: u8,
    pub snow_tenths: u8,
}

impl Default for WeatherMix {
    fn default() -> Self {
        Self {
            rain_tenths: 2,
            snow_tenths: 1,
        }
    }
}

impl WeatherMix {
    /// Permanently clear skies.
    pub const CLEAR: WeatherMix = WeatherMix {
        rain_tenths: 0,
        snow_tenths: 0,
    };

    /// The weather for a block hash in `[0, 10)`.
    fn weather_for(&self, tenth: u64) -> Weather {
        let rain = (self.rain_tenths as u64).min(10);
        let snow = (self.snow_tenths as u64).min(10 - rain);
        if tenth < rain {
            Weather::Rain
        } else if tenth < rain + snow {
            Weather::Snow
        } else {
            Weather::Clear
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Master seed; the whole campaign is a pure function of this config.
    pub seed: u64,
    /// Tour scale in `(0, 1]` (1.0 = the full >3,800 km field trip).
    pub scale: f64,
    /// Number of tests to schedule (paper: 1,239 at full scale; scaled
    /// proportionally by `scale`).
    pub tests_at_full_scale: u32,
    /// Duration of each test, seconds.
    pub test_duration_s: u32,
    /// Weather mix over the drive (default: the paper's clear/rain/snow
    /// blocks).
    pub weather: WeatherMix,
    /// Forces every second of the drive to one area type (scenario
    /// campaigns: e.g. an all-urban canyon world); `None` classifies
    /// areas from the route as usual.
    pub area_override: Option<AreaType>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0xcafe_2023,
            scale: 1.0,
            tests_at_full_scale: 1239,
            test_duration_s: 60,
            weather: WeatherMix::default(),
            area_override: None,
        }
    }
}

impl CampaignConfig {
    /// A small configuration for tests and examples (~2 % of the field
    /// trip).
    pub fn small() -> Self {
        Self {
            scale: 0.02,
            ..Self::default()
        }
    }

    /// Tests scheduled at this scale.
    pub fn test_count(&self) -> u32 {
        ((self.tests_at_full_scale as f64 * self.scale).round() as u32).max(5)
    }
}

/// The generated campaign: the drive, aligned per-network traces, and the
/// completed test records.
#[derive(Debug, Clone)]
pub struct Campaign {
    pub config: CampaignConfig,
    /// 1 Hz environment samples of the whole drive.
    pub samples: Vec<EnvironmentSample>,
    /// Area type per sample.
    pub areas: Vec<AreaType>,
    /// Aligned (downlink, uplink) traces per network.
    pub traces: BTreeMap<NetworkId, (LinkTrace, LinkTrace)>,
    /// The completed tests.
    pub records: Vec<DriveRecord>,
}

impl Campaign {
    /// Generates the full campaign from a configuration, using
    /// [`campaign_threads`] workers.
    pub fn generate(config: CampaignConfig) -> Self {
        Self::generate_with_threads(config, campaign_threads())
    }

    /// [`Campaign::generate`] with an explicit worker count.
    ///
    /// The result is byte-identical for every `threads` value: each
    /// network trace and each scheduled test derives its own RNG seed
    /// from the campaign seed, so no thread interleaving can reorder
    /// random draws (`deterministic_across_full_pipeline` and
    /// `thread_count_does_not_change_campaign` pin this contract).
    pub fn generate_with_threads(config: CampaignConfig, threads: usize) -> Self {
        let threads = threads.max(1);
        let places = PlaceDb::five_state_corridor();
        let route = grand_tour(&places, config.scale);
        let corridor = route.waypoints();
        let classifier = AreaClassifier::new(places.clone());

        leo_obs::incr("campaign.generations", 1);

        // 1. Drive the tour. Inherently sequential: each second's vehicle
        //    state depends on the previous one.
        let drive_span = leo_obs::span("campaign.stage.drive_s");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let plan = DrivePlan::new(route).with_start_hour(8.0);
        let mut samples = plan.simulate(&mut rng, 60 * 60 * 24 * 14);
        apply_weather_schedule(&mut samples, config.seed, config.weather);
        drop(drive_span);

        // 2. Classify areas along the drive (or force one everywhere).
        let area_span = leo_obs::span("campaign.stage.area_s");
        let areas: Vec<AreaType> = match config.area_override {
            Some(area) => vec![area; samples.len()],
            None => samples
                .iter()
                .map(|s| classifier.classify(&s.position))
                .collect(),
        };
        drop(area_span);

        // 3. Trace every network over the same timeline, one job per
        //    network fanned out over scoped threads.
        let trace_span = leo_obs::span("campaign.stage.trace_s");
        let traces = trace_all_networks(&config, &places, &corridor, &samples, &areas, threads);
        drop(trace_span);

        // 4. Schedule and run the tests, split into contiguous index
        //    chunks across the workers.
        let tests_span = leo_obs::span("campaign.stage.tests_s");
        let records = schedule_and_run(&config, &samples, &areas, &traces, threads);
        drop(tests_span);

        Self {
            config,
            samples,
            areas,
            traces,
            records,
        }
    }

    /// Dataset summary (the §3.3 numbers).
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary::from_campaign(self)
    }

    /// Records matching a predicate — the analysis crates' entry point.
    pub fn records_where(&self, f: impl Fn(&DriveRecord) -> bool) -> Vec<&DriveRecord> {
        self.records.iter().filter(|r| f(r)).collect()
    }

    /// Re-runs the scheduled tests against the *current* traces,
    /// replacing `records` — the scenario engine's hook: after its
    /// perturbation layer rewrites the per-second condition series, the
    /// measured dataset must reflect the degraded world. Same
    /// determinism contract as [`Campaign::generate_with_threads`]: the
    /// result is byte-identical for every `threads` value.
    pub fn rerun_tests(&mut self, threads: usize) {
        self.records = schedule_and_run(
            &self.config,
            &self.samples,
            &self.areas,
            &self.traces,
            threads.max(1),
        );
    }
}

/// Weather alternates in multi-hour blocks: mostly clear, with rain and
/// snow segments (§3.3 collected in all three). The mix decides how many
/// of every ten (hashed) blocks are rain or snow; the default mix keeps
/// this function byte-identical to the original fixed 2/1 schedule.
fn apply_weather_schedule(samples: &mut [EnvironmentSample], seed: u64, mix: WeatherMix) {
    const BLOCK_S: u64 = 2 * 3600;
    for s in samples.iter_mut() {
        let block = s.t_s / BLOCK_S;
        let h = block
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(seed)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        s.weather = mix.weather_for(h % 10);
    }
}

/// Traces all five networks, distributing the per-network jobs
/// round-robin over `threads` scoped workers. Every network seeds its
/// own model, so the assignment of networks to threads is invisible in
/// the output; the `BTreeMap` then fixes the iteration order.
fn trace_all_networks(
    config: &CampaignConfig,
    places: &PlaceDb,
    corridor: &[GeoPoint],
    samples: &[EnvironmentSample],
    areas: &[AreaType],
    threads: usize,
) -> BTreeMap<NetworkId, (LinkTrace, LinkTrace)> {
    if threads <= 1 {
        return NetworkId::ALL
            .iter()
            .map(|&n| {
                (
                    n,
                    trace_network_timed(n, config, places, corridor, samples, areas),
                )
            })
            .collect();
    }
    let workers = threads.min(NetworkId::ALL.len());
    let traced: Vec<(NetworkId, (LinkTrace, LinkTrace))> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move |_| {
                    let _worker = leo_obs::span("campaign.worker.trace_s");
                    NetworkId::ALL
                        .iter()
                        .skip(w)
                        .step_by(workers)
                        .map(|&n| {
                            (
                                n,
                                trace_network_timed(n, config, places, corridor, samples, areas),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("network tracer panicked"))
            .collect()
    })
    .expect("trace scope panicked");
    traced.into_iter().collect()
}

/// [`trace_network`] under a per-network span, so an `LEO_OBS=1` run can
/// break the trace stage down by network (the Starlink models dominate).
fn trace_network_timed(
    network: NetworkId,
    config: &CampaignConfig,
    places: &PlaceDb,
    corridor: &[GeoPoint],
    samples: &[EnvironmentSample],
    areas: &[AreaType],
) -> (LinkTrace, LinkTrace) {
    let name = match network {
        NetworkId::Att => "campaign.trace.ATT_s",
        NetworkId::TMobile => "campaign.trace.TM_s",
        NetworkId::Verizon => "campaign.trace.VZ_s",
        NetworkId::Roam => "campaign.trace.RM_s",
        NetworkId::Mobility => "campaign.trace.MOB_s",
    };
    let _span = leo_obs::span(name);
    trace_network(network, config, places, corridor, samples, areas)
}

/// Builds one network's aligned (downlink, uplink) traces. Pure function
/// of `(config, world, network)` — the parallel fan-out relies on that.
fn trace_network(
    network: NetworkId,
    config: &CampaignConfig,
    places: &PlaceDb,
    corridor: &[GeoPoint],
    samples: &[EnvironmentSample],
    areas: &[AreaType],
) -> (LinkTrace, LinkTrace) {
    match network {
        NetworkId::Roam | NetworkId::Mobility => {
            let plan = match network {
                NetworkId::Roam => DishPlan::Roam,
                _ => DishPlan::Mobility,
            };
            let mut cfg = StarlinkModelConfig::for_plan(plan);
            cfg.seed = config.seed ^ 0x5a7e_0000;
            StarlinkLinkModel::new(cfg).trace_for_drive(samples, areas)
        }
        NetworkId::Att | NetworkId::TMobile | NetworkId::Verizon => {
            let carrier = match network {
                NetworkId::Att => Carrier::Att,
                NetworkId::TMobile => Carrier::TMobile,
                _ => Carrier::Verizon,
            };
            let deployment = Deployment::generate(carrier, places, corridor, config.seed ^ 0xce11);
            let mut cfg = CellularModelConfig::for_carrier(carrier);
            cfg.seed = config.seed ^ 0xce11_0001;
            CellularLinkModel::new(cfg, deployment).trace_for_drive(samples, areas)
        }
    }
}

/// The repeating test-type schedule. Weighted towards UDP downlink (the
/// coverage analysis workhorse) with regular TCP, uplink, parallelism, and
/// ping slots — mirroring the experiment mix of §4.
const TEST_CYCLE: [(TestKind, Direction); 10] = [
    (TestKind::Udp, Direction::Down),
    (TestKind::Tcp { parallel: 1 }, Direction::Down),
    (TestKind::Udp, Direction::Down),
    (TestKind::Ping, Direction::Down),
    (TestKind::Udp, Direction::Up),
    (TestKind::Tcp { parallel: 4 }, Direction::Down),
    (TestKind::Udp, Direction::Down),
    (TestKind::Tcp { parallel: 1 }, Direction::Up),
    (TestKind::Tcp { parallel: 8 }, Direction::Down),
    (TestKind::Ping, Direction::Down),
];

fn schedule_and_run(
    config: &CampaignConfig,
    samples: &[EnvironmentSample],
    areas: &[AreaType],
    traces: &BTreeMap<NetworkId, (LinkTrace, LinkTrace)>,
    threads: usize,
) -> Vec<DriveRecord> {
    let n_tests = config.test_count() as usize;
    let duration = config.test_duration_s as u64;
    let timeline = samples.len() as u64;
    if timeline < duration + 1 {
        return Vec::new();
    }
    // Tests are spread evenly over the drive; several networks are
    // measured in the same window (the paper's phones ran side by side).
    let stride = ((timeline - duration) / (n_tests as u64).max(1)).max(1);

    if threads <= 1 || n_tests < 2 {
        return (0..n_tests)
            .map(|i| run_scheduled_test(config, samples, areas, traces, stride, i as u32))
            .collect();
    }
    // Contiguous chunks, reassembled in index order: record i is a pure
    // function of (config, world, i), so chunking is invisible.
    let workers = threads.min(n_tests);
    let chunk = n_tests.div_ceil(workers);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n_tests);
                s.spawn(move |_| {
                    let _worker = leo_obs::span("campaign.worker.tests_s");
                    (lo..hi)
                        .map(|i| {
                            run_scheduled_test(config, samples, areas, traces, stride, i as u32)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("test runner panicked"))
            .collect()
    })
    .expect("test scope panicked")
}

/// Runs scheduled test `i` and builds its record.
fn run_scheduled_test(
    config: &CampaignConfig,
    samples: &[EnvironmentSample],
    areas: &[AreaType],
    traces: &BTreeMap<NetworkId, (LinkTrace, LinkTrace)>,
    stride: u64,
    i: u32,
) -> DriveRecord {
    let duration = config.test_duration_s as u64;
    let timeline = samples.len() as u64;
    let t0 = (i as u64 * stride).min(timeline - duration);
    // Nested cycles: the network advances every test, the test kind
    // every full network rotation, so every (network, kind) pair
    // occurs — a flat `i % len` on both would alias (5 divides 10).
    let network = NetworkId::ALL[i as usize % NetworkId::ALL.len()];
    let (kind, direction) = TEST_CYCLE[(i as usize / NetworkId::ALL.len()) % TEST_CYCLE.len()];
    let (down, up) = &traces[&network];
    let trace = match direction {
        Direction::Down => down,
        Direction::Up => up,
    };
    let window = trace.window(t0, t0 + duration);
    let win_samples = &samples[t0 as usize..(t0 + duration) as usize];
    let win_areas = &areas[t0 as usize..(t0 + duration) as usize];

    let seed = test_seed(config.seed, network, i);
    let (mean_mbps, median_mbps, retrans, rtt) = run_test(kind, network, direction, &window, seed);

    let mid = &win_samples[win_samples.len() / 2];
    DriveRecord {
        test_id: i,
        network,
        kind,
        direction,
        t_start_s: t0,
        duration_s: config.test_duration_s,
        lat_deg: mid.position.lat_deg,
        lon_deg: mid.position.lon_deg,
        area: majority_area(win_areas),
        mean_speed_kmh: win_samples.iter().map(|s| s.speed_kmh).sum::<f64>()
            / win_samples.len() as f64,
        mean_mbps,
        median_mbps,
        retrans_rate: retrans,
        mean_rtt_ms: rtt,
    }
}

/// Per-test RNG seed: a SplitMix64-style mix of the campaign seed, the
/// network, and the test index. Each test owns an independent stream, so
/// results don't depend on which thread (or in which order) it runs.
fn test_seed(campaign_seed: u64, network: NetworkId, test_id: u32) -> u64 {
    let net = NetworkId::ALL
        .iter()
        .position(|&n| n == network)
        .expect("network in ALL") as u64;
    let mut z = campaign_seed ^ (net << 32) ^ test_id as u64;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn run_test(
    kind: TestKind,
    network: NetworkId,
    direction: Direction,
    window: &LinkTrace,
    seed: u64,
) -> (f64, f64, f64, Option<f64>) {
    match kind {
        TestKind::Ping => {
            let rep = UdpPing {
                seed,
                ..UdpPing::default()
            }
            .run(window);
            (0.0, 0.0, rep.loss_rate(), rep.mean_rtt_ms())
        }
        TestKind::Udp => {
            let cfg = IperfConfig {
                protocol: IperfProtocol::Udp,
                ..base_iperf(network, direction)
            };
            let rep = IperfRunner::new(cfg).run(window);
            (
                rep.mean_mbps,
                median(&rep.per_second_mbps),
                rep.retrans_rate,
                None,
            )
        }
        TestKind::Tcp { parallel } => {
            let cfg = IperfConfig {
                protocol: IperfProtocol::Tcp { parallel },
                ..base_iperf(network, direction)
            };
            let rep = IperfRunner::new(cfg).run(window);
            (
                rep.mean_mbps,
                median(&rep.per_second_mbps),
                rep.retrans_rate,
                None,
            )
        }
    }
}

fn base_iperf(network: NetworkId, direction: Direction) -> IperfConfig {
    let mut cfg = if network.is_starlink() {
        IperfConfig::tcp_down_starlink(1)
    } else {
        IperfConfig::tcp_down_cellular(1)
    };
    cfg.direction = direction;
    cfg
}

fn median(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let mut v = series.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

fn majority_area(areas: &[AreaType]) -> AreaType {
    let mut counts = [0usize; 3];
    for a in areas {
        match a {
            AreaType::Urban => counts[0] += 1,
            AreaType::Suburban => counts[1] += 1,
            AreaType::Rural => counts[2] += 1,
        }
    }
    let idx = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .expect("non-empty")
        .0;
    [AreaType::Urban, AreaType::Suburban, AreaType::Rural][idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign() -> Campaign {
        Campaign::generate(CampaignConfig::small())
    }

    #[test]
    fn campaign_produces_scheduled_tests() {
        let c = small_campaign();
        assert_eq!(c.records.len() as u32, c.config.test_count());
        assert!(c.records.len() >= 20, "got {}", c.records.len());
    }

    #[test]
    fn every_network_is_tested() {
        let c = small_campaign();
        for n in NetworkId::ALL {
            assert!(
                c.records.iter().any(|r| r.network == n),
                "network {n} untested"
            );
        }
    }

    #[test]
    fn traces_cover_the_whole_drive() {
        let c = small_campaign();
        for (n, (down, up)) in &c.traces {
            assert_eq!(
                down.duration_s(),
                c.samples.len() as u64,
                "{n} downlink trace length"
            );
            assert_eq!(up.duration_s(), c.samples.len() as u64);
        }
    }

    #[test]
    fn ping_records_have_rtt_and_transfers_have_throughput() {
        let c = small_campaign();
        let pings = c.records_where(|r| r.kind == TestKind::Ping);
        let transfers = c.records_where(|r| r.kind != TestKind::Ping);
        assert!(!pings.is_empty() && !transfers.is_empty());
        assert!(
            pings.iter().filter(|r| r.mean_rtt_ms.is_some()).count() > pings.len() / 2,
            "most ping tests should see acknowledged probes"
        );
        assert!(
            transfers.iter().any(|r| r.mean_mbps > 10.0),
            "some transfers must see real throughput"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = Campaign::generate(CampaignConfig::small());
        let b = Campaign::generate(CampaignConfig::small());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn thread_count_does_not_change_campaign() {
        // The parallel-determinism contract: 1 worker and many workers
        // produce byte-identical traces and records.
        let seq = Campaign::generate_with_threads(CampaignConfig::small(), 1);
        for threads in [2, 4, 7] {
            let par = Campaign::generate_with_threads(CampaignConfig::small(), threads);
            assert_eq!(seq.traces, par.traces, "traces differ at {threads} threads");
            assert_eq!(
                seq.records, par.records,
                "records differ at {threads} threads"
            );
        }
    }

    #[test]
    fn weather_mix_controls_the_schedule() {
        let all_rain = Campaign::generate(CampaignConfig {
            weather: WeatherMix {
                rain_tenths: 10,
                snow_tenths: 0,
            },
            ..CampaignConfig::small()
        });
        assert!(all_rain.samples.iter().all(|s| s.weather == Weather::Rain));

        let clear = Campaign::generate(CampaignConfig {
            weather: WeatherMix::CLEAR,
            ..CampaignConfig::small()
        });
        assert!(clear.samples.iter().all(|s| s.weather == Weather::Clear));

        // The default mix reproduces the original fixed 2/1 schedule on
        // the block-hash tenths (a small campaign spans too few two-hour
        // blocks to observe all three conditions empirically).
        let mix = WeatherMix::default();
        for tenth in 0..10 {
            let want = match tenth {
                0 | 1 => Weather::Rain,
                2 => Weather::Snow,
                _ => Weather::Clear,
            };
            assert_eq!(mix.weather_for(tenth), want, "tenth {tenth}");
        }
    }

    #[test]
    fn area_override_forces_every_second() {
        let urban = Campaign::generate(CampaignConfig {
            area_override: Some(AreaType::Urban),
            ..CampaignConfig::small()
        });
        assert!(urban.areas.iter().all(|&a| a == AreaType::Urban));
        assert!(urban.records.iter().all(|r| r.area == AreaType::Urban));
    }

    #[test]
    fn rerun_tests_is_idempotent_and_thread_invariant() {
        let base = small_campaign();
        let mut again = base.clone();
        again.rerun_tests(1);
        assert_eq!(
            base.records, again.records,
            "unperturbed rerun must reproduce the original records"
        );
        let mut par = base.clone();
        par.rerun_tests(5);
        assert_eq!(again.records, par.records, "rerun thread invariance");
    }

    #[test]
    fn test_seeds_are_distinct_per_test_and_network() {
        let mut seen = std::collections::BTreeSet::new();
        for net in NetworkId::ALL {
            for i in 0..200u32 {
                assert!(
                    seen.insert(test_seed(42, net, i)),
                    "collision at ({net}, {i})"
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = CampaignConfig::small();
        cfg.seed ^= 1;
        let a = Campaign::generate(cfg);
        let b = Campaign::generate(CampaignConfig::small());
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn starlink_udp_beats_starlink_tcp_overall() {
        // The §4.1 headline finding, visible even in a small campaign.
        let c = small_campaign();
        let udp: Vec<f64> = c
            .records_where(|r| {
                r.network == NetworkId::Mobility
                    && r.kind == TestKind::Udp
                    && r.direction == Direction::Down
            })
            .iter()
            .map(|r| r.mean_mbps)
            .collect();
        let tcp: Vec<f64> = c
            .records_where(|r| {
                r.network == NetworkId::Mobility
                    && r.kind == (TestKind::Tcp { parallel: 1 })
                    && r.direction == Direction::Down
            })
            .iter()
            .map(|r| r.mean_mbps)
            .collect();
        if udp.is_empty() || tcp.is_empty() {
            return; // tiny campaign may miss a slot combination
        }
        let mu = udp.iter().sum::<f64>() / udp.len() as f64;
        let mt = tcp.iter().sum::<f64>() / tcp.len() as f64;
        assert!(mu > mt, "MOB UDP {mu} should beat TCP {mt}");
    }
}
