//! Dataset import/export: CSV and JSON.
//!
//! The paper released its dataset publicly; this module gives the
//! synthetic dataset the same property. CSV is hand-rolled (the schema is
//! flat and contains no quoting hazards); JSON goes through serde.

use crate::record::{DriveRecord, NetworkId, TestKind};
use leo_geo::area::AreaType;
use leo_link::condition::Direction;
use std::io::{self, BufRead, Write};

/// CSV header, stable across versions.
pub const CSV_HEADER: &str = "test_id,network,kind,direction,t_start_s,duration_s,lat_deg,\
lon_deg,area,mean_speed_kmh,mean_mbps,median_mbps,retrans_rate,mean_rtt_ms";

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    Io(io::Error),
    /// A malformed line: (line number, description).
    Parse(usize, String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse(n, what) => write!(f, "line {n}: {what}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn area_label(a: AreaType) -> &'static str {
    a.label()
}

fn area_from(s: &str) -> Option<AreaType> {
    match s {
        "Urban" => Some(AreaType::Urban),
        "Suburban" => Some(AreaType::Suburban),
        "Rural" => Some(AreaType::Rural),
        _ => None,
    }
}

fn dir_label(d: Direction) -> &'static str {
    match d {
        Direction::Down => "down",
        Direction::Up => "up",
    }
}

fn dir_from(s: &str) -> Option<Direction> {
    match s {
        "down" => Some(Direction::Down),
        "up" => Some(Direction::Up),
        _ => None,
    }
}

/// Writes records as CSV.
pub fn write_csv<W: Write>(mut w: W, records: &[DriveRecord]) -> io::Result<()> {
    writeln!(w, "{CSV_HEADER}")?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{},{},{:.6},{:.6},{},{:.2},{:.3},{:.3},{:.6},{}",
            r.test_id,
            r.network.label(),
            r.kind.label(),
            dir_label(r.direction),
            r.t_start_s,
            r.duration_s,
            r.lat_deg,
            r.lon_deg,
            area_label(r.area),
            r.mean_speed_kmh,
            r.mean_mbps,
            r.median_mbps,
            r.retrans_rate,
            r.mean_rtt_ms.map(|v| format!("{v:.2}")).unwrap_or_default(),
        )?;
    }
    Ok(())
}

/// Reads records from CSV (as produced by [`write_csv`]).
pub fn read_csv<R: BufRead>(r: R) -> Result<Vec<DriveRecord>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || (i == 0 && line == CSV_HEADER) {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 14 {
            return Err(CsvError::Parse(
                i + 1,
                format!("{} fields, want 14", f.len()),
            ));
        }
        let bad = |what: &str| CsvError::Parse(i + 1, what.to_string());
        out.push(DriveRecord {
            test_id: f[0].parse().map_err(|_| bad("test_id"))?,
            network: NetworkId::from_label(f[1]).ok_or_else(|| bad("network"))?,
            kind: TestKind::from_label(f[2]).ok_or_else(|| bad("kind"))?,
            direction: dir_from(f[3]).ok_or_else(|| bad("direction"))?,
            t_start_s: f[4].parse().map_err(|_| bad("t_start_s"))?,
            duration_s: f[5].parse().map_err(|_| bad("duration_s"))?,
            lat_deg: f[6].parse().map_err(|_| bad("lat_deg"))?,
            lon_deg: f[7].parse().map_err(|_| bad("lon_deg"))?,
            area: area_from(f[8]).ok_or_else(|| bad("area"))?,
            mean_speed_kmh: f[9].parse().map_err(|_| bad("mean_speed_kmh"))?,
            mean_mbps: f[10].parse().map_err(|_| bad("mean_mbps"))?,
            median_mbps: f[11].parse().map_err(|_| bad("median_mbps"))?,
            retrans_rate: f[12].parse().map_err(|_| bad("retrans_rate"))?,
            mean_rtt_ms: if f[13].is_empty() {
                None
            } else {
                Some(f[13].parse().map_err(|_| bad("mean_rtt_ms"))?)
            },
        });
    }
    Ok(out)
}

/// Exports every network trace as Mahimahi packet-delivery text — the
/// exact file format the paper fed to MpShell, so this synthetic dataset
/// can drive real Mahimahi/MpShell instances too. Returns
/// `(file name, trace text)` pairs, one per network and direction.
pub fn export_mahimahi(campaign: &crate::campaign::Campaign) -> Vec<(String, String)> {
    use leo_link::mahimahi::MahimahiTrace;
    let mut out = Vec::new();
    for (network, (down, up)) in &campaign.traces {
        for (dir, trace) in [("down", down), ("up", up)] {
            let mm = MahimahiTrace::from_link_trace(trace);
            out.push((
                format!("{}_{dir}.mahi", network.label().to_lowercase()),
                mm.to_text(),
            ));
        }
    }
    out
}

/// Serialises records to pretty JSON.
pub fn to_json(records: &[DriveRecord]) -> serde_json::Result<String> {
    serde_json::to_string_pretty(records)
}

/// Parses records from JSON.
pub fn from_json(s: &str) -> serde_json::Result<Vec<DriveRecord>> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<DriveRecord> {
        vec![
            DriveRecord {
                test_id: 0,
                network: NetworkId::Mobility,
                kind: TestKind::Udp,
                direction: Direction::Down,
                t_start_s: 120,
                duration_s: 60,
                lat_deg: 44.95123,
                lon_deg: -93.2,
                area: AreaType::Urban,
                mean_speed_kmh: 33.5,
                mean_mbps: 87.125,
                median_mbps: 92.0,
                retrans_rate: 0.0123,
                mean_rtt_ms: None,
            },
            DriveRecord {
                test_id: 1,
                network: NetworkId::Att,
                kind: TestKind::Ping,
                direction: Direction::Down,
                t_start_s: 300,
                duration_s: 60,
                lat_deg: 44.9,
                lon_deg: -93.1,
                area: AreaType::Suburban,
                mean_speed_kmh: 66.0,
                mean_mbps: 0.0,
                median_mbps: 0.0,
                retrans_rate: 0.02,
                mean_rtt_ms: Some(81.25),
            },
        ]
    }

    #[test]
    fn csv_round_trip() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_csv(&mut buf, &records).unwrap();
        let parsed = read_csv(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].network, NetworkId::Mobility);
        assert_eq!(parsed[1].mean_rtt_ms, Some(81.25));
        assert!((parsed[0].mean_mbps - 87.125).abs() < 1e-9);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let records = sample_records();
        let json = to_json(&records).unwrap();
        let parsed = from_json(&json).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        let bad = format!("{CSV_HEADER}\n1,2,3\n");
        let err = read_csv(bad.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse(2, _)), "{err}");

        let bad_network = format!("{CSV_HEADER}\n0,XX,udp,down,0,60,1,1,Urban,10,1,1,0,\n");
        assert!(read_csv(bad_network.as_bytes()).is_err());
    }

    #[test]
    fn mahimahi_export_covers_all_networks_and_parses_back() {
        use crate::campaign::{Campaign, CampaignConfig};
        use leo_link::mahimahi::MahimahiTrace;
        let c = Campaign::generate(CampaignConfig::small());
        let files = export_mahimahi(&c);
        assert_eq!(files.len(), 10, "5 networks x 2 directions");
        for (name, text) in &files {
            assert!(name.ends_with(".mahi"));
            // Non-dead traces must parse back as valid Mahimahi schedules.
            if !text.is_empty() {
                let mm = MahimahiTrace::from_text(text).expect("valid schedule");
                assert!(mm.mean_rate_mbps() > 0.0);
            }
        }
        // The Mobility downlink must be one of the richer traces.
        let mob = files
            .iter()
            .find(|(n, _)| n == "mob_down.mahi")
            .expect("mob downlink exported");
        assert!(mob.1.lines().count() > 1000);
    }

    #[test]
    fn csv_skips_blank_lines() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_csv(&mut buf, &records).unwrap();
        let with_blanks = format!("{}\n\n", String::from_utf8(buf).unwrap());
        assert_eq!(read_csv(with_blanks.as_bytes()).unwrap().len(), 2);
    }
}
