//! The synthetic driving-campaign dataset.
//!
//! §3.3 of the paper: "Our driving trip yields a unique driving dataset,
//! containing 1,239 network tests and 9,083 minutes of traces. Our field
//! trip covers a total travel distance of over 3,800 km." The original
//! dataset is field-collected and not reproducible without the hardware;
//! this crate regenerates its *structure* from the simulated world:
//!
//! * [`tour`] — the five-state grand-tour route (interstates between
//!   cities, arterial approaches, urban loops, a deep-rural excursion),
//! * [`campaign`] — drives the tour at 1 Hz, generates aligned link traces
//!   for all five networks (Starlink Roam + Mobility, AT&T, T-Mobile,
//!   Verizon, both directions), schedules the 1,239 tests, and runs them
//!   through `leo-measure`,
//! * [`record`] — the per-test record schema,
//! * [`io`] — CSV and JSON import/export,
//! * [`summary`] — the §3.3 dataset summary.

pub mod campaign;
pub mod io;
pub mod record;
pub mod summary;
pub mod tour;

pub use campaign::{campaign_threads, Campaign, CampaignConfig, WeatherMix};
pub use record::{DriveRecord, NetworkId, TestKind};
pub use summary::DatasetSummary;
pub use tour::grand_tour;
