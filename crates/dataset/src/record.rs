//! The per-test record schema.

use leo_geo::area::AreaType;
use leo_link::condition::Direction;
use serde::{Deserialize, Serialize};

/// The five measured networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NetworkId {
    /// Starlink Roam.
    Roam,
    /// Starlink Mobility.
    Mobility,
    Att,
    TMobile,
    Verizon,
}

impl NetworkId {
    /// All networks, in the paper's figure order (ATT, TM, VZ, RM, MOB).
    pub const ALL: [NetworkId; 5] = [
        NetworkId::Att,
        NetworkId::TMobile,
        NetworkId::Verizon,
        NetworkId::Roam,
        NetworkId::Mobility,
    ];

    /// The cellular subset.
    pub const CELLULAR: [NetworkId; 3] = [NetworkId::Att, NetworkId::TMobile, NetworkId::Verizon];

    /// The Starlink subset.
    pub const STARLINK: [NetworkId; 2] = [NetworkId::Roam, NetworkId::Mobility];

    /// Figure label ("ATT" / "TM" / "VZ" / "RM" / "MOB").
    pub fn label(&self) -> &'static str {
        match self {
            NetworkId::Roam => "RM",
            NetworkId::Mobility => "MOB",
            NetworkId::Att => "ATT",
            NetworkId::TMobile => "TM",
            NetworkId::Verizon => "VZ",
        }
    }

    /// Whether this is a satellite network.
    pub fn is_starlink(&self) -> bool {
        matches!(self, NetworkId::Roam | NetworkId::Mobility)
    }

    /// Parses a figure label.
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "RM" => NetworkId::Roam,
            "MOB" => NetworkId::Mobility,
            "ATT" => NetworkId::Att,
            "TM" => NetworkId::TMobile,
            "VZ" => NetworkId::Verizon,
            _ => return None,
        })
    }
}

impl std::fmt::Display for NetworkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What kind of test a record holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestKind {
    /// iPerf UDP bulk transfer.
    Udp,
    /// iPerf TCP bulk transfer with N parallel connections.
    Tcp { parallel: u32 },
    /// UDP-Ping latency probe session.
    Ping,
}

impl TestKind {
    /// Short label for CSV ("udp", "tcp1", "tcp4", "ping", …).
    pub fn label(&self) -> String {
        match self {
            TestKind::Udp => "udp".to_string(),
            TestKind::Tcp { parallel } => format!("tcp{parallel}"),
            TestKind::Ping => "ping".to_string(),
        }
    }

    /// Parses a label produced by [`Self::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "udp" => Some(TestKind::Udp),
            "ping" => Some(TestKind::Ping),
            _ => s
                .strip_prefix("tcp")
                .and_then(|n| n.parse().ok())
                .map(|parallel| TestKind::Tcp { parallel }),
        }
    }
}

/// One completed network test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveRecord {
    pub test_id: u32,
    pub network: NetworkId,
    pub kind: TestKind,
    pub direction: Direction,
    /// Campaign time at test start, seconds.
    pub t_start_s: u64,
    pub duration_s: u32,
    /// Position at the middle of the test.
    pub lat_deg: f64,
    pub lon_deg: f64,
    /// Majority area type over the test window.
    pub area: AreaType,
    /// Mean vehicle speed over the window, km/h.
    pub mean_speed_kmh: f64,
    /// Mean delivered throughput, Mbps (0 for ping tests).
    pub mean_mbps: f64,
    /// Median of the per-second series, Mbps.
    pub median_mbps: f64,
    /// Retransmission (TCP) or loss (UDP) rate.
    pub retrans_rate: f64,
    /// Mean probe RTT, ms (ping tests; `None` when all probes lost or not
    /// a ping test).
    pub mean_rtt_ms: Option<f64>,
}

impl DriveRecord {
    /// Speed bucket (10 km/h bins, matching Figure 6's x-axis).
    pub fn speed_bucket(&self) -> u32 {
        ((self.mean_speed_kmh / 10.0).floor() as u32).min(9) * 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for n in NetworkId::ALL {
            assert_eq!(NetworkId::from_label(n.label()), Some(n));
        }
        for k in [
            TestKind::Udp,
            TestKind::Ping,
            TestKind::Tcp { parallel: 1 },
            TestKind::Tcp { parallel: 8 },
        ] {
            assert_eq!(TestKind::from_label(&k.label()), Some(k));
        }
        assert_eq!(NetworkId::from_label("XX"), None);
        assert_eq!(TestKind::from_label("tcpx"), None);
    }

    #[test]
    fn network_subsets_partition() {
        for n in NetworkId::ALL {
            let in_cell = NetworkId::CELLULAR.contains(&n);
            let in_sl = NetworkId::STARLINK.contains(&n);
            assert!(in_cell ^ in_sl);
            assert_eq!(n.is_starlink(), in_sl);
        }
    }

    #[test]
    fn speed_buckets() {
        let mut r = DriveRecord {
            test_id: 0,
            network: NetworkId::Mobility,
            kind: TestKind::Udp,
            direction: leo_link::condition::Direction::Down,
            t_start_s: 0,
            duration_s: 60,
            lat_deg: 0.0,
            lon_deg: 0.0,
            area: AreaType::Rural,
            mean_speed_kmh: 47.0,
            mean_mbps: 0.0,
            median_mbps: 0.0,
            retrans_rate: 0.0,
            mean_rtt_ms: None,
        };
        assert_eq!(r.speed_bucket(), 40);
        r.mean_speed_kmh = 5.0;
        assert_eq!(r.speed_bucket(), 0);
        r.mean_speed_kmh = 99.0;
        assert_eq!(r.speed_bucket(), 90);
        r.mean_speed_kmh = 150.0;
        assert_eq!(r.speed_bucket(), 90, "clamped to the top bucket");
    }
}
