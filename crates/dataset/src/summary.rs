//! Dataset summary: the §3.3 headline numbers.

use crate::campaign::Campaign;
use leo_geo::area::AreaType;
use serde::{Deserialize, Serialize};

/// Summary statistics of a generated campaign, mirroring §3.3 and §5.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Number of completed network tests (paper: 1,239).
    pub tests: u32,
    /// Total trace minutes across all network devices (paper: 9,083).
    pub trace_minutes: u64,
    /// Total distance driven, km (paper: >3,800).
    pub distance_km: f64,
    /// Drive duration, minutes.
    pub drive_minutes: u64,
    /// Area proportions of the drive samples (paper: 29.78 % / 34.30 % /
    /// 35.91 %).
    pub urban_frac: f64,
    pub suburban_frac: f64,
    pub rural_frac: f64,
    /// Number of networks traced simultaneously.
    pub networks: u32,
}

impl DatasetSummary {
    /// Computes the summary from a campaign.
    pub fn from_campaign(c: &Campaign) -> Self {
        let n = c.samples.len().max(1) as f64;
        let count = |a: AreaType| c.areas.iter().filter(|&&x| x == a).count() as f64 / n;
        let drive_minutes = c.samples.len() as u64 / 60;
        let networks = c.traces.len() as u32;
        Self {
            tests: c.records.len() as u32,
            trace_minutes: drive_minutes * networks as u64,
            distance_km: c.samples.last().map(|s| s.travelled_km).unwrap_or(0.0),
            drive_minutes,
            urban_frac: count(AreaType::Urban),
            suburban_frac: count(AreaType::Suburban),
            rural_frac: count(AreaType::Rural),
            networks,
        }
    }

    /// Renders the summary as the §3.3-style paragraph.
    pub fn render(&self) -> String {
        format!(
            "Dataset: {} network tests, {} minutes of traces across {} networks, \
             {:.0} km driven in {} minutes. Area mix: urban {:.2}%, suburban {:.2}%, \
             rural {:.2}%.",
            self.tests,
            self.trace_minutes,
            self.networks,
            self.distance_km,
            self.drive_minutes,
            self.urban_frac * 100.0,
            self.suburban_frac * 100.0,
            self.rural_frac * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {

    use crate::campaign::{Campaign, CampaignConfig};

    #[test]
    fn small_campaign_summary_is_consistent() {
        let c = Campaign::generate(CampaignConfig::small());
        let s = c.summary();
        assert_eq!(s.tests as usize, c.records.len());
        assert_eq!(s.networks, 5);
        assert_eq!(s.trace_minutes, s.drive_minutes * 5);
        assert!(s.distance_km > 50.0, "distance {}", s.distance_km);
        assert!((s.urban_frac + s.suburban_frac + s.rural_frac - 1.0).abs() < 1e-9);
        let text = s.render();
        assert!(text.contains("network tests"));
    }
}
