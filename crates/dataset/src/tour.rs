//! The five-state grand tour.
//!
//! §3.3: "extensive drive tests across major cities and interstate
//! freeways (spanning five states) … densely populated urban areas with
//! tall buildings and open rural areas with minimal obstructions …
//! straight and curved roads". The tour below strings the synthetic
//! corridor's cities together with interstates, enters each major city for
//! an urban loop, approaches over arterials, and adds a deep-rural
//! excursion across State E; a partial return leg pushes the total past
//! the paper's 3,800 km.

use leo_geo::places::{PlaceCategory, PlaceDb};
use leo_geo::point::GeoPoint;
use leo_geo::route::{Route, RouteBuilder};
use leo_geo::speed::RoadClass;

/// City stops of the outbound tour, in visiting order.
const TOUR_STOPS: [&str; 8] = [
    "Lakeport",
    "Graniteville",
    "Brewton",
    "Harbor City",
    "Lakeshore",
    "Des Plaines City",
    "Sioux Landing",
    "Rapid Bluffs",
];

/// Builds the grand-tour route over the given place database.
///
/// `scale` in `(0, 1]` truncates the tour proportionally (1.0 = the full
/// >3,800 km campaign; small values make unit tests fast).
pub fn grand_tour(places: &PlaceDb, scale: f64) -> Route {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let stops: Vec<GeoPoint> = TOUR_STOPS
        .iter()
        .map(|name| {
            places
                .places()
                .iter()
                .find(|p| p.name == *name)
                .unwrap_or_else(|| panic!("tour stop {name} missing from place db"))
                .location
        })
        .collect();

    let mut b = RouteBuilder::new(stops[0]);
    // Urban loop in the starting city.
    b = urban_loop(b, stops[0]);
    for w in stops.windows(2) {
        let (from, to) = (w[0], w[1]);
        let bearing = from.bearing_deg(&to);
        let dist = from.distance_km(&to);
        // Arterial pull-out of the city, interstate run, arterial approach.
        let arterial = (dist * 0.06).clamp(4.0, 18.0);
        b = b.leg_heading(bearing, arterial, RoadClass::Arterial);
        // Interstates are not perfectly straight: split the run into
        // gently dog-legged segments ("straight and curved roads"), and
        // mix in state-highway and arterial stretches so rural driving
        // covers the full speed range ("we drive at varying speeds in
        // various areas", §3.3) — without this, every rural test would
        // land in the 90–100 km/h bucket of Figure 6.
        let run = dist - 2.0 * arterial;
        b = b.leg_heading(bearing - 6.0, run * 0.30, RoadClass::Interstate);
        b = b.leg_heading(bearing + 4.0, run * 0.12, RoadClass::Highway);
        b = b.leg_heading(bearing + 9.0, run * 0.25, RoadClass::Interstate);
        b = b.leg_heading(bearing - 3.0, run * 0.08, RoadClass::Arterial);
        let here = last_point(&b);
        let correct = here.bearing_deg(&to);
        let remaining = here.distance_km(&to) - arterial;
        b = b.leg_heading(correct, (remaining * 0.85).max(1.0), RoadClass::Interstate);
        b = b.leg_heading(correct, (remaining * 0.15).max(0.5), RoadClass::Highway);
        b = b.leg_to(to, RoadClass::Arterial);
        // Urban loop at each major-city stop.
        if is_major(places, &to) {
            b = urban_loop(b, to);
        }
    }

    // Deep-rural excursion past Wall Flats (State E's emptiest stretch),
    // then a highway return to Sioux Landing.
    b = b.leg_heading(95.0, 80.0, RoadClass::Highway);
    b = b.leg_heading(110.0, 120.0, RoadClass::Highway);
    b = b.leg_heading(85.0, 160.0, RoadClass::Interstate);

    // Return leg: straight interstates back east along the corridor.
    let return_stops = ["Sioux Landing", "Des Plaines City", "Lakeshore", "Lakeport"];
    for name in return_stops {
        let to = places
            .places()
            .iter()
            .find(|p| p.name == name)
            .expect("return stop exists")
            .location;
        let here = last_point(&b);
        if here.distance_km(&to) > 5.0 {
            b = b.leg_to(to, RoadClass::Interstate);
        }
    }

    let full = b.build();
    if scale >= 1.0 {
        return full;
    }
    truncate(full, scale)
}

fn last_point(b: &RouteBuilder) -> GeoPoint {
    // RouteBuilder has no public accessor for the running end; rebuild a
    // clone to query it. Cheap relative to route sizes here.
    b.clone()
        .build()
        .waypoints()
        .last()
        .copied()
        .expect("route has points")
}

fn is_major(places: &PlaceDb, p: &GeoPoint) -> bool {
    places
        .nearest(p)
        .map(|(pl, d)| d < 2.0 && pl.category == PlaceCategory::MajorCity)
        .unwrap_or(false)
}

/// A ~22 km urban loop around a city centre on local streets.
fn urban_loop(mut b: RouteBuilder, center: GeoPoint) -> RouteBuilder {
    let _ = center;
    for (bearing, km) in [
        (0.0, 3.0),
        (90.0, 4.0),
        (180.0, 5.0),
        (270.0, 4.0),
        (0.0, 2.0),
        (45.0, 4.0),
    ] {
        b = b.leg_heading(bearing, km, RoadClass::Local);
    }
    b
}

/// Truncates a route to `scale` of its length, preserving leg structure.
fn truncate(route: Route, scale: f64) -> Route {
    let target_km = route.length_km() * scale;
    let mut b = RouteBuilder::new(route.start());
    let mut acc = 0.0;
    let mut prev = route.start();
    // Re-walk the route sampling every ~2 km to preserve road classes.
    let n = (route.length_km() / 2.0).ceil() as usize + 1;
    for s in route.sample_evenly(n.max(2)) {
        if s.travelled_km > target_km {
            break;
        }
        if s.travelled_km > acc {
            b = b.leg_to(s.position, s.road);
            acc = s.travelled_km;
            prev = s.position;
        }
    }
    let _ = prev;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::area::{AreaClassifier, AreaType};

    #[test]
    fn full_tour_exceeds_3800_km() {
        let places = PlaceDb::five_state_corridor();
        let tour = grand_tour(&places, 1.0);
        assert!(
            tour.length_km() > 3800.0,
            "tour is only {} km",
            tour.length_km()
        );
        assert!(tour.length_km() < 6500.0, "tour absurdly long");
    }

    #[test]
    fn scaled_tour_is_proportional() {
        let places = PlaceDb::five_state_corridor();
        let full = grand_tour(&places, 1.0).length_km();
        let tenth = grand_tour(&places, 0.1).length_km();
        assert!(
            (tenth / full - 0.1).abs() < 0.03,
            "tenth {} of full {}",
            tenth,
            full
        );
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        let places = PlaceDb::five_state_corridor();
        let _ = grand_tour(&places, 0.0);
    }

    #[test]
    fn tour_mixes_all_area_types_near_paper_proportions() {
        // §5.1: urban 29.78 %, suburban 34.30 %, rural 35.91 %. Drive-time
        // proportions also depend on speeds (slow urban loops), so the
        // distance-based proportions here just need to be in the right
        // regime with every type well represented.
        let places = PlaceDb::five_state_corridor();
        let tour = grand_tour(&places, 1.0);
        let classifier = AreaClassifier::new(places);
        let pts: Vec<_> = tour
            .sample_evenly(2000)
            .into_iter()
            .map(|s| s.position)
            .collect();
        let (u, s, r) = classifier.proportions(&pts);
        assert!(u > 0.05, "urban share {u}");
        assert!(s > 0.15, "suburban share {s}");
        assert!(r > 0.25, "rural share {r}");
        assert_eq!(
            [u, s, r].iter().sum::<f64>(),
            1.0,
            "proportions must partition"
        );
        let _ = AreaType::ALL;
    }

    #[test]
    fn tour_uses_all_road_classes() {
        let places = PlaceDb::five_state_corridor();
        let tour = grand_tour(&places, 1.0);
        let samples = tour.sample_evenly(3000);
        for rc in [
            RoadClass::Interstate,
            RoadClass::Highway,
            RoadClass::Arterial,
            RoadClass::Local,
        ] {
            assert!(
                samples.iter().any(|s| s.road == rc),
                "road class {rc:?} missing from tour"
            );
        }
    }
}
