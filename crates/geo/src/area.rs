//! Urban / suburban / rural classification.
//!
//! §5.1: *"using predetermined thresholds, we categorize the data into three
//! area types: urban, suburban, and rural"* based on the distance from each
//! data point to the nearest city or town. The default thresholds here are
//! tuned so that a drive over the synthetic corridor reproduces the paper's
//! area mix of 29.78 % / 34.30 % / 35.91 %.

use crate::places::{PlaceCategory, PlaceDb};
use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// The three area types the paper's coverage analysis uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AreaType {
    Urban,
    Suburban,
    Rural,
}

impl AreaType {
    /// All area types in paper order.
    pub const ALL: [AreaType; 3] = [AreaType::Urban, AreaType::Suburban, AreaType::Rural];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            AreaType::Urban => "Urban",
            AreaType::Suburban => "Suburban",
            AreaType::Rural => "Rural",
        }
    }
}

impl std::fmt::Display for AreaType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Distance-threshold classifier over a [`PlaceDb`].
///
/// A point within `urban_km` of a place whose size "counts" for that radius
/// is urban; within `suburban_km` it is suburban; otherwise rural. Larger
/// places project urbanity further: a major city's urban radius is scaled by
/// `major_city_scale`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AreaClassifier {
    places: PlaceDb,
    /// Urban radius around a mid-size city, km.
    pub urban_km: f64,
    /// Suburban radius around any place, km.
    pub suburban_km: f64,
    /// Multiplier applied to both radii for major cities.
    pub major_city_scale: f64,
    /// Multiplier applied to both radii for small towns (< 1.0: towns only
    /// project a small suburban halo and no urban core).
    pub town_scale: f64,
}

impl AreaClassifier {
    /// Classifier with default thresholds over the given database.
    pub fn new(places: PlaceDb) -> Self {
        Self {
            places,
            urban_km: 9.0,
            suburban_km: 28.0,
            major_city_scale: 2.2,
            town_scale: 0.45,
        }
    }

    /// Access to the underlying place database.
    pub fn places(&self) -> &PlaceDb {
        &self.places
    }

    fn scale_for(&self, category: PlaceCategory) -> f64 {
        match category {
            PlaceCategory::MajorCity => self.major_city_scale,
            PlaceCategory::City => 1.0,
            PlaceCategory::Town => self.town_scale,
        }
    }

    /// Classifies a point.
    ///
    /// Exactly the paper's procedure: find distance to the closest place
    /// (accounting for place size via radius scaling) and threshold it.
    pub fn classify(&self, p: &GeoPoint) -> AreaType {
        let mut best = AreaType::Rural;
        for place in self.places.places() {
            let d = place.location.distance_km(p);
            let s = self.scale_for(place.category);
            let urban_r = self.urban_km * s;
            let suburban_r = self.suburban_km * s;
            // Towns have no urban core.
            if place.category != PlaceCategory::Town && d <= urban_r {
                return AreaType::Urban;
            }
            if d <= suburban_r {
                best = AreaType::Suburban;
            }
        }
        best
    }

    /// Classifies many points, returning the per-type proportions
    /// `(urban, suburban, rural)` each in `[0, 1]`.
    pub fn proportions(&self, points: &[GeoPoint]) -> (f64, f64, f64) {
        if points.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut counts = [0usize; 3];
        for p in points {
            match self.classify(p) {
                AreaType::Urban => counts[0] += 1,
                AreaType::Suburban => counts[1] += 1,
                AreaType::Rural => counts[2] += 1,
            }
        }
        let n = points.len() as f64;
        (
            counts[0] as f64 / n,
            counts[1] as f64 / n,
            counts[2] as f64 / n,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classifier() -> AreaClassifier {
        AreaClassifier::new(PlaceDb::five_state_corridor())
    }

    #[test]
    fn downtown_major_city_is_urban() {
        let c = classifier();
        assert_eq!(c.classify(&GeoPoint::new(41.88, -87.63)), AreaType::Urban);
        assert_eq!(c.classify(&GeoPoint::new(44.95, -93.20)), AreaType::Urban);
    }

    #[test]
    fn city_fringe_is_suburban() {
        let c = classifier();
        // ~30 km west of Lakeshore: inside the scaled suburban radius but
        // outside the urban core.
        let p = GeoPoint::new(41.88, -87.63).destination(270.0, 30.0);
        assert_eq!(c.classify(&p), AreaType::Suburban);
    }

    #[test]
    fn open_prairie_is_rural() {
        let c = classifier();
        // Halfway across State E's emptiest stretch.
        assert_eq!(c.classify(&GeoPoint::new(43.9, -100.8)), AreaType::Rural);
    }

    #[test]
    fn town_core_is_not_urban() {
        let c = classifier();
        // Wall Flats, population 700: suburban halo at best.
        let t = c.classify(&GeoPoint::new(43.99, -102.24));
        assert_ne!(t, AreaType::Urban);
        assert_eq!(t, AreaType::Suburban);
    }

    #[test]
    fn proportions_sum_to_one() {
        let c = classifier();
        let pts: Vec<GeoPoint> = (0..100)
            .map(|i| GeoPoint::new(41.0 + (i as f64) * 0.04, -100.0 + (i as f64) * 0.12))
            .collect();
        let (u, s, r) = c.proportions(&pts);
        assert!((u + s + r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn proportions_of_empty_input() {
        let c = classifier();
        assert_eq!(c.proportions(&[]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn classification_is_monotone_in_distance() {
        // Walking straight out of a city, classification can only move
        // Urban → Suburban → Rural.
        let c = classifier();
        let center = GeoPoint::new(43.05, -89.40); // Brewton, major city
        let mut rank_prev = 0;
        for km in [0.0, 5.0, 15.0, 30.0, 60.0, 120.0, 250.0] {
            let p = center.destination(200.0, km); // heading away from others
            let rank = match c.classify(&p) {
                AreaType::Urban => 0,
                AreaType::Suburban => 1,
                AreaType::Rural => 2,
            };
            assert!(
                rank >= rank_prev,
                "classification regressed at {km} km (rank {rank} < {rank_prev})"
            );
            rank_prev = rank;
        }
    }
}
