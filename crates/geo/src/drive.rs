//! Drive plans: a route plus a schedule and environmental conditions.
//!
//! §3.3: data was collected "during both daytime and nighttime" and in
//! "clear weather conditions but also rainy and snowy conditions". The paper
//! found terrain and time-of-day to have minimal impact; weather is retained
//! as a (mild) modifier that `leo-orbit` applies as rain fade.

use crate::point::GeoPoint;
use crate::route::Route;
use crate::speed::SpeedProfile;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Day or night at the time of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DayPhase {
    Day,
    Night,
}

/// Weather condition during a drive segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weather {
    Clear,
    Rain,
    Snow,
}

impl Weather {
    /// Ku-band rain-fade capacity multiplier applied to satellite links.
    ///
    /// Values are mild: the paper reports environmental conditions had
    /// limited impact on measured performance.
    pub fn satellite_capacity_factor(&self) -> f64 {
        match self {
            Weather::Clear => 1.0,
            Weather::Rain => 0.88,
            Weather::Snow => 0.92,
        }
    }

    /// Weather capacity multiplier applied to cellular links.
    ///
    /// §3.3 collected data in clear, rainy, and snowy conditions and the
    /// weather affects both network types; sub-6 GHz cellular carriers are
    /// attenuated far less than the Ku band, so these factors are milder
    /// than [`Weather::satellite_capacity_factor`].
    pub fn cellular_capacity_factor(&self) -> f64 {
        match self {
            Weather::Clear => 1.0,
            Weather::Rain => 0.93,
            Weather::Snow => 0.95,
        }
    }
}

/// One per-second sample of the drive context.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnvironmentSample {
    /// Seconds since the start of the drive.
    pub t_s: u64,
    pub position: GeoPoint,
    pub speed_kmh: f64,
    /// Heading of travel, degrees clockwise from north.
    pub heading_deg: f64,
    pub day_phase: DayPhase,
    pub weather: Weather,
    /// Cumulative distance travelled, km.
    pub travelled_km: f64,
}

/// A plannable drive: route + start hour + weather schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrivePlan {
    pub route: Route,
    /// Local start hour in `[0, 24)`.
    pub start_hour: f64,
    /// Weather for the whole drive (campaigns vary weather across drives).
    pub weather: Weather,
}

impl DrivePlan {
    /// Creates a plan with clear weather starting at 10:00.
    pub fn new(route: Route) -> Self {
        Self {
            route,
            start_hour: 10.0,
            weather: Weather::Clear,
        }
    }

    /// Sets the start hour.
    pub fn with_start_hour(mut self, hour: f64) -> Self {
        self.start_hour = hour.rem_euclid(24.0);
        self
    }

    /// Sets the weather.
    pub fn with_weather(mut self, weather: Weather) -> Self {
        self.weather = weather;
        self
    }

    /// Day phase at `t_s` seconds into the drive (day = 07:00–19:00 local).
    pub fn day_phase_at(&self, t_s: u64) -> DayPhase {
        let hour = (self.start_hour + t_s as f64 / 3600.0).rem_euclid(24.0);
        if (7.0..19.0).contains(&hour) {
            DayPhase::Day
        } else {
            DayPhase::Night
        }
    }

    /// Simulates the drive at 1 Hz until the route is exhausted, returning
    /// per-second environment samples. Deterministic given `rng`'s seed.
    ///
    /// The vehicle follows the route's road classes with a stochastic speed
    /// profile; the drive ends when the route's end is reached (or at
    /// `max_duration_s`, whichever comes first).
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        max_duration_s: u64,
    ) -> Vec<EnvironmentSample> {
        let mut samples = Vec::new();
        let mut travelled_km = 0.0;
        let mut speed = SpeedProfile::new();
        let total = self.route.length_km();
        for t_s in 0..max_duration_s {
            let sample = self.route.sample_at_km(travelled_km);
            let v = speed.step(sample.road, rng);
            samples.push(EnvironmentSample {
                t_s,
                position: sample.position,
                speed_kmh: v,
                heading_deg: sample.heading_deg,
                day_phase: self.day_phase_at(t_s),
                weather: self.weather,
                travelled_km,
            });
            travelled_km += v / 3600.0;
            if travelled_km >= total {
                break;
            }
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteBuilder;
    use crate::speed::RoadClass;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn plan() -> DrivePlan {
        let route = RouteBuilder::new(GeoPoint::new(44.0, -93.0))
            .leg_heading(90.0, 20.0, RoadClass::Interstate)
            .build();
        DrivePlan::new(route)
    }

    #[test]
    fn drive_ends_when_route_exhausted() {
        let mut rng = SmallRng::seed_from_u64(1);
        let samples = plan().simulate(&mut rng, 1_000_000);
        let last = samples.last().unwrap();
        // 20 km at ~95 km/h is ~760 s; generous bounds for ramp-up.
        assert!(samples.len() < 2000, "drive too long: {}", samples.len());
        assert!(last.travelled_km <= 20.0 + 0.1);
        assert!(last.travelled_km > 19.0);
    }

    #[test]
    fn drive_respects_max_duration() {
        let mut rng = SmallRng::seed_from_u64(1);
        let samples = plan().simulate(&mut rng, 10);
        assert_eq!(samples.len(), 10);
    }

    #[test]
    fn travelled_distance_is_monotone() {
        let mut rng = SmallRng::seed_from_u64(5);
        let samples = plan().simulate(&mut rng, 2000);
        for w in samples.windows(2) {
            assert!(w[1].travelled_km >= w[0].travelled_km);
        }
    }

    #[test]
    fn day_phase_transitions() {
        let p = plan().with_start_hour(18.5);
        assert_eq!(p.day_phase_at(0), DayPhase::Day);
        assert_eq!(p.day_phase_at(3600), DayPhase::Night); // 19:30
    }

    #[test]
    fn weather_factors_ordered() {
        assert!(Weather::Clear.satellite_capacity_factor() == 1.0);
        assert!(
            Weather::Rain.satellite_capacity_factor() < Weather::Snow.satellite_capacity_factor()
        );
    }

    #[test]
    fn simulate_is_deterministic() {
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            plan()
                .simulate(&mut rng, 100)
                .iter()
                .map(|s| s.speed_kmh)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }
}
