//! Geodesy, driving routes, a synthetic place database, and area-type
//! classification.
//!
//! This crate provides the geographic substrate for the `leo-cell`
//! reproduction of *LEO Satellite vs. Cellular Networks* (CoNEXT Companion
//! '23). The paper's measurement campaign drove more than 3,800 km across
//! five US states; since the original GPS tracks are not published, this
//! crate supplies:
//!
//! * [`GeoPoint`] — WGS-84 latitude/longitude with great-circle math and
//!   Earth-centred Earth-fixed (ECEF) conversion (used by `leo-orbit` for
//!   satellite visibility),
//! * [`Route`] — polyline routes with arc-length parameterisation, so a
//!   vehicle position can be queried at any travelled distance,
//! * [`places`] — a synthetic five-state database of cities and towns with
//!   populations, standing in for the list of places the authors compiled,
//! * [`AreaType`] — the paper's urban / suburban / rural classification,
//!   computed exactly as §5.1 describes: distance to the nearest place,
//!   thresholded,
//! * [`DrivePlan`] — a schedulable drive: route, speed profile, start time,
//!   and environmental conditions (day/night, weather).
//!
//! Everything here is deterministic: any randomness used to synthesise
//! routes is seeded by the caller.

pub mod area;
pub mod drive;
pub mod places;
pub mod point;
pub mod route;
pub mod speed;

pub use area::{AreaClassifier, AreaType};
pub use drive::{DayPhase, DrivePlan, EnvironmentSample, Weather};
pub use places::{Place, PlaceCategory, PlaceDb};
pub use point::{Ecef, GeoPoint, EARTH_RADIUS_KM};
pub use route::{Route, RouteBuilder, RouteSample};
pub use speed::{RoadClass, SpeedProfile};
