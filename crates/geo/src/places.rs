//! A synthetic five-state place database.
//!
//! §5.1 of the paper: *"we compile a list of all cities and towns we passed
//! through, calculate the distances from each data point to these locations,
//! and select the smallest distance"*. The authors' exact list is not
//! published; this module provides a deterministic synthetic equivalent —
//! five states along a Midwest-to-West corridor, each with a major city,
//! satellite cities, and small towns spaced along the connecting freeways.
//!
//! The coordinates are fictional-but-plausible: they lie in the continental
//! US band (lat 33–47°N) so satellite-visibility geometry against the
//! Starlink 53°-inclination shell behaves like the real campaign.

use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// Broad size class of a populated place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlaceCategory {
    /// Major metropolitan core (population ≥ 300k).
    MajorCity,
    /// Mid-size city (50k–300k).
    City,
    /// Small town (< 50k).
    Town,
}

/// A populated place used for area classification and cellular deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Place {
    pub name: String,
    pub state: String,
    pub location: GeoPoint,
    pub population: u32,
    pub category: PlaceCategory,
}

/// The place database: a flat list with nearest-neighbour queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlaceDb {
    places: Vec<Place>,
}

impl PlaceDb {
    /// Builds a database from an explicit list.
    pub fn from_places(places: Vec<Place>) -> Self {
        Self { places }
    }

    /// The synthetic five-state corridor used by the default campaign.
    ///
    /// States are laid out west-to-east roughly along the 41–45°N band with
    /// a freeway spine connecting the major cities, mirroring the paper's
    /// "major cities and interstate freeways (spanning five states)".
    pub fn five_state_corridor() -> Self {
        let mut places = Vec::new();
        let mut add = |name: &str, state: &str, lat: f64, lon: f64, pop: u32| {
            let category = if pop >= 300_000 {
                PlaceCategory::MajorCity
            } else if pop >= 50_000 {
                PlaceCategory::City
            } else {
                PlaceCategory::Town
            };
            places.push(Place {
                name: name.to_string(),
                state: state.to_string(),
                location: GeoPoint::new(lat, lon),
                population: pop,
                category,
            });
        };

        // State A — "Minnesota-like": one metro, ring cities, river towns.
        add("Lakeport", "A", 44.95, -93.20, 1_250_000);
        add("Northfield Junction", "A", 44.45, -93.15, 85_000);
        add("Cedar Falls", "A", 44.70, -92.60, 42_000);
        add("Pinebrook", "A", 45.30, -93.80, 28_000);
        add("Graniteville", "A", 45.55, -94.15, 68_000);
        add("Elk Prairie", "A", 44.10, -93.95, 11_000);

        // State B — "Wisconsin-like": second metro and dairy towns.
        add("Brewton", "B", 43.05, -89.40, 650_000);
        add("Harbor City", "B", 43.04, -87.95, 960_000);
        add("Sauk Hollow", "B", 43.45, -89.75, 9_500);
        add("Fox Rapids", "B", 44.25, -88.40, 74_000);
        add("Juneau Flats", "B", 43.30, -88.70, 16_000);

        // State C — "Illinois-like": the biggest metro on the corridor.
        add("Lakeshore", "C", 41.88, -87.63, 2_700_000);
        add("Auroria", "C", 41.76, -88.32, 200_000);
        add("Prairie Center", "C", 40.70, -89.60, 115_000);
        add("Galena Bluff", "C", 42.42, -90.43, 3_500);
        add("Kankakee Forks", "C", 41.12, -87.86, 26_000);

        // State D — "Iowa-like": farm country with sparse towns.
        add("Des Plaines City", "D", 41.59, -93.62, 215_000);
        add("Cornville", "D", 41.68, -91.53, 75_000);
        add("Osceola Bend", "D", 41.03, -93.77, 4_800);
        add("Storm Ridge", "D", 42.64, -95.20, 10_500);
        add("Amana Crossing", "D", 41.80, -91.87, 1_700);

        // State E — "South Dakota-like": long empty interstates.
        add("Sioux Landing", "E", 43.54, -96.73, 195_000);
        add("Mitchell Plain", "E", 43.71, -98.02, 15_600);
        add("Chamberlain Gap", "E", 43.81, -99.33, 2_400);
        add("Rapid Bluffs", "E", 44.08, -103.23, 76_000);
        add("Wall Flats", "E", 43.99, -102.24, 700);

        Self { places }
    }

    /// All places.
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// Number of places.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// Distance in km from `p` to the nearest place, with that place.
    ///
    /// Returns `None` when the database is empty.
    pub fn nearest(&self, p: &GeoPoint) -> Option<(&Place, f64)> {
        self.places
            .iter()
            .map(|pl| (pl, pl.location.distance_km(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
    }

    /// Distance in km from `p` to the nearest place of a category at least
    /// as large as `min_category` (MajorCity > City > Town).
    pub fn nearest_of_at_least(
        &self,
        p: &GeoPoint,
        min_category: PlaceCategory,
    ) -> Option<(&Place, f64)> {
        let rank = |c: PlaceCategory| match c {
            PlaceCategory::MajorCity => 2,
            PlaceCategory::City => 1,
            PlaceCategory::Town => 0,
        };
        self.places
            .iter()
            .filter(|pl| rank(pl.category) >= rank(min_category))
            .map(|pl| (pl, pl.location.distance_km(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
    }

    /// Places in the given state.
    pub fn in_state(&self, state: &str) -> Vec<&Place> {
        self.places.iter().filter(|p| p.state == state).collect()
    }

    /// Number of distinct states in the database.
    pub fn state_count(&self) -> usize {
        let mut states: Vec<&str> = self.places.iter().map(|p| p.state.as_str()).collect();
        states.sort_unstable();
        states.dedup();
        states.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corridor_spans_five_states() {
        let db = PlaceDb::five_state_corridor();
        assert_eq!(db.state_count(), 5, "paper spans five states");
        assert!(db.len() >= 20);
    }

    #[test]
    fn corridor_has_major_cities_and_towns() {
        let db = PlaceDb::five_state_corridor();
        let majors = db
            .places()
            .iter()
            .filter(|p| p.category == PlaceCategory::MajorCity)
            .count();
        let towns = db
            .places()
            .iter()
            .filter(|p| p.category == PlaceCategory::Town)
            .count();
        assert!(majors >= 4);
        assert!(towns >= 6);
    }

    #[test]
    fn nearest_finds_lakeshore_from_downtown() {
        let db = PlaceDb::five_state_corridor();
        let (place, d) = db.nearest(&GeoPoint::new(41.9, -87.65)).unwrap();
        assert_eq!(place.name, "Lakeshore");
        assert!(d < 5.0);
    }

    #[test]
    fn nearest_of_at_least_skips_towns() {
        let db = PlaceDb::five_state_corridor();
        // Near Wall Flats (a 700-person town), the nearest "City+" place is
        // Rapid Bluffs, much further away.
        let p = GeoPoint::new(43.99, -102.24);
        let (any, d_any) = db.nearest(&p).unwrap();
        let (city, d_city) = db.nearest_of_at_least(&p, PlaceCategory::City).unwrap();
        assert_eq!(any.name, "Wall Flats");
        assert_eq!(city.name, "Rapid Bluffs");
        assert!(d_city > d_any);
    }

    #[test]
    fn empty_db_returns_none() {
        let db = PlaceDb::from_places(vec![]);
        assert!(db.nearest(&GeoPoint::new(0.0, 0.0)).is_none());
        assert!(db.is_empty());
    }

    #[test]
    fn categories_follow_population() {
        let db = PlaceDb::five_state_corridor();
        for p in db.places() {
            match p.category {
                PlaceCategory::MajorCity => assert!(p.population >= 300_000),
                PlaceCategory::City => assert!((50_000..300_000).contains(&p.population)),
                PlaceCategory::Town => assert!(p.population < 50_000),
            }
        }
    }
}
