//! WGS-84 points, great-circle math, and ECEF conversion.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (spherical approximation, sufficient for
/// route geometry and satellite elevation at the fidelity this study needs).
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A point on the Earth's surface in WGS-84 latitude/longitude (degrees).
///
/// Latitude is positive north, longitude positive east.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, in `[-90, 90]`.
    pub lat_deg: f64,
    /// Longitude in degrees, in `[-180, 180]`.
    pub lon_deg: f64,
}

/// An Earth-centred, Earth-fixed Cartesian position in kilometres.
///
/// The +Z axis points through the north pole, +X through the intersection of
/// the equator and the prime meridian.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ecef {
    pub x_km: f64,
    pub y_km: f64,
    pub z_km: f64,
}

impl GeoPoint {
    /// Creates a point, normalising longitude into `[-180, 180]` and
    /// clamping latitude into `[-90, 90]`.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        let lat = lat_deg.clamp(-90.0, 90.0);
        let mut lon = (lon_deg + 180.0) % 360.0;
        if lon < 0.0 {
            lon += 360.0;
        }
        Self {
            lat_deg: lat,
            lon_deg: lon - 180.0,
        }
    }

    /// Great-circle (haversine) distance to `other`, in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Initial bearing from this point towards `other`, in degrees clockwise
    /// from north, in `[0, 360)`.
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        let b = y.atan2(x).to_degrees();
        (b + 360.0) % 360.0
    }

    /// The point reached by travelling `distance_km` along the great circle
    /// with the given initial `bearing_deg`.
    pub fn destination(&self, bearing_deg: f64, distance_km: f64) -> GeoPoint {
        let delta = distance_km / EARTH_RADIUS_KM;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat_deg.to_radians();
        let lon1 = self.lon_deg.to_radians();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        GeoPoint::new(lat2.to_degrees(), lon2.to_degrees())
    }

    /// Linear interpolation between two points, `t ∈ [0, 1]`.
    ///
    /// Uses the great-circle path for correctness over long segments.
    pub fn interpolate(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        let t = t.clamp(0.0, 1.0);
        let d = self.distance_km(other);
        if d < 1e-9 {
            return *self;
        }
        let bearing = self.bearing_deg(other);
        self.destination(bearing, d * t)
    }

    /// Converts to ECEF at the given altitude above the spherical Earth
    /// surface, in kilometres.
    pub fn to_ecef(&self, altitude_km: f64) -> Ecef {
        let r = EARTH_RADIUS_KM + altitude_km;
        let lat = self.lat_deg.to_radians();
        let lon = self.lon_deg.to_radians();
        Ecef {
            x_km: r * lat.cos() * lon.cos(),
            y_km: r * lat.cos() * lon.sin(),
            z_km: r * lat.sin(),
        }
    }
}

impl Ecef {
    /// Euclidean distance to `other`, in kilometres.
    pub fn distance_km(&self, other: &Ecef) -> f64 {
        let dx = self.x_km - other.x_km;
        let dy = self.y_km - other.y_km;
        let dz = self.z_km - other.z_km;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Vector magnitude (distance from the Earth's centre), in kilometres.
    pub fn norm_km(&self) -> f64 {
        (self.x_km * self.x_km + self.y_km * self.y_km + self.z_km * self.z_km).sqrt()
    }

    /// Dot product with `other` (km²).
    pub fn dot(&self, other: &Ecef) -> f64 {
        self.x_km * other.x_km + self.y_km * other.y_km + self.z_km * other.z_km
    }

    /// Component-wise difference `self - other`.
    pub fn sub(&self, other: &Ecef) -> Ecef {
        Ecef {
            x_km: self.x_km - other.x_km,
            y_km: self.y_km - other.y_km,
            z_km: self.z_km - other.z_km,
        }
    }

    /// Converts back to a surface point and altitude.
    pub fn to_geo(&self) -> (GeoPoint, f64) {
        let r = self.norm_km();
        let lat = (self.z_km / r).asin().to_degrees();
        let lon = self.y_km.atan2(self.x_km).to_degrees();
        (GeoPoint::new(lat, lon), r - EARTH_RADIUS_KM)
    }

    /// Elevation angle of `target` as seen from this surface position, in
    /// degrees above the local horizon.
    ///
    /// `self` is assumed to be at or near the Earth's surface; the local
    /// vertical is the direction from the Earth's centre through `self`.
    pub fn elevation_deg_to(&self, target: &Ecef) -> f64 {
        let los = target.sub(self);
        let range = los.norm_km();
        if range < 1e-9 {
            return 90.0;
        }
        let up_norm = self.norm_km();
        // sin(elevation) = (los · up) / (|los| |up|)
        let sin_el = self.dot(&los) / (up_norm * range);
        sin_el.clamp(-1.0, 1.0).asin().to_degrees()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn distance_zero_for_same_point() {
        let p = GeoPoint::new(44.98, -93.27);
        assert_close(p.distance_km(&p), 0.0, 1e-9);
    }

    #[test]
    fn distance_msp_to_chicago_reasonable() {
        // Minneapolis to Chicago is roughly 570 km great-circle.
        let msp = GeoPoint::new(44.98, -93.27);
        let chi = GeoPoint::new(41.88, -87.63);
        let d = msp.distance_km(&chi);
        assert!((550.0..600.0).contains(&d), "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(10.0, 20.0);
        let b = GeoPoint::new(-35.0, 140.0);
        assert_close(a.distance_km(&b), b.distance_km(&a), 1e-9);
    }

    #[test]
    fn equator_degree_of_longitude() {
        // One degree of longitude at the equator ≈ 111.2 km.
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 1.0);
        assert_close(a.distance_km(&b), 111.19, 0.2);
    }

    #[test]
    fn bearing_due_north_east() {
        let a = GeoPoint::new(0.0, 0.0);
        assert_close(a.bearing_deg(&GeoPoint::new(1.0, 0.0)), 0.0, 1e-6);
        assert_close(a.bearing_deg(&GeoPoint::new(0.0, 1.0)), 90.0, 1e-6);
    }

    #[test]
    fn destination_round_trips_distance() {
        let a = GeoPoint::new(45.0, -93.0);
        let b = a.destination(73.0, 250.0);
        assert_close(a.distance_km(&b), 250.0, 1e-6);
    }

    #[test]
    fn interpolation_endpoints() {
        let a = GeoPoint::new(45.0, -93.0);
        let b = GeoPoint::new(41.88, -87.63);
        let p0 = a.interpolate(&b, 0.0);
        let p1 = a.interpolate(&b, 1.0);
        assert_close(p0.distance_km(&a), 0.0, 1e-6);
        assert_close(p1.distance_km(&b), 0.0, 1e-6);
    }

    #[test]
    fn interpolation_midpoint_is_equidistant() {
        let a = GeoPoint::new(45.0, -93.0);
        let b = GeoPoint::new(41.88, -87.63);
        let m = a.interpolate(&b, 0.5);
        assert_close(m.distance_km(&a), m.distance_km(&b), 1e-6);
    }

    #[test]
    fn ecef_surface_norm() {
        let p = GeoPoint::new(37.0, -122.0).to_ecef(0.0);
        assert_close(p.norm_km(), EARTH_RADIUS_KM, 1e-9);
    }

    #[test]
    fn ecef_altitude() {
        let p = GeoPoint::new(0.0, 0.0).to_ecef(550.0);
        assert_close(p.norm_km(), EARTH_RADIUS_KM + 550.0, 1e-9);
    }

    #[test]
    fn ecef_round_trip() {
        let g = GeoPoint::new(33.5, -111.9);
        let (back, alt) = g.to_ecef(12.3).to_geo();
        assert_close(back.lat_deg, g.lat_deg, 1e-9);
        assert_close(back.lon_deg, g.lon_deg, 1e-9);
        assert_close(alt, 12.3, 1e-9);
    }

    #[test]
    fn elevation_straight_up_is_90() {
        let ground = GeoPoint::new(45.0, -93.0);
        let e = ground.to_ecef(0.0).elevation_deg_to(&ground.to_ecef(550.0));
        assert_close(e, 90.0, 1e-6);
    }

    #[test]
    fn elevation_far_satellite_is_below_horizon() {
        // A satellite on the opposite side of the Earth is not visible.
        let ground = GeoPoint::new(0.0, 0.0).to_ecef(0.0);
        let sat = GeoPoint::new(0.0, 180.0).to_ecef(550.0);
        assert!(ground.elevation_deg_to(&sat) < 0.0);
    }

    #[test]
    fn longitude_normalisation() {
        let p = GeoPoint::new(10.0, 190.0);
        assert_close(p.lon_deg, -170.0, 1e-9);
        let q = GeoPoint::new(10.0, -190.0);
        assert_close(q.lon_deg, 170.0, 1e-9);
    }
}
