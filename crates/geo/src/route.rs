//! Polyline driving routes with arc-length parameterisation.

use crate::point::GeoPoint;
use crate::speed::RoadClass;
use serde::{Deserialize, Serialize};

/// One leg of a route: the segment from the previous waypoint to `end`,
/// tagged with a road class (which determines the speed limit).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RouteLeg {
    pub end: GeoPoint,
    pub road: RoadClass,
}

/// A driving route: an ordered polyline of waypoints with per-leg road
/// classes, parameterised by cumulative travelled distance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Route {
    start: GeoPoint,
    legs: Vec<RouteLeg>,
    /// Cumulative distance at the end of each leg (km). Same length as `legs`.
    cumulative_km: Vec<f64>,
}

/// A sampled position along a route.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RouteSample {
    pub position: GeoPoint,
    /// Distance travelled from the start, in kilometres.
    pub travelled_km: f64,
    /// Road class of the leg this sample falls on.
    pub road: RoadClass,
    /// Heading of travel in degrees clockwise from north.
    pub heading_deg: f64,
}

impl Route {
    /// Total route length in kilometres.
    pub fn length_km(&self) -> f64 {
        self.cumulative_km.last().copied().unwrap_or(0.0)
    }

    /// The starting waypoint.
    pub fn start(&self) -> GeoPoint {
        self.start
    }

    /// Number of legs.
    pub fn leg_count(&self) -> usize {
        self.legs.len()
    }

    /// All waypoints including the start.
    pub fn waypoints(&self) -> Vec<GeoPoint> {
        let mut pts = Vec::with_capacity(self.legs.len() + 1);
        pts.push(self.start);
        pts.extend(self.legs.iter().map(|l| l.end));
        pts
    }

    /// Samples the route at the given travelled distance.
    ///
    /// Distances beyond the end clamp to the final point; negative distances
    /// clamp to the start.
    pub fn sample_at_km(&self, km: f64) -> RouteSample {
        if self.legs.is_empty() {
            return RouteSample {
                position: self.start,
                travelled_km: 0.0,
                road: RoadClass::Local,
                heading_deg: 0.0,
            };
        }
        let total = self.length_km();
        let km = km.clamp(0.0, total);
        // Find the leg containing this distance (first cumulative ≥ km).
        let idx = match self
            .cumulative_km
            .binary_search_by(|c| c.partial_cmp(&km).expect("route distances are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.legs.len() - 1),
        };
        let leg_start_km = if idx == 0 {
            0.0
        } else {
            self.cumulative_km[idx - 1]
        };
        let leg_len = (self.cumulative_km[idx] - leg_start_km).max(1e-12);
        let t = ((km - leg_start_km) / leg_len).clamp(0.0, 1.0);
        let from = if idx == 0 {
            self.start
        } else {
            self.legs[idx - 1].end
        };
        let to = self.legs[idx].end;
        RouteSample {
            position: from.interpolate(&to, t),
            travelled_km: km,
            road: self.legs[idx].road,
            heading_deg: from.bearing_deg(&to),
        }
    }

    /// Samples the route at evenly spaced distances (including both
    /// endpoints), returning `n` samples. `n` must be at least 2.
    pub fn sample_evenly(&self, n: usize) -> Vec<RouteSample> {
        assert!(n >= 2, "need at least two samples");
        let total = self.length_km();
        (0..n)
            .map(|i| self.sample_at_km(total * i as f64 / (n - 1) as f64))
            .collect()
    }
}

/// Incremental builder for [`Route`].
#[derive(Debug, Clone)]
pub struct RouteBuilder {
    start: GeoPoint,
    legs: Vec<RouteLeg>,
}

impl RouteBuilder {
    /// Starts a route at the given point.
    pub fn new(start: GeoPoint) -> Self {
        Self {
            start,
            legs: Vec::new(),
        }
    }

    /// Appends a waypoint reached over the given road class.
    pub fn leg_to(mut self, end: GeoPoint, road: RoadClass) -> Self {
        self.legs.push(RouteLeg { end, road });
        self
    }

    /// Appends a leg by heading and distance — convenient for synthesising
    /// routes without a map.
    pub fn leg_heading(self, bearing_deg: f64, distance_km: f64, road: RoadClass) -> Self {
        let from = self.last_point();
        let end = from.destination(bearing_deg, distance_km);
        self.leg_to(end, road)
    }

    fn last_point(&self) -> GeoPoint {
        self.legs.last().map(|l| l.end).unwrap_or(self.start)
    }

    /// Finalises the route, computing the cumulative distance table.
    pub fn build(self) -> Route {
        let mut cumulative = Vec::with_capacity(self.legs.len());
        let mut acc = 0.0;
        let mut prev = self.start;
        for leg in &self.legs {
            acc += prev.distance_km(&leg.end);
            cumulative.push(acc);
            prev = leg.end;
        }
        Route {
            start: self.start,
            legs: self.legs,
            cumulative_km: cumulative,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_route() -> Route {
        RouteBuilder::new(GeoPoint::new(45.0, -93.0))
            .leg_heading(90.0, 100.0, RoadClass::Interstate)
            .leg_heading(90.0, 50.0, RoadClass::Arterial)
            .build()
    }

    #[test]
    fn length_is_sum_of_legs() {
        let r = straight_route();
        assert!((r.length_km() - 150.0).abs() < 1e-6, "{}", r.length_km());
    }

    #[test]
    fn sample_clamps_to_ends() {
        let r = straight_route();
        let before = r.sample_at_km(-10.0);
        let after = r.sample_at_km(1e9);
        assert!(before.position.distance_km(&r.start()) < 1e-6);
        assert!((after.travelled_km - r.length_km()).abs() < 1e-9);
    }

    #[test]
    fn sample_road_class_transitions() {
        let r = straight_route();
        assert_eq!(r.sample_at_km(50.0).road, RoadClass::Interstate);
        assert_eq!(r.sample_at_km(120.0).road, RoadClass::Arterial);
    }

    #[test]
    fn sample_distance_matches_geometry() {
        let r = straight_route();
        let s = r.sample_at_km(75.0);
        let d = r.start().distance_km(&s.position);
        // A great-circle polyline with a single heading: travelled distance
        // equals straight-line distance to within interpolation error.
        assert!((d - 75.0).abs() < 0.5, "got {d}");
    }

    #[test]
    fn even_sampling_monotone() {
        let r = straight_route();
        let samples = r.sample_evenly(31);
        assert_eq!(samples.len(), 31);
        for w in samples.windows(2) {
            assert!(w[1].travelled_km >= w[0].travelled_km);
        }
    }

    #[test]
    fn empty_route_samples_start() {
        let r = RouteBuilder::new(GeoPoint::new(1.0, 2.0)).build();
        assert_eq!(r.length_km(), 0.0);
        let s = r.sample_at_km(5.0);
        assert!(s.position.distance_km(&GeoPoint::new(1.0, 2.0)) < 1e-9);
    }

    #[test]
    fn waypoints_include_start_and_ends() {
        let r = straight_route();
        let wps = r.waypoints();
        assert_eq!(wps.len(), 3);
        assert!(wps[0].distance_km(&r.start()) < 1e-9);
    }
}
