//! Road classes, speed limits, and stochastic speed profiles.
//!
//! The paper's campaign drove "at varying speeds in various areas", capped
//! at 100 km/h by speed limits (§3.3), with more than 90 % of urban data
//! collected below 50 km/h (§4.2). This module reproduces that speed
//! structure.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Classes of road the drive traverses; each implies a speed-limit band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// Interstate freeway: 90–100 km/h cruising.
    Interstate,
    /// State highway: 70–90 km/h.
    Highway,
    /// Arterial roads through towns: 40–70 km/h.
    Arterial,
    /// Local/urban streets: 15–50 km/h.
    Local,
}

impl RoadClass {
    /// The speed-limit band for this road class, `(min, max)` km/h.
    ///
    /// The global 100 km/h cap mirrors the paper's maximum driving speed.
    pub fn speed_band_kmh(&self) -> (f64, f64) {
        match self {
            RoadClass::Interstate => (90.0, 100.0),
            RoadClass::Highway => (70.0, 90.0),
            RoadClass::Arterial => (40.0, 70.0),
            RoadClass::Local => (15.0, 50.0),
        }
    }

    /// Midpoint of the speed band, used as the nominal cruising speed.
    pub fn nominal_kmh(&self) -> f64 {
        let (lo, hi) = self.speed_band_kmh();
        (lo + hi) / 2.0
    }
}

/// A stochastic speed process: Ornstein–Uhlenbeck-style mean reversion
/// towards the road's nominal speed, clipped to the band, with occasional
/// slowdowns (traffic lights, congestion) on non-freeway roads.
///
/// The process is advanced once per second of simulated drive time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedProfile {
    current_kmh: f64,
    /// Mean-reversion rate per step, in `(0, 1]`.
    reversion: f64,
    /// Standard deviation of the per-step speed perturbation, km/h.
    sigma_kmh: f64,
    /// Probability per step of entering a slowdown on non-freeway roads.
    slowdown_prob: f64,
    /// Remaining seconds of an active slowdown.
    slowdown_left_s: u32,
}

impl Default for SpeedProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl SpeedProfile {
    /// Creates a profile starting at rest.
    pub fn new() -> Self {
        Self {
            current_kmh: 0.0,
            reversion: 0.15,
            sigma_kmh: 2.0,
            slowdown_prob: 0.004,
            slowdown_left_s: 0,
        }
    }

    /// Current speed, km/h.
    pub fn current_kmh(&self) -> f64 {
        self.current_kmh
    }

    /// Advances the process by one second on a road of class `road`,
    /// returning the new speed in km/h.
    pub fn step<R: Rng + ?Sized>(&mut self, road: RoadClass, rng: &mut R) -> f64 {
        let (lo, hi) = road.speed_band_kmh();
        let target = if self.slowdown_left_s > 0 {
            self.slowdown_left_s -= 1;
            lo * 0.3
        } else {
            if road != RoadClass::Interstate && rng.gen_bool(self.slowdown_prob) {
                // A stop light or brief congestion: 10–40 s slowdown.
                self.slowdown_left_s = rng.gen_range(10..40);
            }
            road.nominal_kmh()
        };
        let noise = rng.gen_range(-1.0..1.0) * self.sigma_kmh;
        self.current_kmh += self.reversion * (target - self.current_kmh) + noise;
        // Never exceed the band top (the legal limit); allow dipping to zero.
        self.current_kmh = self.current_kmh.clamp(0.0, hi);
        self.current_kmh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bands_are_ordered_and_capped() {
        for rc in [
            RoadClass::Interstate,
            RoadClass::Highway,
            RoadClass::Arterial,
            RoadClass::Local,
        ] {
            let (lo, hi) = rc.speed_band_kmh();
            assert!(lo < hi);
            assert!(hi <= 100.0, "paper caps driving speed at 100 km/h");
        }
    }

    #[test]
    fn profile_converges_towards_nominal() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut p = SpeedProfile::new();
        let mut last = 0.0;
        for _ in 0..600 {
            last = p.step(RoadClass::Interstate, &mut rng);
        }
        let nominal = RoadClass::Interstate.nominal_kmh();
        assert!(
            (last - nominal).abs() < 20.0,
            "speed {last} should be near nominal {nominal}"
        );
    }

    #[test]
    fn profile_never_exceeds_limit() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut p = SpeedProfile::new();
        for _ in 0..5000 {
            let v = p.step(RoadClass::Local, &mut rng);
            assert!((0.0..=50.0).contains(&v), "local speed {v} out of band");
        }
    }

    #[test]
    fn profile_is_deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut p = SpeedProfile::new();
            (0..100)
                .map(|_| p.step(RoadClass::Highway, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn urban_speeds_mostly_below_50() {
        // §4.2: >90 % of urban data collected below 50 km/h. Local roads cap
        // at 50, so this holds by construction; verify the sampled mean is
        // comfortably below.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut p = SpeedProfile::new();
        let mut below = 0;
        let n = 2000;
        for _ in 0..n {
            if p.step(RoadClass::Local, &mut rng) < 50.0 {
                below += 1;
            }
        }
        assert!(below as f64 / n as f64 > 0.9);
    }
}
