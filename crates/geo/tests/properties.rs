//! Property tests for the geodesy substrate: invariants that must hold
//! for arbitrary coordinates and routes.

use leo_geo::point::{GeoPoint, EARTH_RADIUS_KM};
use leo_geo::route::RouteBuilder;
use leo_geo::speed::RoadClass;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-85.0..85.0f64, -179.0..179.0f64).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    /// Distance is a metric: non-negative, symmetric, zero on identity.
    #[test]
    fn distance_is_a_metric(a in arb_point(), b in arb_point()) {
        let dab = a.distance_km(&b);
        let dba = b.distance_km(&a);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() < 1e-6);
        prop_assert!(a.distance_km(&a) < 1e-9);
        // And bounded by half the Earth's circumference.
        prop_assert!(dab <= std::f64::consts::PI * EARTH_RADIUS_KM + 1.0);
    }

    /// Travelling `d` along any bearing lands exactly `d` away.
    #[test]
    fn destination_distance_is_exact(
        p in arb_point(),
        bearing in 0.0..360.0f64,
        d in 0.1..5000.0f64,
    ) {
        let q = p.destination(bearing, d);
        prop_assert!((p.distance_km(&q) - d).abs() < 1e-3,
            "asked {d} km, got {}", p.distance_km(&q));
    }

    /// Great-circle interpolation endpoints and triangle inequality.
    #[test]
    fn interpolation_stays_on_segment(a in arb_point(), b in arb_point(), t in 0.0..1.0f64) {
        let m = a.interpolate(&b, t);
        let d = a.distance_km(&b);
        // The two legs add up to the whole (within tolerance).
        prop_assert!((a.distance_km(&m) + m.distance_km(&b) - d).abs() < 1e-3,
            "legs {} + {} vs total {d}", a.distance_km(&m), m.distance_km(&b));
    }

    /// ECEF round trip is the identity at any altitude.
    #[test]
    fn ecef_round_trip(p in arb_point(), alt in 0.0..2000.0f64) {
        let (back, alt2) = p.to_ecef(alt).to_geo();
        prop_assert!((back.lat_deg - p.lat_deg).abs() < 1e-9);
        prop_assert!((back.lon_deg - p.lon_deg).abs() < 1e-9);
        prop_assert!((alt2 - alt).abs() < 1e-9);
    }

    /// Route sampling: travelled distance is monotone and bounded by the
    /// route length; positions of consecutive samples are close.
    #[test]
    fn route_sampling_is_monotone(
        start in arb_point(),
        legs in prop::collection::vec((0.0..360.0f64, 1.0..80.0f64), 1..8),
    ) {
        let mut b = RouteBuilder::new(start);
        for (bearing, km) in &legs {
            b = b.leg_heading(*bearing, *km, RoadClass::Highway);
        }
        let route = b.build();
        let total = route.length_km();
        prop_assert!(total > 0.0);
        let samples = route.sample_evenly(32);
        for w in samples.windows(2) {
            prop_assert!(w[1].travelled_km >= w[0].travelled_km);
            prop_assert!(w[1].travelled_km <= total + 1e-9);
            // Consecutive samples are at most one even-step apart on the
            // ground (great-circle shortcuts can only make it shorter).
            let step = total / 31.0;
            prop_assert!(w[0].position.distance_km(&w[1].position) <= step + 1e-6);
        }
    }
}
