//! Instantaneous link conditions.

use serde::{Deserialize, Serialize};

/// The condition of one direction of a link at one instant.
///
/// This is the interface between the world models and everything downstream:
/// a Starlink or cellular model reduces all of its physics to a per-second
/// `LinkCondition`, which the measurement tools sample and the emulator
/// replays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkCondition {
    /// Available capacity in Mbit/s (what a saturating UDP flood would see).
    pub capacity_mbps: f64,
    /// Base round-trip time in milliseconds (propagation + scheduling,
    /// excluding queueing the sender itself induces).
    pub rtt_ms: f64,
    /// Random packet loss probability in `[0, 1]` (bursty channel loss is
    /// expressed by varying this over time).
    pub loss: f64,
}

impl LinkCondition {
    /// A completely dead link.
    pub const OUTAGE: LinkCondition = LinkCondition {
        capacity_mbps: 0.0,
        rtt_ms: 1000.0,
        loss: 1.0,
    };

    /// Creates a condition, clamping values to their valid ranges.
    pub fn new(capacity_mbps: f64, rtt_ms: f64, loss: f64) -> Self {
        Self {
            capacity_mbps: capacity_mbps.max(0.0),
            rtt_ms: rtt_ms.max(0.0),
            loss: loss.clamp(0.0, 1.0),
        }
    }

    /// Whether the link is effectively unusable.
    pub fn is_outage(&self) -> bool {
        self.capacity_mbps < 0.1 || self.loss >= 0.999
    }

    /// Bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> f64 {
        self.capacity_mbps * 1e6 / 8.0 * self.rtt_ms / 1e3
    }

    /// Linear interpolation between two conditions (`t ∈ [0, 1]`).
    pub fn lerp(&self, other: &LinkCondition, t: f64) -> LinkCondition {
        let t = t.clamp(0.0, 1.0);
        LinkCondition::new(
            self.capacity_mbps + (other.capacity_mbps - self.capacity_mbps) * t,
            self.rtt_ms + (other.rtt_ms - self.rtt_ms) * t,
            self.loss + (other.loss - self.loss) * t,
        )
    }

    /// Returns this condition with capacity scaled by `factor` (e.g. rain
    /// fade, congestion priority).
    pub fn scale_capacity(&self, factor: f64) -> LinkCondition {
        LinkCondition::new(self.capacity_mbps * factor.max(0.0), self.rtt_ms, self.loss)
    }
}

/// Downlink + uplink conditions of a duplex link.
///
/// Starlink divides uplink and downlink by FDD with a ~10× capacity
/// asymmetry (§4.1); cellular links are similarly asymmetric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DuplexCondition {
    pub down: LinkCondition,
    pub up: LinkCondition,
}

impl DuplexCondition {
    /// Creates a duplex condition.
    pub fn new(down: LinkCondition, up: LinkCondition) -> Self {
        Self { down, up }
    }

    /// A full outage in both directions.
    pub const OUTAGE: DuplexCondition = DuplexCondition {
        down: LinkCondition::OUTAGE,
        up: LinkCondition::OUTAGE,
    };

    /// Picks the condition for the requested direction.
    pub fn dir(&self, direction: Direction) -> &LinkCondition {
        match direction {
            Direction::Down => &self.down,
            Direction::Up => &self.up,
        }
    }

    /// Down/up capacity ratio; `f64::INFINITY` when the uplink is dead.
    pub fn asymmetry(&self) -> f64 {
        if self.up.capacity_mbps <= 0.0 {
            f64::INFINITY
        } else {
            self.down.capacity_mbps / self.up.capacity_mbps
        }
    }
}

/// Transfer direction, from the vehicle's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Server → vehicle (download).
    Down,
    /// Vehicle → server (upload).
    Up,
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Direction::Down => "downlink",
            Direction::Up => "uplink",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_ranges() {
        let c = LinkCondition::new(-5.0, -1.0, 2.0);
        assert_eq!(c.capacity_mbps, 0.0);
        assert_eq!(c.rtt_ms, 0.0);
        assert_eq!(c.loss, 1.0);
    }

    #[test]
    fn outage_detection() {
        assert!(LinkCondition::OUTAGE.is_outage());
        assert!(!LinkCondition::new(100.0, 50.0, 0.01).is_outage());
        assert!(LinkCondition::new(0.05, 50.0, 0.0).is_outage());
    }

    #[test]
    fn bdp_of_100mbps_50ms() {
        let c = LinkCondition::new(100.0, 50.0, 0.0);
        // 100 Mbps × 50 ms = 625,000 bytes.
        assert!((c.bdp_bytes() - 625_000.0).abs() < 1.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = LinkCondition::new(0.0, 20.0, 0.0);
        let b = LinkCondition::new(100.0, 40.0, 0.2);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let m = a.lerp(&b, 0.5);
        assert!((m.capacity_mbps - 50.0).abs() < 1e-9);
        assert!((m.rtt_ms - 30.0).abs() < 1e-9);
        assert!((m.loss - 0.1).abs() < 1e-9);
    }

    #[test]
    fn scale_capacity_leaves_rtt_loss() {
        let c = LinkCondition::new(200.0, 55.0, 0.01).scale_capacity(0.5);
        assert!((c.capacity_mbps - 100.0).abs() < 1e-9);
        assert_eq!(c.rtt_ms, 55.0);
        assert_eq!(c.loss, 0.01);
    }

    #[test]
    fn duplex_asymmetry() {
        let d = DuplexCondition::new(
            LinkCondition::new(150.0, 50.0, 0.0),
            LinkCondition::new(15.0, 50.0, 0.0),
        );
        assert!((d.asymmetry() - 10.0).abs() < 1e-9);
        assert_eq!(d.dir(Direction::Down).capacity_mbps, 150.0);
        assert_eq!(d.dir(Direction::Up).capacity_mbps, 15.0);
    }

    #[test]
    fn dead_uplink_asymmetry_is_infinite() {
        let d = DuplexCondition::new(LinkCondition::new(100.0, 50.0, 0.0), LinkCondition::OUTAGE);
        assert!(d.asymmetry().is_infinite());
    }
}
