//! Link-condition time series, trace alignment, and the Mahimahi
//! packet-delivery trace format.
//!
//! This crate defines the *lingua franca* between the world simulators
//! (`leo-orbit`, `leo-cellular`), the measurement tools (`leo-measure`),
//! and the trace-driven emulator (`leo-netsim`):
//!
//! * [`LinkCondition`] — instantaneous capacity / RTT / loss of one
//!   direction of a link,
//! * [`DuplexCondition`] — a downlink/uplink pair (Starlink's FDD split),
//! * [`LinkTrace`] — a 1 Hz time series of conditions with alignment and
//!   resampling, mirroring §6's "aligned via timestamps",
//! * [`MahimahiTrace`] — the millisecond-granularity MTU delivery schedule
//!   Mahimahi (and the paper's MpShell variant) replays; conversion both
//!   ways plus the text format.

pub mod condition;
pub mod mahimahi;
pub mod trace;

pub use condition::{DuplexCondition, LinkCondition};
pub use mahimahi::MahimahiTrace;
pub use trace::{LinkTrace, TraceStats};

/// The MTU Mahimahi assumes: one trace slot delivers one 1500-byte packet.
pub const MTU_BYTES: u64 = 1500;
