//! The Mahimahi packet-delivery trace format.
//!
//! Mahimahi (Netravali et al., ATC '15) — and the paper's MpShell variant —
//! model a link as a schedule of *delivery opportunities*: a text file with
//! one millisecond timestamp per line, each granting the link the right to
//! deliver one MTU (1500-byte) packet at that instant. When the trace ends
//! it wraps around, repeating with an offset.
//!
//! §6: "we use the UDP downlink throughput traces in our driving dataset and
//! convert them to packet traces for replay on MpShell." That conversion is
//! [`MahimahiTrace::from_capacity_series`]; the reverse (estimating a
//! per-second capacity series from a schedule) is
//! [`MahimahiTrace::to_capacity_series`].

use crate::trace::LinkTrace;
use crate::MTU_BYTES;
use serde::{Deserialize, Serialize};

/// A Mahimahi delivery schedule: sorted millisecond timestamps, each worth
/// one MTU of delivery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MahimahiTrace {
    /// Delivery opportunities, in non-decreasing milliseconds.
    deliveries_ms: Vec<u64>,
    /// Period of the schedule in ms (wrap-around point). Always ≥ the last
    /// delivery timestamp.
    period_ms: u64,
}

/// Errors from parsing the Mahimahi text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line was not a non-negative integer.
    BadLine { line_no: usize, content: String },
    /// Timestamps decreased.
    NotSorted { line_no: usize },
    /// The file had no delivery opportunities.
    Empty,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine { line_no, content } => {
                write!(f, "line {line_no}: not a timestamp: {content:?}")
            }
            ParseError::NotSorted { line_no } => {
                write!(f, "line {line_no}: timestamps must be non-decreasing")
            }
            ParseError::Empty => write!(f, "trace has no delivery opportunities"),
        }
    }
}

impl std::error::Error for ParseError {}

impl MahimahiTrace {
    /// Builds a schedule from explicit delivery timestamps.
    ///
    /// Timestamps must be non-decreasing; the period defaults to the last
    /// timestamp rounded up to the next millisecond (minimum 1 ms).
    pub fn from_deliveries(deliveries_ms: Vec<u64>) -> Self {
        debug_assert!(deliveries_ms.windows(2).all(|w| w[1] >= w[0]));
        let period_ms = deliveries_ms.last().map(|&t| t + 1).unwrap_or(1);
        Self {
            deliveries_ms,
            period_ms,
        }
    }

    /// Converts a per-second capacity series (Mbps) into a delivery
    /// schedule, accumulating fractional packets so the long-run rate is
    /// exact.
    pub fn from_capacity_series(capacity_mbps: &[f64]) -> Self {
        let mut deliveries = Vec::new();
        let mut credit_bytes = 0.0;
        for (sec, &mbps) in capacity_mbps.iter().enumerate() {
            let bytes_per_ms = mbps.max(0.0) * 1e6 / 8.0 / 1000.0;
            for ms in 0..1000u64 {
                credit_bytes += bytes_per_ms;
                while credit_bytes >= MTU_BYTES as f64 {
                    deliveries.push(sec as u64 * 1000 + ms);
                    credit_bytes -= MTU_BYTES as f64;
                }
            }
        }
        Self {
            deliveries_ms: deliveries,
            period_ms: (capacity_mbps.len() as u64).max(1) * 1000,
        }
    }

    /// Converts a [`LinkTrace`]'s capacity series into a schedule.
    pub fn from_link_trace(trace: &LinkTrace) -> Self {
        Self::from_capacity_series(&trace.capacity_series())
    }

    /// Estimates the per-second capacity series (Mbps) that this schedule
    /// realises.
    pub fn to_capacity_series(&self) -> Vec<f64> {
        let secs = self.period_ms.div_ceil(1000).max(1);
        let mut out = vec![0.0; secs as usize];
        for &t in &self.deliveries_ms {
            let sec = (t / 1000) as usize;
            if sec < out.len() {
                out[sec] += MTU_BYTES as f64 * 8.0 / 1e6;
            }
        }
        out
    }

    /// Total delivery opportunities.
    pub fn len(&self) -> usize {
        self.deliveries_ms.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.deliveries_ms.is_empty()
    }

    /// Schedule period in milliseconds (wrap point).
    pub fn period_ms(&self) -> u64 {
        self.period_ms
    }

    /// The raw delivery timestamps.
    pub fn deliveries_ms(&self) -> &[u64] {
        &self.deliveries_ms
    }

    /// Average rate of the schedule over its period, Mbps.
    pub fn mean_rate_mbps(&self) -> f64 {
        if self.period_ms == 0 {
            return 0.0;
        }
        self.deliveries_ms.len() as f64 * MTU_BYTES as f64 * 8.0 / (self.period_ms as f64 * 1e3)
    }

    /// The `n`-th delivery opportunity (0-based), accounting for
    /// wrap-around: opportunity `n` beyond the schedule occurs at
    /// `period * (n / len) + deliveries[n % len]`.
    pub fn delivery_time_ms(&self, n: u64) -> u64 {
        assert!(
            !self.deliveries_ms.is_empty(),
            "empty schedule never delivers"
        );
        let len = self.deliveries_ms.len() as u64;
        let wraps = n / len;
        let idx = (n % len) as usize;
        wraps * self.period_ms + self.deliveries_ms[idx]
    }

    /// Index of the first delivery opportunity at or after `t_ms`
    /// (wrap-aware). Use with [`Self::delivery_time_ms`].
    pub fn next_opportunity_at_or_after(&self, t_ms: u64) -> u64 {
        assert!(
            !self.deliveries_ms.is_empty(),
            "empty schedule never delivers"
        );
        let len = self.deliveries_ms.len() as u64;
        let wraps = t_ms / self.period_ms;
        let rem = t_ms % self.period_ms;
        let idx = self.deliveries_ms.partition_point(|&d| d < rem) as u64;
        if idx < len {
            wraps * len + idx
        } else {
            (wraps + 1) * len
        }
    }

    /// Serialises to the Mahimahi text format (one timestamp per line).
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(self.deliveries_ms.len() * 7);
        for t in &self.deliveries_ms {
            s.push_str(&t.to_string());
            s.push('\n');
        }
        s
    }

    /// Parses the Mahimahi text format.
    pub fn from_text(text: &str) -> Result<Self, ParseError> {
        let mut deliveries = Vec::new();
        let mut prev = 0u64;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let t: u64 = line.parse().map_err(|_| ParseError::BadLine {
                line_no: i + 1,
                content: line.to_string(),
            })?;
            if t < prev {
                return Err(ParseError::NotSorted { line_no: i + 1 });
            }
            prev = t;
            deliveries.push(t);
        }
        if deliveries.is_empty() {
            return Err(ParseError::Empty);
        }
        Ok(Self::from_deliveries(deliveries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_round_trips() {
        // 12 Mbps = 1000 packets/s exactly (12e6 / 8 / 1500 = 1000).
        let series = vec![12.0; 5];
        let trace = MahimahiTrace::from_capacity_series(&series);
        assert_eq!(trace.len(), 5000);
        let back = trace.to_capacity_series();
        assert_eq!(back.len(), 5);
        for v in back {
            assert!((v - 12.0).abs() < 0.05, "got {v}");
        }
    }

    #[test]
    fn fractional_rate_accumulates() {
        // 1 Mbps = 83.33 packets/s; over 12 s expect ≈1000 packets.
        let trace = MahimahiTrace::from_capacity_series(&[1.0; 12]);
        let n = trace.len() as i64;
        assert!((n - 1000).abs() <= 2, "got {n}");
    }

    #[test]
    fn zero_capacity_has_no_deliveries() {
        let trace = MahimahiTrace::from_capacity_series(&[0.0, 0.0]);
        assert!(trace.is_empty());
        assert_eq!(trace.period_ms(), 2000);
        assert_eq!(trace.mean_rate_mbps(), 0.0);
    }

    #[test]
    fn mean_rate_matches_input() {
        let series = vec![50.0, 100.0, 150.0];
        let trace = MahimahiTrace::from_capacity_series(&series);
        assert!((trace.mean_rate_mbps() - 100.0).abs() < 0.5);
    }

    #[test]
    fn wrap_around_delivery_times() {
        let trace = MahimahiTrace::from_deliveries(vec![10, 20, 30]);
        // period = 31.
        assert_eq!(trace.delivery_time_ms(0), 10);
        assert_eq!(trace.delivery_time_ms(2), 30);
        assert_eq!(trace.delivery_time_ms(3), 31 + 10);
        assert_eq!(trace.delivery_time_ms(7), 2 * 31 + 20);
    }

    #[test]
    fn next_opportunity_search() {
        let trace = MahimahiTrace::from_deliveries(vec![10, 20, 30]);
        assert_eq!(trace.next_opportunity_at_or_after(0), 0);
        assert_eq!(trace.next_opportunity_at_or_after(10), 0);
        assert_eq!(trace.next_opportunity_at_or_after(11), 1);
        assert_eq!(trace.next_opportunity_at_or_after(30), 2);
        // After the last delivery, the next one is in the following period.
        assert_eq!(trace.next_opportunity_at_or_after(31 + 5), 3);
        let idx = trace.next_opportunity_at_or_after(31);
        assert_eq!(trace.delivery_time_ms(idx), 31 + 10);
    }

    #[test]
    fn text_round_trip() {
        let trace = MahimahiTrace::from_deliveries(vec![1, 5, 5, 9]);
        let parsed = MahimahiTrace::from_text(&trace.to_text()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn parse_rejects_garbage_and_unsorted() {
        assert!(matches!(
            MahimahiTrace::from_text("1\nfoo\n"),
            Err(ParseError::BadLine { line_no: 2, .. })
        ));
        assert!(matches!(
            MahimahiTrace::from_text("5\n3\n"),
            Err(ParseError::NotSorted { line_no: 2 })
        ));
        assert_eq!(
            MahimahiTrace::from_text("# nothing\n"),
            Err(ParseError::Empty)
        );
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let parsed = MahimahiTrace::from_text("# header\n\n10\n20\n").unwrap();
        assert_eq!(parsed.deliveries_ms(), &[10, 20]);
    }
}
