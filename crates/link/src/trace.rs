//! 1 Hz link-condition time series.

use crate::condition::LinkCondition;
use serde::{Deserialize, Serialize};

/// A time series of link conditions sampled at 1 Hz, starting at
/// `start_t_s` seconds of campaign time.
///
/// §6: "Different network traces are aligned via timestamps so that they
/// reflect the network conditions experienced by users at the same location
/// and time." [`LinkTrace::align`] implements exactly that intersection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkTrace {
    /// Campaign timestamp of the first sample, seconds.
    pub start_t_s: u64,
    /// Human-readable label, e.g. `"MOB"` or `"ATT"`.
    pub label: String,
    samples: Vec<LinkCondition>,
}

/// Summary statistics over a trace's capacity series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    pub mean_mbps: f64,
    pub median_mbps: f64,
    pub p25_mbps: f64,
    pub p75_mbps: f64,
    pub min_mbps: f64,
    pub max_mbps: f64,
    pub mean_rtt_ms: f64,
    pub mean_loss: f64,
    /// Fraction of samples that are outages.
    pub outage_frac: f64,
}

impl LinkTrace {
    /// Creates a trace from samples.
    pub fn new(label: impl Into<String>, start_t_s: u64, samples: Vec<LinkCondition>) -> Self {
        Self {
            start_t_s,
            label: label.into(),
            samples,
        }
    }

    /// Duration in seconds (= number of samples).
    pub fn duration_s(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Campaign timestamp one past the last sample.
    pub fn end_t_s(&self) -> u64 {
        self.start_t_s + self.duration_s()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[LinkCondition] {
        &self.samples
    }

    /// The condition at campaign time `t_s`, or `None` outside the trace.
    pub fn at(&self, t_s: u64) -> Option<&LinkCondition> {
        t_s.checked_sub(self.start_t_s)
            .and_then(|off| self.samples.get(off as usize))
    }

    /// The condition at trace-relative second `off_s`, clamping past-the-end
    /// queries to the last sample. Panics on an empty trace.
    pub fn at_offset_clamped(&self, off_s: u64) -> &LinkCondition {
        assert!(!self.samples.is_empty(), "empty trace");
        let idx = (off_s as usize).min(self.samples.len() - 1);
        &self.samples[idx]
    }

    /// Restricts this trace and `other` to their common time window,
    /// returning aligned copies (both starting at the same campaign time,
    /// same duration). Returns `None` when the windows don't overlap.
    pub fn align(&self, other: &LinkTrace) -> Option<(LinkTrace, LinkTrace)> {
        let start = self.start_t_s.max(other.start_t_s);
        let end = self.end_t_s().min(other.end_t_s());
        if start >= end {
            return None;
        }
        Some((self.window(start, end), other.window(start, end)))
    }

    /// The sub-trace covering campaign times `[start, end)`. The window must
    /// lie inside this trace.
    pub fn window(&self, start_t_s: u64, end_t_s: u64) -> LinkTrace {
        assert!(start_t_s >= self.start_t_s && end_t_s <= self.end_t_s());
        let a = (start_t_s - self.start_t_s) as usize;
        let b = (end_t_s - self.start_t_s) as usize;
        LinkTrace {
            start_t_s,
            label: self.label.clone(),
            samples: self.samples[a..b].to_vec(),
        }
    }

    /// Capacity series in Mbps.
    pub fn capacity_series(&self) -> Vec<f64> {
        self.samples.iter().map(|c| c.capacity_mbps).collect()
    }

    /// Concatenates `next` onto this trace. `next` must start exactly
    /// where this trace ends (campaign time is continuous).
    ///
    /// # Panics
    /// Panics if the timestamps do not line up.
    pub fn concat(mut self, next: &LinkTrace) -> LinkTrace {
        assert_eq!(
            self.end_t_s(),
            next.start_t_s,
            "traces must be contiguous to concatenate"
        );
        self.samples.extend_from_slice(&next.samples);
        self
    }

    /// Returns a copy with every capacity scaled by `factor` (e.g. to
    /// model a plan downgrade or emulate a slower tier).
    pub fn scale_capacity(&self, factor: f64) -> LinkTrace {
        LinkTrace {
            start_t_s: self.start_t_s,
            label: self.label.clone(),
            samples: self
                .samples
                .iter()
                .map(|c| c.scale_capacity(factor))
                .collect(),
        }
    }

    /// Returns a copy with every sample inside campaign times
    /// `[start_t_s, end_t_s)` replaced by `f(t_s, condition)` — the
    /// scenario engine's fault-window primitive. The window is clamped to
    /// the trace's extent, so out-of-range (or empty) windows are no-ops.
    pub fn map_window(
        &self,
        start_t_s: u64,
        end_t_s: u64,
        f: impl Fn(u64, &LinkCondition) -> LinkCondition,
    ) -> LinkTrace {
        let lo = start_t_s.max(self.start_t_s);
        let hi = end_t_s.min(self.end_t_s());
        LinkTrace {
            start_t_s: self.start_t_s,
            label: self.label.clone(),
            samples: self
                .samples
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let t = self.start_t_s + i as u64;
                    if t >= lo && t < hi {
                        f(t, c)
                    } else {
                        *c
                    }
                })
                .collect(),
        }
    }

    /// Returns a copy with the capacity series smoothed by a centred
    /// moving average of width `w` (RTT and loss untouched) — useful to
    /// separate slow trends from fast fades when eyeballing traces.
    pub fn smooth_capacity(&self, w: usize) -> LinkTrace {
        assert!(w >= 1);
        let caps = self.capacity_series();
        let smoothed: Vec<f64> = (0..caps.len())
            .map(|i| {
                let lo = i.saturating_sub(w / 2);
                let hi = (i + w / 2 + 1).min(caps.len());
                caps[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect();
        LinkTrace {
            start_t_s: self.start_t_s,
            label: self.label.clone(),
            samples: self
                .samples
                .iter()
                .zip(smoothed)
                .map(|(c, cap)| LinkCondition::new(cap, c.rtt_ms, c.loss))
                .collect(),
        }
    }

    /// Summary statistics. Returns `None` for an empty trace.
    pub fn stats(&self) -> Option<TraceStats> {
        if self.samples.is_empty() {
            return None;
        }
        let mut caps = self.capacity_series();
        // total_cmp, not partial_cmp().expect(): a NaN smuggled in through
        // a hand-built condition must not panic the stats path (NaNs sort
        // to the end, after +inf, and poison only the quantiles they touch).
        caps.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            // Nearest-rank with linear interpolation.
            let idx = p * (caps.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            caps[lo] + (caps[hi] - caps[lo]) * (idx - lo as f64)
        };
        let n = self.samples.len() as f64;
        Some(TraceStats {
            mean_mbps: caps.iter().sum::<f64>() / n,
            median_mbps: q(0.5),
            p25_mbps: q(0.25),
            p75_mbps: q(0.75),
            min_mbps: caps[0],
            max_mbps: caps[caps.len() - 1],
            mean_rtt_ms: self.samples.iter().map(|c| c.rtt_ms).sum::<f64>() / n,
            mean_loss: self.samples.iter().map(|c| c.loss).sum::<f64>() / n,
            outage_frac: self.samples.iter().filter(|c| c.is_outage()).count() as f64 / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(label: &str, start: u64, len: usize, mbps: f64) -> LinkTrace {
        LinkTrace::new(label, start, vec![LinkCondition::new(mbps, 50.0, 0.0); len])
    }

    #[test]
    fn at_respects_offsets() {
        let t = flat("x", 100, 10, 50.0);
        assert!(t.at(99).is_none());
        assert!(t.at(100).is_some());
        assert!(t.at(109).is_some());
        assert!(t.at(110).is_none());
    }

    #[test]
    fn align_intersects_windows() {
        let a = flat("a", 0, 100, 10.0);
        let b = flat("b", 50, 100, 20.0);
        let (aa, bb) = a.align(&b).unwrap();
        assert_eq!(aa.start_t_s, 50);
        assert_eq!(bb.start_t_s, 50);
        assert_eq!(aa.duration_s(), 50);
        assert_eq!(bb.duration_s(), 50);
    }

    #[test]
    fn align_disjoint_is_none() {
        let a = flat("a", 0, 10, 10.0);
        let b = flat("b", 100, 10, 20.0);
        assert!(a.align(&b).is_none());
    }

    #[test]
    fn stats_of_flat_trace() {
        let t = flat("x", 0, 60, 80.0);
        let s = t.stats().unwrap();
        assert_eq!(s.mean_mbps, 80.0);
        assert_eq!(s.median_mbps, 80.0);
        assert_eq!(s.outage_frac, 0.0);
    }

    #[test]
    fn stats_quantiles_of_ramp() {
        // Capacities 0..=100 — median 50, p25 25, p75 75.
        let samples: Vec<LinkCondition> = (0..=100)
            .map(|i| LinkCondition::new(i as f64, 50.0, 0.0))
            .collect();
        let s = LinkTrace::new("r", 0, samples).stats().unwrap();
        assert!((s.median_mbps - 50.0).abs() < 1e-9);
        assert!((s.p25_mbps - 25.0).abs() < 1e-9);
        assert!((s.p75_mbps - 75.0).abs() < 1e-9);
        assert!((s.mean_mbps - 50.0).abs() < 1e-9);
    }

    #[test]
    fn stats_empty_is_none() {
        let t = LinkTrace::new("e", 0, vec![]);
        assert!(t.stats().is_none());
    }

    #[test]
    fn stats_survive_nan_capacity() {
        // `LinkCondition::new` clamps NaN capacity to 0, but conditions can
        // be struct-built (scenario tooling, deserialized JSON), so the
        // stats path must not panic on one. Pre-fix, the
        // `partial_cmp().expect("capacities are finite")` sort aborted here.
        let mut samples = vec![LinkCondition::new(40.0, 50.0, 0.0); 4];
        samples.push(LinkCondition {
            capacity_mbps: f64::NAN,
            rtt_ms: 50.0,
            loss: 0.0,
        });
        let s = LinkTrace::new("nan", 0, samples)
            .stats()
            .expect("non-empty");
        // total_cmp sorts NaN above every finite value: order statistics
        // over the finite prefix stay meaningful.
        assert_eq!(s.min_mbps, 40.0);
        assert_eq!(s.median_mbps, 40.0);
        assert_eq!(s.p25_mbps, 40.0);
        assert!(s.max_mbps.is_nan());
    }

    #[test]
    fn outage_frac_counts_outages() {
        let mut samples = vec![LinkCondition::new(100.0, 50.0, 0.0); 8];
        samples.extend([LinkCondition::OUTAGE; 2]);
        let s = LinkTrace::new("o", 0, samples).stats().unwrap();
        assert!((s.outage_frac - 0.2).abs() < 1e-9);
    }

    #[test]
    fn concat_requires_contiguity() {
        let a = flat("x", 0, 5, 10.0);
        let b = flat("x", 5, 5, 20.0);
        let joined = a.concat(&b);
        assert_eq!(joined.duration_s(), 10);
        assert_eq!(joined.at(7).unwrap().capacity_mbps, 20.0);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn concat_rejects_gap() {
        let a = flat("x", 0, 5, 10.0);
        let b = flat("x", 9, 5, 20.0);
        let _ = a.concat(&b);
    }

    #[test]
    fn scale_capacity_scales_only_capacity() {
        let t = flat("x", 0, 4, 100.0).scale_capacity(0.5);
        let s = t.stats().unwrap();
        assert_eq!(s.mean_mbps, 50.0);
        assert_eq!(s.mean_rtt_ms, 50.0);
    }

    #[test]
    fn smoothing_reduces_variance_preserves_mean() {
        let samples: Vec<LinkCondition> = (0..50)
            .map(|i| LinkCondition::new(if i % 2 == 0 { 0.0 } else { 200.0 }, 50.0, 0.0))
            .collect();
        let t = LinkTrace::new("z", 0, samples);
        let sm = t.smooth_capacity(5);
        let raw_stats = t.stats().unwrap();
        let sm_stats = sm.stats().unwrap();
        assert!((raw_stats.mean_mbps - sm_stats.mean_mbps).abs() < 10.0);
        assert!(sm_stats.max_mbps - sm_stats.min_mbps < raw_stats.max_mbps - raw_stats.min_mbps);
    }

    #[test]
    fn map_window_touches_only_the_window() {
        let t = flat("x", 100, 10, 50.0);
        let faded = t.map_window(103, 106, |_, c| c.scale_capacity(0.1));
        for (i, c) in faded.samples().iter().enumerate() {
            let t_s = 100 + i as u64;
            let want = if (103..106).contains(&t_s) { 5.0 } else { 50.0 };
            assert!((c.capacity_mbps - want).abs() < 1e-9, "t={t_s}");
        }
        // Out-of-range windows are no-ops, not panics.
        assert_eq!(t.map_window(0, 50, |_, _| LinkCondition::OUTAGE), t);
        assert_eq!(t.map_window(500, 600, |_, _| LinkCondition::OUTAGE), t);
        assert_eq!(t.map_window(106, 103, |_, _| LinkCondition::OUTAGE), t);
    }

    #[test]
    fn map_window_passes_campaign_time() {
        let t = flat("x", 10, 5, 50.0);
        let seen = std::cell::RefCell::new(Vec::new());
        let _ = t.map_window(10, 15, |ts, c| {
            seen.borrow_mut().push(ts);
            *c
        });
        assert_eq!(*seen.borrow(), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn clamped_offset_queries() {
        let t = flat("x", 0, 5, 42.0);
        assert_eq!(t.at_offset_clamped(0).capacity_mbps, 42.0);
        assert_eq!(t.at_offset_clamped(1000).capacity_mbps, 42.0);
    }
}
