//! The iPerf counterpart: bulk-transfer throughput tests.
//!
//! # Engines
//!
//! * [`Engine::PacketLevel`] replays the link's per-second conditions as a
//!   Mahimahi [`leo_netsim::TracePipe`] plus loss series, and runs the real
//!   [`leo_transport`] stack over it. This is the high-fidelity path used
//!   by the parallelism (§4.2) and MPTCP (§6) experiments.
//!
//! * [`Engine::Analytic`] evaluates calibrated transport response models
//!   directly on the conditions. It exists because the campaign runs 1,239
//!   tests over 9,083 minutes: packet-level simulation of every test would
//!   dominate runtime without changing the distributional results. The
//!   response models are validated against the packet-level engine in this
//!   module's tests.
//!
//! # Analytic model calibration
//!
//! UDP delivers the available capacity (minus channel loss). TCP is the
//! smaller of a utilisation-capped capacity share and the CUBIC loss
//! response:
//!
//! ```text
//! W_max = (RTT / (0.84 · p_e))^(3/4)      (CUBIC epochs, C=0.4, β=0.7)
//! R_loss = 0.925 · W_max · MSS / RTT
//! ```
//!
//! where `p_e` is the *loss-event* rate: channel loss divided by the
//! network's loss burst factor. Starlink loss is highly bursty
//! (obstruction events drown many consecutive packets), so its burst
//! factor is large; with the default calibration a ~0.8 % channel loss
//! becomes the ~5× TCP/UDP gap of Figure 3a. Links with link-layer
//! retransmission (cellular HARQ/RLC) hide channel loss from TCP
//! entirely; they are capacity-limited with a utilisation that grows with
//! flow parallelism.

use leo_link::condition::{Direction, LinkCondition};
use leo_link::mahimahi::MahimahiTrace;
use leo_link::trace::LinkTrace;
use leo_netsim::{
    ConstPipe, FaultPipe, FaultSchedule, LinkId, PipeStats, SimTime, Simulator, TracePipe,
};
use leo_transport::cc::CcAlgorithm;
use leo_transport::parallel::{install_with_demux, ParallelTcp};
use leo_transport::udp::{UdpBlaster, UdpSink};
use serde::{Deserialize, Serialize};

/// Which transport the test drives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IperfProtocol {
    /// TCP bulk transfer with `parallel` connections (iPerf `-P`).
    Tcp { parallel: u32 },
    /// UDP blast at (slightly above) link capacity.
    Udp,
}

/// Which execution engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Full packet-level emulation via `leo-netsim`.
    PacketLevel,
    /// Calibrated closed-form response models.
    Analytic,
}

/// An iPerf test specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IperfConfig {
    pub protocol: IperfProtocol,
    pub direction: Direction,
    pub engine: Engine,
    /// Loss burst factor for the analytic TCP response (ratio of packet
    /// loss to loss-*event* rate). Starlink ≈ 100 (§ module docs).
    pub loss_burst_factor: f64,
    /// The link hides channel loss from TCP via link-layer retransmission
    /// (true for cellular HARQ/RLC, false for Starlink).
    pub link_layer_retx: bool,
    /// Congestion controller for the packet-level TCP engine (the analytic
    /// engine models CUBIC regardless).
    pub cc: CcAlgorithm,
    /// RNG seed for the packet-level engine.
    pub seed: u64,
    /// Faults injected into the packet-level data path (mid-path outages,
    /// loss bursts, delay spikes). An empty schedule is exactly
    /// transparent; the analytic engine ignores faults entirely. Skipped
    /// in serialisation (a stored config deserialises fault-free).
    #[serde(skip)]
    pub faults: FaultSchedule,
}

impl IperfConfig {
    /// Analytic UDP downlink probe (the §4/§5 workhorse).
    pub fn udp_down() -> Self {
        Self {
            protocol: IperfProtocol::Udp,
            direction: Direction::Down,
            engine: Engine::Analytic,
            loss_burst_factor: 100.0,
            link_layer_retx: false,
            cc: CcAlgorithm::Cubic,
            seed: 1,
            faults: FaultSchedule::new(),
        }
    }

    /// Analytic TCP downlink with `parallel` connections over a
    /// Starlink-like (bursty-loss) link.
    pub fn tcp_down_starlink(parallel: u32) -> Self {
        Self {
            protocol: IperfProtocol::Tcp { parallel },
            direction: Direction::Down,
            engine: Engine::Analytic,
            loss_burst_factor: 100.0,
            link_layer_retx: false,
            cc: CcAlgorithm::Cubic,
            seed: 1,
            faults: FaultSchedule::new(),
        }
    }

    /// Analytic TCP downlink over a cellular-like (link-layer-retx) link.
    pub fn tcp_down_cellular(parallel: u32) -> Self {
        Self {
            link_layer_retx: true,
            ..Self::tcp_down_starlink(parallel)
        }
    }

    /// Switches to the requested direction.
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Switches engines.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Switches the packet-level congestion controller.
    pub fn with_cc(mut self, cc: CcAlgorithm) -> Self {
        self.cc = cc;
        self
    }

    /// Injects a fault schedule into the packet-level data path.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }
}

/// The result of one iPerf run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IperfReport {
    /// Per-second delivered throughput, Mbps.
    pub per_second_mbps: Vec<f64>,
    /// Mean over the run, Mbps.
    pub mean_mbps: f64,
    /// Retransmission rate (TCP) or loss rate (UDP).
    pub retrans_rate: f64,
}

impl IperfReport {
    fn from_series(per_second_mbps: Vec<f64>, retrans_rate: f64) -> Self {
        let mean = if per_second_mbps.is_empty() {
            0.0
        } else {
            per_second_mbps.iter().sum::<f64>() / per_second_mbps.len() as f64
        };
        Self {
            per_second_mbps,
            mean_mbps: mean,
            retrans_rate,
        }
    }
}

/// What the packet-level engine's pipes actually did, alongside the
/// report: exact per-link counters for reconciling the report's loss and
/// throughput claims (the conformance harness's fault-injection tests
/// consume this).
#[derive(Debug, Clone, Default)]
pub struct IperfAudit {
    /// Per-link [`PipeStats`] in `LinkId` order. For both protocols the
    /// data bottleneck (the faulted pipe) is `link_stats[0]`; TCP runs
    /// also carry the ACK path at index 1 and transparent demux-dispatch
    /// pipes after it.
    pub link_stats: Vec<PipeStats>,
    /// Datagrams the sender offered (UDP runs; 0 for TCP).
    pub packets_sent: u64,
    /// Datagrams the sink accepted (UDP runs; 0 for TCP).
    pub packets_received: u64,
}

/// Runs iPerf tests against link-condition traces.
#[derive(Debug, Clone)]
pub struct IperfRunner {
    pub config: IperfConfig,
}

/// MSS in bits, for the response model.
const MSS_BITS: f64 = 1500.0 * 8.0;

/// CUBIC loss-response rate, Mbps (see module docs).
pub fn cubic_response_mbps(rtt_s: f64, loss_event_rate: f64) -> f64 {
    if loss_event_rate <= 0.0 {
        return f64::INFINITY;
    }
    let rtt = rtt_s.max(1e-3);
    let w_max = (rtt / (0.84 * loss_event_rate)).powf(0.75);
    0.925 * w_max * MSS_BITS / rtt / 1e6
}

impl IperfRunner {
    /// Creates a runner.
    pub fn new(config: IperfConfig) -> Self {
        Self { config }
    }

    /// Runs the test over the conditions of `trace` (one entry per second
    /// of test duration).
    pub fn run(&self, trace: &LinkTrace) -> IperfReport {
        match self.config.engine {
            Engine::Analytic => self.run_analytic(trace.samples()),
            Engine::PacketLevel => self.run_packet_level(trace.samples()),
        }
    }

    /// The analytic engine: closed-form response per second.
    ///
    /// The retransmission estimate for TCP is **throughput-weighted**: a
    /// tcpdump counts retransmitted packets among *transmitted* packets,
    /// and during an obstruction outage TCP transmits almost nothing, so
    /// outage seconds barely contribute (time-averaging them would
    /// overstate Figure 5 several-fold).
    pub fn run_analytic(&self, conditions: &[LinkCondition]) -> IperfReport {
        let mut series = Vec::with_capacity(conditions.len());
        let mut retrans_weighted = 0.0;
        let mut weight = 0.0;
        let mut retrans_plain = 0.0;
        let tcp = matches!(self.config.protocol, IperfProtocol::Tcp { .. });
        for c in conditions {
            let (mbps, retrans) = match self.config.protocol {
                IperfProtocol::Udp => {
                    // UDP delivers capacity minus channel loss.
                    (c.capacity_mbps * (1.0 - c.loss), c.loss)
                }
                IperfProtocol::Tcp { parallel } => self.tcp_analytic(c, parallel.max(1)),
            };
            let mbps = mbps.max(0.0);
            series.push(mbps);
            retrans_weighted += retrans * mbps;
            weight += mbps;
            retrans_plain += retrans;
        }
        let retrans = if conditions.is_empty() {
            0.0
        } else if tcp && weight > 0.0 {
            retrans_weighted / weight
        } else {
            retrans_plain / conditions.len() as f64
        };
        IperfReport::from_series(series, retrans)
    }

    /// Analytic TCP rate and retransmission estimate for one second.
    fn tcp_analytic(&self, c: &LinkCondition, parallel: u32) -> (f64, f64) {
        if c.is_outage() {
            return (0.0, 0.02);
        }
        let n = parallel as f64;
        let rtt_s = c.rtt_ms / 1e3;
        // Capacity-side limit: a single CUBIC flow on a variable link
        // leaves headroom that extra flows reclaim.
        let utilisation = 1.0 - 0.20 / n.powf(0.7);
        let cap_limited = c.capacity_mbps * utilisation.min(0.95);
        if self.config.link_layer_retx {
            // Channel loss is hidden from TCP; retransmissions on the wire
            // come from self-induced queue drops plus the (tiny) residual.
            let retrans = 0.0008 + 0.3 * c.loss;
            return (cap_limited, retrans.min(1.0));
        }
        // Bursty-channel limit: all parallel flows share loss events, so
        // the aggregate loss response scales ~linearly until capacity.
        let p_event = (c.loss / self.config.loss_burst_factor).max(1e-7);
        let loss_limited = cubic_response_mbps(rtt_s, p_event) * n;
        let rate = cap_limited.min(loss_limited);
        // Retransmissions track channel loss once the flow actually pushes
        // packets (an idle flow retransmits nothing).
        let retrans = c.loss + 0.0005;
        (rate, retrans.min(1.0))
    }

    /// The packet-level engine: a Mahimahi-style replay of the conditions
    /// through the real transport stack.
    pub fn run_packet_level(&self, conditions: &[LinkCondition]) -> IperfReport {
        self.run_packet_level_audited(conditions).0
    }

    /// Like [`Self::run_packet_level`], but also returns the audit: the
    /// exact per-link [`PipeStats`] plus sender/sink datagram counters
    /// (UDP), so a harness can reconcile the report's loss and throughput
    /// claims against what the pipes actually did.
    pub fn run_packet_level_audited(
        &self,
        conditions: &[LinkCondition],
    ) -> (IperfReport, IperfAudit) {
        if conditions.is_empty() {
            return (IperfReport::from_series(vec![], 0.0), IperfAudit::default());
        }
        let duration_s = conditions.len() as u64;
        let caps: Vec<f64> = conditions.iter().map(|c| c.capacity_mbps).collect();
        let losses: Vec<f64> = conditions.iter().map(|c| c.loss).collect();
        let mean_rtt_ms =
            conditions.iter().map(|c| c.rtt_ms).sum::<f64>() / conditions.len() as f64;
        let one_way = SimTime::from_secs_f64(mean_rtt_ms / 2.0 / 1e3);
        let mean_cap = caps.iter().sum::<f64>() / caps.len() as f64;
        if mean_cap <= 0.05 {
            return (
                IperfReport::from_series(vec![0.0; conditions.len()], 0.0),
                IperfAudit::default(),
            );
        }
        let trace = MahimahiTrace::from_capacity_series(&caps);
        if trace.is_empty() {
            return (
                IperfReport::from_series(vec![0.0; conditions.len()], 0.0),
                IperfAudit::default(),
            );
        }
        // Queue: one mean-BDP plus slack, like MpShell's default droptail.
        let queue_bytes = (mean_cap * 1e6 / 8.0 * (mean_rtt_ms / 1e3)) as u64 + 60_000;

        // The fault schedule wraps the data path only (a mid-path failure
        // between sender and bottleneck); an empty schedule is exactly
        // transparent, bit-for-bit.
        let faults = self.config.faults.clone();
        let data_pipe = move || -> Box<dyn leo_netsim::Pipe> {
            Box::new(FaultPipe::new(
                TracePipe::new(trace, one_way, queue_bytes).with_loss_series(losses),
                faults,
            ))
        };

        match self.config.protocol {
            IperfProtocol::Udp => {
                let mut sim = Simulator::new(self.config.seed);
                let sink = sim.add_node(Box::new(UdpSink::new(1)));
                let blaster = sim.add_node(Box::new(UdpBlaster::new(
                    1,
                    LinkId(0),
                    (mean_cap * 1.3).max(1.0),
                    SimTime::from_secs(duration_s),
                )));
                sim.add_link(data_pipe(), sink);
                sim.with_agent(blaster, |a, ctx| {
                    a.as_any_mut()
                        .downcast_mut::<UdpBlaster>()
                        .expect("blaster")
                        .start(ctx)
                });
                sim.run_until(SimTime::from_secs(duration_s));
                let audit = IperfAudit {
                    link_stats: sim.audit().links,
                    packets_sent: sim.agent_as::<UdpBlaster>(blaster).packets_sent,
                    packets_received: sim.agent_as::<UdpSink>(sink).packets_received,
                };
                let s = sim.agent_as::<UdpSink>(sink);
                let series = pad_series(s.meter.series_mbps(), conditions.len());
                let loss = s.loss_rate();
                (IperfReport::from_series(series, loss), audit)
            }
            IperfProtocol::Tcp { parallel } => {
                let mut sim = Simulator::new(self.config.seed);
                let n = parallel.max(1) as usize;
                let handles: ParallelTcp =
                    install_with_demux(&mut sim, n, self.config.cc, 4096, data_pipe, || {
                        Box::new(ConstPipe::new(mean_cap.max(10.0), one_way, 0.0, 1 << 22))
                    });
                handles.start_all(&mut sim);
                sim.run_until(SimTime::from_secs(duration_s));
                let mut series = vec![0.0; conditions.len()];
                for &r in &handles.receivers {
                    let m = sim
                        .agent_as::<leo_transport::tcp::TcpReceiver>(r)
                        .meter
                        .series_mbps();
                    for (i, v) in m.into_iter().enumerate() {
                        if i < series.len() {
                            series[i] += v;
                        }
                    }
                }
                let retrans = handles.aggregate_retransmission_rate(&sim);
                let audit = IperfAudit {
                    link_stats: sim.audit().links,
                    packets_sent: 0,
                    packets_received: 0,
                };
                (IperfReport::from_series(series, retrans), audit)
            }
        }
    }
}

fn pad_series(mut s: Vec<f64>, len: usize) -> Vec<f64> {
    s.resize(len, 0.0);
    s.truncate(len);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_conditions(n: usize, mbps: f64, rtt: f64, loss: f64) -> Vec<LinkCondition> {
        vec![LinkCondition::new(mbps, rtt, loss); n]
    }

    #[test]
    fn analytic_udp_delivers_capacity() {
        let r = IperfRunner::new(IperfConfig::udp_down());
        let rep = r.run_analytic(&flat_conditions(60, 128.0, 60.0, 0.01));
        assert!((rep.mean_mbps - 126.7).abs() < 1.0, "got {}", rep.mean_mbps);
        assert!((rep.retrans_rate - 0.01).abs() < 1e-9);
    }

    #[test]
    fn analytic_starlink_tcp_udp_gap_is_about_5x() {
        // §4.1: MOB UDP mean 128 vs TCP mean 29 Mbps at ~0.8 % loss.
        let conditions = flat_conditions(60, 135.0, 62.0, 0.008);
        let udp = IperfRunner::new(IperfConfig::udp_down()).run_analytic(&conditions);
        let tcp = IperfRunner::new(IperfConfig::tcp_down_starlink(1)).run_analytic(&conditions);
        let ratio = udp.mean_mbps / tcp.mean_mbps;
        assert!(
            (3.0..7.0).contains(&ratio),
            "UDP {} vs TCP {} (ratio {ratio})",
            udp.mean_mbps,
            tcp.mean_mbps
        );
    }

    #[test]
    fn analytic_cellular_tcp_close_to_udp() {
        let conditions = flat_conditions(60, 100.0, 50.0, 0.001);
        let udp = IperfRunner::new(IperfConfig::udp_down()).run_analytic(&conditions);
        let tcp = IperfRunner::new(IperfConfig::tcp_down_cellular(1)).run_analytic(&conditions);
        assert!(
            tcp.mean_mbps > udp.mean_mbps * 0.75,
            "cellular TCP {} vs UDP {}",
            tcp.mean_mbps,
            udp.mean_mbps
        );
    }

    #[test]
    fn analytic_parallelism_helps_starlink_more() {
        let starlink = flat_conditions(60, 110.0, 62.0, 0.008);
        let cellular = flat_conditions(60, 110.0, 50.0, 0.001);
        let gain = |cfg1: IperfConfig, cfg4: IperfConfig, cond: &[LinkCondition]| {
            let one = IperfRunner::new(cfg1).run_analytic(cond).mean_mbps;
            let four = IperfRunner::new(cfg4).run_analytic(cond).mean_mbps;
            (four - one) / one
        };
        let sl = gain(
            IperfConfig::tcp_down_starlink(1),
            IperfConfig::tcp_down_starlink(4),
            &starlink,
        );
        let cl = gain(
            IperfConfig::tcp_down_cellular(1),
            IperfConfig::tcp_down_cellular(4),
            &cellular,
        );
        assert!(sl > 0.5, "Starlink 4P gain {sl}");
        assert!(cl < 0.4, "cellular 4P gain {cl}");
        assert!(sl > cl);
    }

    #[test]
    fn analytic_outage_yields_zero() {
        let r = IperfRunner::new(IperfConfig::tcp_down_starlink(1));
        let rep = r.run_analytic(&[LinkCondition::OUTAGE; 10]);
        assert_eq!(rep.mean_mbps, 0.0);
    }

    #[test]
    fn packet_level_udp_matches_analytic_on_flat_link() {
        let conditions = flat_conditions(8, 50.0, 40.0, 0.0);
        let analytic = IperfRunner::new(IperfConfig::udp_down()).run_analytic(&conditions);
        let packet = IperfRunner::new(IperfConfig::udp_down().with_engine(Engine::PacketLevel))
            .run_packet_level(&conditions);
        assert!(
            (packet.mean_mbps - analytic.mean_mbps).abs() < 6.0,
            "packet {} vs analytic {}",
            packet.mean_mbps,
            analytic.mean_mbps
        );
    }

    #[test]
    fn packet_level_tcp_sees_loss_gap_like_analytic() {
        // The two engines must agree on the *direction and rough size* of
        // the clean-vs-lossy TCP gap.
        let clean = flat_conditions(10, 60.0, 50.0, 0.0);
        let lossy = flat_conditions(10, 60.0, 50.0, 0.015);
        let cfg = IperfConfig::tcp_down_starlink(1).with_engine(Engine::PacketLevel);
        let p_clean = IperfRunner::new(cfg.clone()).run_packet_level(&clean);
        let p_lossy = IperfRunner::new(cfg).run_packet_level(&lossy);
        assert!(
            p_lossy.mean_mbps < p_clean.mean_mbps * 0.6,
            "packet-level: lossy {} vs clean {}",
            p_lossy.mean_mbps,
            p_clean.mean_mbps
        );
    }

    #[test]
    fn packet_level_dead_link_reports_zero() {
        let cfg = IperfConfig::udp_down().with_engine(Engine::PacketLevel);
        let rep = IperfRunner::new(cfg).run_packet_level(&flat_conditions(5, 0.0, 50.0, 1.0));
        assert_eq!(rep.mean_mbps, 0.0);
        assert_eq!(rep.per_second_mbps.len(), 5);
    }

    #[test]
    fn report_series_length_matches_duration() {
        let conditions = flat_conditions(30, 80.0, 50.0, 0.002);
        for engine in [Engine::Analytic, Engine::PacketLevel] {
            let cfg = IperfConfig::udp_down().with_engine(engine);
            let rep = IperfRunner::new(cfg).run(&LinkTrace::new("x", 0, conditions.clone()));
            assert_eq!(rep.per_second_mbps.len(), 30, "{engine:?}");
        }
    }

    #[test]
    fn cubic_response_monotonic_in_loss() {
        let a = cubic_response_mbps(0.06, 1e-5);
        let b = cubic_response_mbps(0.06, 1e-4);
        let c = cubic_response_mbps(0.06, 1e-3);
        assert!(a > b && b > c);
        assert!(cubic_response_mbps(0.06, 0.0).is_infinite());
    }
}
