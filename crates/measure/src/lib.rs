//! The paper's measurement tool suite, re-implemented against the
//! simulated networks.
//!
//! §3.2 lists three tools; each has a counterpart here:
//!
//! 1. **iPerf** → [`iperf`]: TCP/UDP uplink/downlink bulk transfers with
//!    `-P` parallelism. Two engines: a *packet-level* engine that replays
//!    link conditions through `leo-netsim` + `leo-transport` (used for the
//!    focused §4.2/§6 experiments), and a calibrated *analytic* engine for
//!    campaign-scale sweeps (1,239 tests would take hours at packet
//!    granularity; the analytic engine reproduces the same response
//!    curves in microseconds).
//! 2. **UDP-Ping** → [`udp_ping`]: the paper's custom Android app sending
//!    1024-byte UDP probes and recording RTTs.
//! 3. **5G Tracker** → [`tracker`]: the context logger capturing time,
//!    GPS, speed, and serving network.
//!
//! Plus [`tcpdump`]: retransmission accounting over iPerf runs (Figure 5).

pub mod iperf;
pub mod tcpdump;
pub mod tracker;
pub mod udp_ping;

pub use iperf::{Engine, IperfAudit, IperfConfig, IperfProtocol, IperfReport, IperfRunner};
pub use tcpdump::TcpdumpStats;
pub use tracker::{Tracker, TrackerRow};
pub use udp_ping::{PingReport, UdpPing};
