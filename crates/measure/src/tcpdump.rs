//! Tcpdump-style retransmission accounting.
//!
//! §4.1: "we analyze the Tcpdump traces collected while running iPerf and
//! plot the average TCP packet loss across all networks in Figure 5."
//! The emulated equivalent aggregates retransmission statistics across a
//! set of iPerf runs, per network and direction.

use crate::iperf::IperfReport;
use serde::{Deserialize, Serialize};

/// Aggregated retransmission statistics for one (network, direction).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TcpdumpStats {
    pub runs: u64,
    /// Mean retransmission rate across runs.
    pub mean_retrans_rate: f64,
    /// Max observed across runs.
    pub max_retrans_rate: f64,
}

impl TcpdumpStats {
    /// Aggregates a set of iPerf reports.
    pub fn from_reports<'a>(reports: impl IntoIterator<Item = &'a IperfReport>) -> Self {
        let mut n = 0u64;
        let mut sum = 0.0;
        let mut max = 0.0f64;
        for r in reports {
            n += 1;
            sum += r.retrans_rate;
            max = max.max(r.retrans_rate);
        }
        Self {
            runs: n,
            mean_retrans_rate: if n == 0 { 0.0 } else { sum / n as f64 },
            max_retrans_rate: max,
        }
    }

    /// Mean retransmission rate as a percentage (Figure 5's y-axis).
    pub fn mean_percent(&self) -> f64 {
        self.mean_retrans_rate * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rate: f64) -> IperfReport {
        IperfReport {
            per_second_mbps: vec![10.0],
            mean_mbps: 10.0,
            retrans_rate: rate,
        }
    }

    #[test]
    fn aggregates_mean_and_max() {
        let reports = [report(0.01), report(0.02), report(0.03)];
        let s = TcpdumpStats::from_reports(reports.iter());
        assert_eq!(s.runs, 3);
        assert!((s.mean_retrans_rate - 0.02).abs() < 1e-12);
        assert!((s.max_retrans_rate - 0.03).abs() < 1e-12);
        assert!((s.mean_percent() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_zero() {
        let s = TcpdumpStats::from_reports(std::iter::empty());
        assert_eq!(s.runs, 0);
        assert_eq!(s.mean_retrans_rate, 0.0);
    }
}
