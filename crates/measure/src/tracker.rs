//! The 5G-Tracker counterpart: per-second context logging.
//!
//! §3.2: "To collect information on network type, vehicle speed, GPS
//! location, and signal strength, we employ 5G Tracker … modified to
//! enable its functionality under both Wi-Fi and cellular connectivity."
//!
//! [`Tracker`] joins a drive's environment samples with a network's link
//! trace into rows matching that schema.

use leo_geo::area::AreaType;
use leo_geo::drive::EnvironmentSample;
use leo_link::trace::LinkTrace;
use serde::{Deserialize, Serialize};

/// One logged row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrackerRow {
    /// Campaign time, seconds.
    pub t_s: u64,
    pub lat_deg: f64,
    pub lon_deg: f64,
    pub speed_kmh: f64,
    pub area: AreaType,
    /// Network label (e.g. "MOB", "ATT").
    pub network: String,
    /// Instantaneous available capacity, Mbps (signal-strength proxy).
    pub capacity_mbps: f64,
    pub rtt_ms: f64,
    pub loss: f64,
}

/// The context logger.
#[derive(Debug, Clone, Default)]
pub struct Tracker;

impl Tracker {
    /// Joins samples, areas, and a link trace into tracker rows.
    ///
    /// All three must cover the same seconds; the output length is the
    /// shortest of the inputs.
    pub fn log(
        samples: &[EnvironmentSample],
        areas: &[AreaType],
        trace: &LinkTrace,
    ) -> Vec<TrackerRow> {
        samples
            .iter()
            .zip(areas)
            .filter_map(|(s, &area)| {
                trace.at(s.t_s).map(|c| TrackerRow {
                    t_s: s.t_s,
                    lat_deg: s.position.lat_deg,
                    lon_deg: s.position.lon_deg,
                    speed_kmh: s.speed_kmh,
                    area,
                    network: trace.label.clone(),
                    capacity_mbps: c.capacity_mbps,
                    rtt_ms: c.rtt_ms,
                    loss: c.loss,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::drive::{DayPhase, Weather};
    use leo_geo::point::GeoPoint;
    use leo_link::condition::LinkCondition;

    fn samples(n: u64) -> Vec<EnvironmentSample> {
        (0..n)
            .map(|t| EnvironmentSample {
                t_s: t,
                position: GeoPoint::new(44.0, -93.0),
                speed_kmh: 50.0,
                heading_deg: 0.0,
                day_phase: DayPhase::Day,
                weather: Weather::Clear,
                travelled_km: t as f64 * 0.014,
            })
            .collect()
    }

    #[test]
    fn rows_join_on_time() {
        let s = samples(10);
        let areas = vec![AreaType::Suburban; 10];
        let trace = LinkTrace::new("MOB", 0, vec![LinkCondition::new(100.0, 60.0, 0.01); 10]);
        let rows = Tracker::log(&s, &areas, &trace);
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[3].t_s, 3);
        assert_eq!(rows[3].network, "MOB");
        assert_eq!(rows[3].capacity_mbps, 100.0);
        assert_eq!(rows[3].area, AreaType::Suburban);
    }

    #[test]
    fn missing_trace_seconds_are_skipped() {
        let s = samples(10);
        let areas = vec![AreaType::Rural; 10];
        // Trace only covers seconds 5..10.
        let trace = LinkTrace::new("ATT", 5, vec![LinkCondition::new(50.0, 40.0, 0.0); 5]);
        let rows = Tracker::log(&s, &areas, &trace);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].t_s, 5);
    }
}
