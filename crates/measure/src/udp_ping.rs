//! UDP-Ping: the paper's custom latency prober.
//!
//! §3.2: "we have developed an Android application that sends ping packets
//! using UDP (UDP-Ping), as ICMP ping packets are often blocked by certain
//! servers"; §4.1: "We allocate 1024 bytes to each UDP packet and
//! calculate the round-trip time (RTT) for each acknowledged packet."
//!
//! One probe per second rides the link's conditions: its RTT is the
//! condition's base RTT plus serialisation of the 1024-byte probe, and it
//! is lost (unacknowledged) with the condition's loss probability in each
//! direction.

use leo_link::condition::LinkCondition;
use leo_link::trace::LinkTrace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Probe payload size, bytes (the paper's choice).
pub const PROBE_BYTES: f64 = 1024.0;

/// Results of a UDP-Ping session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PingReport {
    /// RTT of each acknowledged probe, ms.
    pub rtts_ms: Vec<f64>,
    pub probes_sent: u64,
    pub probes_lost: u64,
}

impl PingReport {
    /// Mean RTT, ms; `None` if every probe was lost.
    pub fn mean_rtt_ms(&self) -> Option<f64> {
        if self.rtts_ms.is_empty() {
            None
        } else {
            Some(self.rtts_ms.iter().sum::<f64>() / self.rtts_ms.len() as f64)
        }
    }

    /// Probe loss rate.
    pub fn loss_rate(&self) -> f64 {
        if self.probes_sent == 0 {
            0.0
        } else {
            self.probes_lost as f64 / self.probes_sent as f64
        }
    }
}

/// The UDP-Ping tool.
#[derive(Debug, Clone)]
pub struct UdpPing {
    pub seed: u64,
    /// Probes per second.
    pub rate_hz: u32,
}

impl Default for UdpPing {
    fn default() -> Self {
        Self {
            seed: 0x9143,
            rate_hz: 5,
        }
    }
}

impl UdpPing {
    /// Pings across the downlink trace (conditions are assumed symmetric
    /// enough for RTT purposes, as the probe is tiny in both directions).
    pub fn run(&self, trace: &LinkTrace) -> PingReport {
        self.run_conditions(trace.samples())
    }

    /// Pings across explicit per-second conditions.
    pub fn run_conditions(&self, conditions: &[LinkCondition]) -> PingReport {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut rtts = Vec::new();
        let mut sent = 0;
        let mut lost = 0;
        for c in conditions {
            for _ in 0..self.rate_hz {
                sent += 1;
                if c.is_outage() {
                    lost += 1;
                    continue;
                }
                // Lost on the way out or the way back.
                let p_loss = 1.0 - (1.0 - c.loss) * (1.0 - c.loss);
                if rng.gen_bool(p_loss.clamp(0.0, 1.0)) {
                    lost += 1;
                    continue;
                }
                // Serialisation of the probe both ways at link capacity.
                let ser_ms = 2.0 * PROBE_BYTES * 8.0 / (c.capacity_mbps * 1e6) * 1e3;
                rtts.push(c.rtt_ms + ser_ms);
            }
        }
        PingReport {
            rtts_ms: rtts,
            probes_sent: sent,
            probes_lost: lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(n: usize, mbps: f64, rtt: f64, loss: f64) -> Vec<LinkCondition> {
        vec![LinkCondition::new(mbps, rtt, loss); n]
    }

    #[test]
    fn clean_link_rtt_matches_condition() {
        let ping = UdpPing::default();
        let rep = ping.run_conditions(&flat(10, 100.0, 60.0, 0.0));
        assert_eq!(rep.probes_lost, 0);
        let mean = rep.mean_rtt_ms().unwrap();
        // 60 ms base + ~0.16 ms serialisation.
        assert!((mean - 60.16).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn loss_rate_approximates_double_traversal() {
        let ping = UdpPing {
            seed: 3,
            rate_hz: 100,
        };
        let rep = ping.run_conditions(&flat(100, 100.0, 60.0, 0.05));
        // 1-(0.95)² ≈ 9.75 % probe loss.
        assert!(
            (rep.loss_rate() - 0.0975).abs() < 0.01,
            "loss {}",
            rep.loss_rate()
        );
    }

    #[test]
    fn outage_loses_everything() {
        let ping = UdpPing::default();
        let rep = ping.run_conditions(&[LinkCondition::OUTAGE; 5]);
        assert_eq!(rep.probes_lost, rep.probes_sent);
        assert!(rep.mean_rtt_ms().is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let conditions = flat(50, 80.0, 55.0, 0.02);
        let a = UdpPing::default().run_conditions(&conditions);
        let b = UdpPing::default().run_conditions(&conditions);
        assert_eq!(a.rtts_ms, b.rtts_ms);
        assert_eq!(a.probes_lost, b.probes_lost);
    }

    #[test]
    fn slow_link_inflates_serialisation() {
        let ping = UdpPing::default();
        let fast = ping
            .run_conditions(&flat(10, 200.0, 60.0, 0.0))
            .mean_rtt_ms()
            .unwrap();
        let slow = ping
            .run_conditions(&flat(10, 2.0, 60.0, 0.0))
            .mean_rtt_ms()
            .unwrap();
        assert!(slow > fast + 5.0, "slow {slow} vs fast {fast}");
    }
}
