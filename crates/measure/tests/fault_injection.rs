//! Fault injection across the measurement suite: iPerf (packet level),
//! UDP-Ping, and the tracker, driven over `FaultPipe` outage and
//! loss-burst windows, with the tools' reported loss/RTT statistics
//! reconciled against the pipes' exact drop counters.
//!
//! The load-bearing reconciliations are *exact*: the blaster's datagram
//! count must equal the pipe's `offered_packets`, every drop must land in
//! a named counter (`is_conserved`), injected-fault drops must appear in
//! `dropped_fault` and nowhere else, and a full-length outage must zero
//! the report, the deliveries, and the sink in lockstep.

use leo_link::condition::LinkCondition;
use leo_link::trace::LinkTrace;
use leo_measure::iperf::{Engine, IperfConfig, IperfRunner};
use leo_measure::tracker::Tracker;
use leo_measure::udp_ping::UdpPing;
use leo_netsim::{FaultKind, FaultSchedule};

fn flat(n: usize, mbps: f64, rtt: f64, loss: f64) -> Vec<LinkCondition> {
    vec![LinkCondition::new(mbps, rtt, loss); n]
}

/// Applies a fault schedule to per-second conditions the way the
/// analytic tools see it: an outage window kills the second, a loss
/// window compounds with the channel's own loss, and extra delay on the
/// (single, data-path) pipe inflates the RTT by its one-way magnitude.
fn apply_schedule(conditions: &[LinkCondition], schedule: &FaultSchedule) -> Vec<LinkCondition> {
    conditions
        .iter()
        .enumerate()
        .map(|(t_s, c)| {
            let mut out = *c;
            let ms = t_s as u64 * 1000;
            for w in schedule.windows() {
                if ms < w.start_ms || ms >= w.end_ms {
                    continue;
                }
                match w.kind {
                    FaultKind::Outage => out = LinkCondition::OUTAGE,
                    FaultKind::Loss(p) => {
                        out = LinkCondition::new(
                            out.capacity_mbps,
                            out.rtt_ms,
                            1.0 - (1.0 - out.loss) * (1.0 - p),
                        )
                    }
                    FaultKind::ExtraDelayMs(extra) => {
                        out = LinkCondition::new(
                            out.capacity_mbps,
                            out.rtt_ms + extra as f64,
                            out.loss,
                        )
                    }
                }
            }
            out
        })
        .collect()
}

// ---------------------------------------------------------------------
// iPerf, packet level.
// ---------------------------------------------------------------------

#[test]
fn udp_outage_window_reconciles_with_drop_counters() {
    let conditions = flat(10, 40.0, 40.0, 0.0);
    let faults = FaultSchedule::new().outage_s(3, 6);
    let cfg = IperfConfig::udp_down()
        .with_engine(Engine::PacketLevel)
        .with_faults(faults);
    let (report, audit) = IperfRunner::new(cfg).run_packet_level_audited(&conditions);

    let stats = audit.link_stats[0];
    // Exact: every datagram the blaster sent was offered to the pipe, and
    // every one of them is accounted for by a delivery or a named drop.
    assert_eq!(stats.offered_packets, audit.packets_sent);
    assert!(stats.is_conserved(), "leaky counters: {stats:?}");
    // The channel itself is lossless, so the only loss mechanisms are the
    // injected outage and the (oversubscribed) queue.
    assert_eq!(stats.dropped_random, 0);
    assert!(stats.dropped_fault > 0, "outage window never fired");
    assert_eq!(
        stats.offered_packets,
        stats.delivered_packets + stats.dropped_queue + stats.dropped_fault
    );
    // The sink cannot see more than the pipe admitted.
    assert!(audit.packets_received <= stats.delivered_packets);
    // Mid-outage seconds deliver nothing: second 4 lies strictly inside
    // the window (second 3 may still drain pre-outage in-flight packets).
    assert_eq!(report.per_second_mbps[4], 0.0);
    assert_eq!(report.per_second_mbps[5], 0.0);
    // And the tool's loss figure reflects the injected faults.
    assert!(report.retrans_rate > 0.15, "loss {}", report.retrans_rate);
}

#[test]
fn udp_full_outage_zeroes_report_and_counters_in_lockstep() {
    let conditions = flat(8, 30.0, 40.0, 0.0);
    let cfg = IperfConfig::udp_down()
        .with_engine(Engine::PacketLevel)
        .with_faults(FaultSchedule::new().outage_s(0, 8));
    let (report, audit) = IperfRunner::new(cfg).run_packet_level_audited(&conditions);

    let stats = audit.link_stats[0];
    assert_eq!(report.mean_mbps, 0.0);
    assert_eq!(audit.packets_received, 0);
    assert_eq!(stats.delivered_packets, 0);
    // Exact: every single datagram died in the fault window, none leaked
    // into the random or queue counters.
    assert_eq!(stats.dropped_fault, audit.packets_sent);
    assert_eq!(stats.dropped_random + stats.dropped_queue, 0);
    assert!(stats.is_conserved());
}

#[test]
fn udp_loss_burst_lands_in_dropped_fault_only() {
    let conditions = flat(10, 20.0, 30.0, 0.0);
    let faulted_cfg = IperfConfig::udp_down()
        .with_engine(Engine::PacketLevel)
        .with_faults(FaultSchedule::new().loss_s(2, 8, 0.5));
    let clean_cfg = IperfConfig::udp_down().with_engine(Engine::PacketLevel);

    let (f_rep, f_audit) = IperfRunner::new(faulted_cfg).run_packet_level_audited(&conditions);
    let (c_rep, c_audit) = IperfRunner::new(clean_cfg).run_packet_level_audited(&conditions);

    // The blaster is open-loop and the channel draws no randomness at
    // zero loss, so both runs offer the identical datagram stream.
    assert_eq!(f_audit.packets_sent, c_audit.packets_sent);

    let f = f_audit.link_stats[0];
    let c = c_audit.link_stats[0];
    assert!(f.is_conserved() && c.is_conserved());
    // The burst's casualties are attributed to the fault counter — the
    // channel's own (zero-loss) random counter must stay at zero.
    assert_eq!(f.dropped_random, 0);
    assert_eq!(c.dropped_fault, 0);
    assert!(f.dropped_fault > 0, "loss burst never fired");
    assert!(f_audit.packets_received < c_audit.packets_received);
    assert!(f_rep.mean_mbps < c_rep.mean_mbps);
}

#[test]
fn tcp_outage_window_reconciles_and_recovers() {
    let conditions = flat(12, 30.0, 40.0, 0.0);
    let faults = FaultSchedule::new().outage_s(4, 6);
    let cfg = IperfConfig::tcp_down_starlink(2)
        .with_engine(Engine::PacketLevel)
        .with_faults(faults);
    let (report, audit) = IperfRunner::new(cfg).run_packet_level_audited(&conditions);

    let data = audit.link_stats[0];
    assert!(data.is_conserved(), "leaky counters: {data:?}");
    assert!(data.dropped_fault > 0, "outage window never fired");
    // Receiver-side goodput can never exceed what the data pipe carried.
    let goodput_bytes: f64 = report.per_second_mbps.iter().sum::<f64>() * 1e6 / 8.0;
    assert!(
        goodput_bytes <= data.delivered_bytes as f64,
        "meters claim {goodput_bytes} B, pipe carried {} B",
        data.delivered_bytes
    );
    // TCP must survive a 2-second mid-path outage and resume.
    let after: f64 = report.per_second_mbps[6..].iter().sum();
    assert!(after > 1.0, "no post-outage recovery: {report:?}");

    let clean =
        IperfRunner::new(IperfConfig::tcp_down_starlink(2).with_engine(Engine::PacketLevel))
            .run_packet_level(&conditions);
    assert!(report.mean_mbps < clean.mean_mbps);
}

#[test]
fn empty_schedule_is_transparent_end_to_end() {
    // Wiring the FaultPipe into the engine must not perturb fault-free
    // runs: identical report and identical counters, bit for bit.
    let conditions = flat(8, 25.0, 50.0, 0.01);
    let plain = IperfConfig::udp_down().with_engine(Engine::PacketLevel);
    let wrapped = plain.clone().with_faults(FaultSchedule::new());
    let (a_rep, a_audit) = IperfRunner::new(plain).run_packet_level_audited(&conditions);
    let (b_rep, b_audit) = IperfRunner::new(wrapped).run_packet_level_audited(&conditions);
    assert_eq!(a_rep.per_second_mbps, b_rep.per_second_mbps);
    assert_eq!(a_rep.retrans_rate, b_rep.retrans_rate);
    assert_eq!(a_audit.link_stats, b_audit.link_stats);
    assert_eq!(a_audit.packets_received, b_audit.packets_received);
}

// ---------------------------------------------------------------------
// UDP-Ping over fault windows.
// ---------------------------------------------------------------------

#[test]
fn udp_ping_outage_window_loses_exactly_the_window() {
    let schedule = FaultSchedule::new().outage_s(3, 6);
    let conditions = apply_schedule(&flat(10, 100.0, 60.0, 0.0), &schedule);
    let ping = UdpPing {
        seed: 5,
        rate_hz: 7,
    };
    let rep = ping.run_conditions(&conditions);
    // Exact: the channel is otherwise lossless, so the lost probes are
    // precisely the window's seconds times the probe rate.
    assert_eq!(rep.probes_sent, 70);
    assert_eq!(rep.probes_lost, 3 * 7);
    assert_eq!(rep.rtts_ms.len(), 7 * 7);
    // Surviving probes ride the un-faulted conditions: base RTT plus the
    // (sub-millisecond) serialisation of the 1024-byte probe.
    let mean = rep.mean_rtt_ms().unwrap();
    assert!((mean - 60.16).abs() < 0.1, "mean {mean}");
}

#[test]
fn udp_ping_loss_burst_matches_double_traversal_probability() {
    let schedule = FaultSchedule::new().loss_s(0, 150, 0.3);
    let conditions = apply_schedule(&flat(200, 100.0, 60.0, 0.0), &schedule);
    let ping = UdpPing {
        seed: 11,
        rate_hz: 20,
    };
    let rep = ping.run_conditions(&conditions);
    // 150 s at 1-(0.7)² = 51 % probe loss, 50 s clean → 38.25 % overall.
    let expected = 150.0 / 200.0 * (1.0 - 0.7f64 * 0.7);
    assert!(
        (rep.loss_rate() - expected).abs() < 0.03,
        "loss {} vs expected {expected}",
        rep.loss_rate()
    );
}

#[test]
fn udp_ping_delay_spike_inflates_rtt_by_its_magnitude() {
    let schedule = FaultSchedule::new().extra_delay_s(0, 5, 80);
    let base = flat(10, 100.0, 60.0, 0.0);
    let conditions = apply_schedule(&base, &schedule);
    let spiked = UdpPing::default().run_conditions(&conditions[..5]);
    let calm = UdpPing::default().run_conditions(&conditions[5..]);
    let delta = spiked.mean_rtt_ms().unwrap() - calm.mean_rtt_ms().unwrap();
    assert!((delta - 80.0).abs() < 1e-9, "RTT delta {delta}");
}

// ---------------------------------------------------------------------
// Tracker over fault windows.
// ---------------------------------------------------------------------

#[test]
fn tracker_rows_expose_fault_windows_exactly() {
    use leo_geo::area::AreaType;
    use leo_geo::drive::{DayPhase, EnvironmentSample, Weather};
    use leo_geo::point::GeoPoint;

    let schedule = FaultSchedule::new().outage_s(2, 5).loss_s(7, 9, 0.2);
    let conditions = apply_schedule(&flat(12, 80.0, 55.0, 0.0), &schedule);
    let trace = LinkTrace::new("MOB", 0, conditions);
    let samples: Vec<EnvironmentSample> = (0..12)
        .map(|t| EnvironmentSample {
            t_s: t,
            position: GeoPoint::new(44.0, -93.0),
            speed_kmh: 40.0,
            heading_deg: 0.0,
            day_phase: DayPhase::Day,
            weather: Weather::Clear,
            travelled_km: t as f64 * 0.011,
        })
        .collect();
    let areas = vec![AreaType::Urban; 12];
    let rows = Tracker::log(&samples, &areas, &trace);

    assert_eq!(rows.len(), 12);
    // Exactly the outage window's rows read as dead link context.
    let dead: Vec<u64> = rows
        .iter()
        .filter(|r| r.capacity_mbps == 0.0 && r.loss == 1.0)
        .map(|r| r.t_s)
        .collect();
    assert_eq!(dead, vec![2, 3, 4]);
    // Exactly the loss window's rows carry the injected loss.
    let lossy: Vec<u64> = rows
        .iter()
        .filter(|r| r.loss > 0.0 && r.loss < 1.0)
        .map(|r| r.t_s)
        .collect();
    assert_eq!(lossy, vec![7, 8]);
    for r in &rows {
        if !dead.contains(&r.t_s) {
            assert_eq!(r.capacity_mbps, 80.0, "second {} corrupted", r.t_s);
        }
    }
}
