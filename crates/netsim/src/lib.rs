//! A deterministic discrete-event network emulator.
//!
//! This crate is the reproduction's substitute for **MpShell**, the
//! Mahimahi variant the paper uses for its MPTCP experiments (§6). It
//! provides:
//!
//! * [`SimTime`] — nanosecond simulated time,
//! * [`Packet`] — a transport-agnostic packet with enough header fields
//!   for TCP/MPTCP simulation,
//! * [`Pipe`]s — unidirectional links: [`ConstPipe`] (rate / delay / loss /
//!   drop-tail buffer) and [`TracePipe`] (Mahimahi packet-delivery-schedule
//!   replay with optional per-second loss series),
//! * [`Agent`]s — event-driven endpoints receiving packets and timers,
//! * [`Simulator`] — the event loop wiring agents and pipes into a
//!   topology.
//!
//! Everything is single-threaded and deterministic: events at equal times
//! fire in schedule order, and all randomness flows from one seeded RNG.
//! There is no wall-clock anywhere — simulations are pure functions of
//! their inputs, in the spirit of smoltcp's "no surprises" philosophy.

pub mod packet;
pub mod pipe;
pub mod sim;
pub mod time;

pub use packet::Packet;
pub use pipe::{
    ConstPipe, FaultKind, FaultPipe, FaultSchedule, FaultWindow, JitterPipe, Pipe, PipeStats,
    TracePipe,
};
pub use sim::{Agent, Context, LinkId, NodeId, SimAudit, Simulator};
pub use time::SimTime;

/// Whether strict conformance checking is enabled for this process.
///
/// Controlled by the `LEO_CONFORMANCE` environment variable (`1` or
/// `true`), read once and cached. When on, [`Simulator::run_until`]
/// asserts clock monotonicity and per-pipe packet conservation after
/// every run, and the emulation harnesses layered on top (`leo-core`'s
/// MPTCP replay, the scenario sweep runner, `leo-transport`'s goodput
/// meters) audit their own laws — turning any campaign, figure, or
/// scenario run into a self-checking one at ~zero cost when off.
pub fn strict_checks() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("LEO_CONFORMANCE")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}
