//! The simulated packet.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A transport-agnostic packet.
///
/// The header carries the fields every transport in `leo-transport` needs
/// (sequence/ack numbers plus two auxiliary words for protocol-specific
/// state such as MPTCP's data-level sequence numbers), so pipes never need
/// to know which protocol they are carrying — mirroring how Mahimahi
/// forwards opaque IP datagrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Globally unique packet id (assigned by the sender).
    pub id: u64,
    /// Flow (connection) identifier.
    pub flow: u32,
    /// Wire size in bytes, headers included.
    pub size_bytes: u32,
    /// Transport sequence number (subflow-level for MPTCP).
    pub seq: u64,
    /// Cumulative acknowledgement number.
    pub ack: u64,
    /// True for pure ACKs (no payload).
    pub is_ack: bool,
    /// Auxiliary word A (e.g. MPTCP data sequence number).
    pub aux_a: u64,
    /// Auxiliary word B (e.g. MPTCP data ACK, or echoed timestamp).
    pub aux_b: u64,
    /// Auxiliary word C (e.g. SACK: the sequence that triggered an ACK).
    pub aux_c: u64,
    /// When the packet entered the network.
    pub sent_at: SimTime,
}

/// Size of a pure ACK on the wire, bytes (IP + TCP headers).
pub const ACK_SIZE_BYTES: u32 = 64;

/// Default data-packet size: one MTU, matching Mahimahi's delivery slots.
pub const DATA_SIZE_BYTES: u32 = 1500;

impl Packet {
    /// A data packet.
    pub fn data(id: u64, flow: u32, seq: u64, sent_at: SimTime) -> Self {
        Packet {
            id,
            flow,
            size_bytes: DATA_SIZE_BYTES,
            seq,
            ack: 0,
            is_ack: false,
            aux_a: 0,
            aux_b: 0,
            aux_c: 0,
            sent_at,
        }
    }

    /// A pure ACK.
    pub fn ack(id: u64, flow: u32, ack: u64, sent_at: SimTime) -> Self {
        Packet {
            id,
            flow,
            size_bytes: ACK_SIZE_BYTES,
            seq: 0,
            ack,
            is_ack: true,
            aux_a: 0,
            aux_b: 0,
            aux_c: 0,
            sent_at,
        }
    }

    /// Returns the packet with the auxiliary words set (builder-style).
    pub fn with_aux(mut self, a: u64, b: u64) -> Self {
        self.aux_a = a;
        self.aux_b = b;
        self
    }

    /// Returns the packet with auxiliary word C set (builder-style).
    pub fn with_aux_c(mut self, c: u64) -> Self {
        self.aux_c = c;
        self
    }

    /// Returns the packet with an explicit size.
    pub fn with_size(mut self, size_bytes: u32) -> Self {
        self.size_bytes = size_bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let d = Packet::data(1, 7, 100, SimTime::from_millis(5));
        assert!(!d.is_ack);
        assert_eq!(d.size_bytes, DATA_SIZE_BYTES);
        assert_eq!(d.seq, 100);

        let a = Packet::ack(2, 7, 101, SimTime::ZERO);
        assert!(a.is_ack);
        assert_eq!(a.size_bytes, ACK_SIZE_BYTES);
        assert_eq!(a.ack, 101);
    }

    #[test]
    fn builders_apply() {
        let p = Packet::data(1, 1, 0, SimTime::ZERO)
            .with_aux(11, 22)
            .with_size(512);
        assert_eq!((p.aux_a, p.aux_b, p.size_bytes), (11, 22, 512));
    }
}
