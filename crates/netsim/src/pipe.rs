//! Unidirectional link models ("pipes").
//!
//! A pipe decides, at the moment a packet is offered, when (or whether)
//! that packet will pop out the far end. Computing delivery times at offer
//! time keeps the event loop simple — possible because both pipe models'
//! service schedules are known in advance — while still modelling queueing
//! (drop-tail on queued-but-undelivered packets) exactly.

use crate::time::SimTime;
use leo_link::mahimahi::MahimahiTrace;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Counters every pipe maintains — the emulator's `tcpdump` equivalent,
/// used by `leo-measure` for Figure 5's retransmission accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipeStats {
    pub offered_packets: u64,
    pub offered_bytes: u64,
    pub delivered_packets: u64,
    pub delivered_bytes: u64,
    pub dropped_random: u64,
    pub dropped_queue: u64,
    /// Packets consumed by an injected fault ([`FaultPipe`]) before they
    /// reached the wrapped pipe.
    pub dropped_fault: u64,
}

impl PipeStats {
    /// Fraction of offered packets dropped (any cause).
    pub fn drop_rate(&self) -> f64 {
        if self.offered_packets == 0 {
            0.0
        } else {
            (self.dropped_random + self.dropped_queue + self.dropped_fault) as f64
                / self.offered_packets as f64
        }
    }

    /// Packets the counters fail to account for. Both pipe models decide a
    /// packet's fate at offer time (admitted packets are counted delivered
    /// the moment their delivery is scheduled), so the exact law is
    /// `offered == delivered + dropped_random + dropped_queue +
    /// dropped_fault` with no separate in-flight term; a non-zero residual
    /// means a pipe implementation lost track of a packet.
    pub fn conservation_residual(&self) -> i64 {
        self.offered_packets as i64
            - (self.delivered_packets
                + self.dropped_random
                + self.dropped_queue
                + self.dropped_fault) as i64
    }

    /// Packet- and byte-conservation: every offered packet is either
    /// scheduled for delivery or counted in exactly one drop bucket, and
    /// delivered bytes never exceed offered bytes.
    pub fn is_conserved(&self) -> bool {
        self.conservation_residual() == 0 && self.delivered_bytes <= self.offered_bytes
    }
}

/// A unidirectional link.
pub trait Pipe {
    /// Offers a packet of `size_bytes` at `now`; returns its delivery time
    /// at the far end, or `None` if the pipe drops it.
    fn offer(&mut self, size_bytes: u32, now: SimTime, rng: &mut SmallRng) -> Option<SimTime>;

    /// Cumulative statistics.
    fn stats(&self) -> PipeStats;

    /// Bytes currently queued (offered, not yet delivered).
    fn queued_bytes(&self, now: SimTime) -> u64;

    /// High-water mark of the queue, in bytes, over the pipe's lifetime.
    ///
    /// Kept outside [`PipeStats`] on purpose: the stats struct is
    /// serialized and hashed into conformance goldens, while this is an
    /// observability-only reading. Wrappers forward to their inner pipe;
    /// the default (for pipes without a queue model) reports 0.
    fn queue_hiwater_bytes(&self) -> u64 {
        0
    }
}

/// Boxed pipes are pipes, so wrappers like [`FaultPipe`] and
/// [`JitterPipe`] can be stacked over a dynamically chosen base — the
/// conformance fuzzer composes random `Box<dyn Pipe>` stacks this way.
impl Pipe for Box<dyn Pipe> {
    fn offer(&mut self, size_bytes: u32, now: SimTime, rng: &mut SmallRng) -> Option<SimTime> {
        (**self).offer(size_bytes, now, rng)
    }

    fn stats(&self) -> PipeStats {
        (**self).stats()
    }

    fn queued_bytes(&self, now: SimTime) -> u64 {
        (**self).queued_bytes(now)
    }

    fn queue_hiwater_bytes(&self) -> u64 {
        (**self).queue_hiwater_bytes()
    }
}

/// Constant-rate pipe: serialisation at `rate`, propagation `delay`,
/// i.i.d. random loss, and a drop-tail queue bounded in bytes.
#[derive(Debug, Clone)]
pub struct ConstPipe {
    rate_bytes_per_s: f64,
    delay: SimTime,
    loss: f64,
    queue_limit_bytes: u64,
    /// When the transmitter becomes free.
    busy_until: SimTime,
    /// (delivery_time, size) of in-flight/queued packets, for queue
    /// accounting; cleaned lazily.
    in_flight: VecDeque<(SimTime, u32)>,
    stats: PipeStats,
    queue_hiwater: u64,
}

impl ConstPipe {
    /// Creates a pipe. `rate_mbps` of zero means the pipe never delivers.
    pub fn new(rate_mbps: f64, delay: SimTime, loss: f64, queue_limit_bytes: u64) -> Self {
        Self {
            rate_bytes_per_s: rate_mbps.max(0.0) * 1e6 / 8.0,
            delay,
            loss: loss.clamp(0.0, 1.0),
            queue_limit_bytes,
            busy_until: SimTime::ZERO,
            in_flight: VecDeque::new(),
            stats: PipeStats::default(),
            queue_hiwater: 0,
        }
    }

    fn gc(&mut self, now: SimTime) {
        // A packet stops occupying the queue once its *transmission*
        // completes; since delivery = tx_end + delay, compare against
        // delivery − delay ≤ now ⟺ delivery ≤ now + delay.
        let horizon = now + self.delay;
        while let Some(&(t, _)) = self.in_flight.front() {
            if t <= horizon {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
    }
}

impl Pipe for ConstPipe {
    fn offer(&mut self, size_bytes: u32, now: SimTime, rng: &mut SmallRng) -> Option<SimTime> {
        self.stats.offered_packets += 1;
        self.stats.offered_bytes += size_bytes as u64;
        self.gc(now);

        if self.rate_bytes_per_s <= 0.0 {
            self.stats.dropped_queue += 1;
            return None;
        }
        if self.loss > 0.0 && rng.gen_bool(self.loss) {
            self.stats.dropped_random += 1;
            return None;
        }
        let queued: u64 = self.queued_bytes(now);
        if queued + size_bytes as u64 > self.queue_limit_bytes {
            self.stats.dropped_queue += 1;
            return None;
        }
        self.queue_hiwater = self.queue_hiwater.max(queued + size_bytes as u64);

        let tx_time = SimTime::from_secs_f64(size_bytes as f64 / self.rate_bytes_per_s);
        let start = self.busy_until.max(now);
        let tx_end = start + tx_time;
        self.busy_until = tx_end;
        let delivery = tx_end + self.delay;
        self.in_flight.push_back((delivery, size_bytes));
        self.stats.delivered_packets += 1;
        self.stats.delivered_bytes += size_bytes as u64;
        Some(delivery)
    }

    fn stats(&self) -> PipeStats {
        self.stats
    }

    /// Bytes waiting behind the packet currently in service (the in-service
    /// packet occupies the transmitter, not the queue).
    fn queued_bytes(&self, now: SimTime) -> u64 {
        let horizon = now + self.delay;
        self.in_flight
            .iter()
            .filter(|&&(t, _)| t > horizon)
            .skip(1) // the head packet is in service
            .map(|&(_, s)| s as u64)
            .sum()
    }

    fn queue_hiwater_bytes(&self) -> u64 {
        self.queue_hiwater
    }
}

/// Mahimahi trace-driven pipe: each delivery opportunity in the schedule
/// releases one queued packet; the schedule wraps around at its period.
/// Optionally applies a per-second loss series (index = simulated second),
/// the mechanism used to replay Starlink's time-varying channel loss.
#[derive(Debug, Clone)]
pub struct TracePipe {
    trace: MahimahiTrace,
    delay: SimTime,
    loss_series: Option<Vec<f64>>,
    queue_limit_bytes: u64,
    /// Index of the next unconsumed delivery opportunity.
    opp_cursor: u64,
    in_flight: VecDeque<(SimTime, u32)>,
    stats: PipeStats,
    queue_hiwater: u64,
}

impl TracePipe {
    /// Creates a trace-driven pipe.
    ///
    /// # Panics
    /// Panics if `trace` has no delivery opportunities (a dead link should
    /// be expressed as a loss series of 1.0 or an all-zero capacity trace
    /// handled by the caller).
    pub fn new(trace: MahimahiTrace, delay: SimTime, queue_limit_bytes: u64) -> Self {
        assert!(
            !trace.is_empty(),
            "TracePipe needs at least one delivery opportunity"
        );
        Self {
            trace,
            delay,
            loss_series: None,
            queue_limit_bytes,
            opp_cursor: 0,
            in_flight: VecDeque::new(),
            stats: PipeStats::default(),
            queue_hiwater: 0,
        }
    }

    /// Attaches a per-second loss-probability series; second `i` of
    /// simulation uses `series[i % len]` — the series repeats, mirroring
    /// the Mahimahi delivery schedule's wrap-around, so a replay driven
    /// past the trace end sees capacity and loss from the same second of
    /// the original channel rather than period-0 capacity paired with the
    /// final second's loss.
    pub fn with_loss_series(mut self, series: Vec<f64>) -> Self {
        self.loss_series = if series.is_empty() {
            None
        } else {
            Some(series)
        };
        self
    }

    fn loss_at(&self, now: SimTime) -> f64 {
        match &self.loss_series {
            None => 0.0,
            Some(s) => {
                let idx = (now.as_nanos() / 1_000_000_000) as usize;
                s[idx % s.len()].clamp(0.0, 1.0)
            }
        }
    }

    fn gc(&mut self, now: SimTime) {
        let horizon = now + self.delay;
        while let Some(&(t, _)) = self.in_flight.front() {
            if t <= horizon {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
    }
}

impl Pipe for TracePipe {
    fn offer(&mut self, size_bytes: u32, now: SimTime, rng: &mut SmallRng) -> Option<SimTime> {
        self.stats.offered_packets += 1;
        self.stats.offered_bytes += size_bytes as u64;
        self.gc(now);

        let loss = self.loss_at(now);
        if loss > 0.0 && rng.gen_bool(loss) {
            self.stats.dropped_random += 1;
            return None;
        }
        let queued = self.queued_bytes(now);
        if queued + size_bytes as u64 > self.queue_limit_bytes {
            self.stats.dropped_queue += 1;
            return None;
        }
        self.queue_hiwater = self.queue_hiwater.max(queued + size_bytes as u64);

        // Consume the next delivery opportunity at or after `now` (and
        // after every already-assigned opportunity, preserving FIFO order).
        // The query millisecond is rounded *up*: an opportunity at
        // millisecond m can only carry packets that had arrived by m, so a
        // mid-millisecond arrival waits for the next slot. (Flooring here
        // granted the current millisecond's already-passed opportunity and
        // scheduled deliveries in the past — caught by the conformance
        // fuzzer's delivery-time invariant.)
        let query_ms = now.as_nanos().div_ceil(1_000_000);
        let at_or_after = self.trace.next_opportunity_at_or_after(query_ms);
        self.opp_cursor = self.opp_cursor.max(at_or_after);
        let delivery_ms = self.trace.delivery_time_ms(self.opp_cursor);
        self.opp_cursor += 1;

        let delivery = SimTime::from_millis(delivery_ms) + self.delay;
        self.in_flight.push_back((delivery, size_bytes));
        self.stats.delivered_packets += 1;
        self.stats.delivered_bytes += size_bytes as u64;
        Some(delivery)
    }

    fn stats(&self) -> PipeStats {
        self.stats
    }

    /// Unlike [`ConstPipe::queued_bytes`], the head packet *is* counted:
    /// Mahimahi has no serialisation server — a packet sits in the queue
    /// until its delivery opportunity dequeues it, so every undelivered
    /// packet occupies queue space.
    fn queued_bytes(&self, now: SimTime) -> u64 {
        let horizon = now + self.delay;
        self.in_flight
            .iter()
            .filter(|&&(t, _)| t > horizon)
            .map(|&(_, s)| s as u64)
            .sum()
    }

    fn queue_hiwater_bytes(&self) -> u64 {
        self.queue_hiwater
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn const_pipe_serialises_back_to_back() {
        // 12 Mbps, 1500-B packets → 1 ms per packet.
        let mut p = ConstPipe::new(12.0, SimTime::from_millis(10), 0.0, 1 << 20);
        let mut r = rng();
        let d1 = p.offer(1500, SimTime::ZERO, &mut r).unwrap();
        let d2 = p.offer(1500, SimTime::ZERO, &mut r).unwrap();
        assert_eq!(d1.as_millis(), 11); // 1 ms tx + 10 ms prop
        assert_eq!(d2.as_millis(), 12); // queued behind the first
    }

    #[test]
    fn const_pipe_idle_restart() {
        let mut p = ConstPipe::new(12.0, SimTime::ZERO, 0.0, 1 << 20);
        let mut r = rng();
        let _ = p.offer(1500, SimTime::ZERO, &mut r).unwrap();
        // After a long idle gap, service starts at `now`, not at busy_until.
        let d = p.offer(1500, SimTime::from_secs(5), &mut r).unwrap();
        assert_eq!(d.as_millis(), 5001);
    }

    #[test]
    fn const_pipe_drop_tail() {
        // Queue limit of 3000 bytes = 2 packets of 1500.
        let mut p = ConstPipe::new(1.0, SimTime::ZERO, 0.0, 3000);
        let mut r = rng();
        // 1 Mbps → 12 ms per 1500-B packet; flood at t=0.
        let a = p.offer(1500, SimTime::ZERO, &mut r);
        let b = p.offer(1500, SimTime::ZERO, &mut r);
        let c = p.offer(1500, SimTime::ZERO, &mut r);
        let d = p.offer(1500, SimTime::ZERO, &mut r);
        assert!(a.is_some() && b.is_some());
        // The first packet is in service (not queued), so the third fits…
        assert!(c.is_some());
        // …but the fourth exceeds the two-packet queue.
        assert!(d.is_none());
        assert_eq!(p.stats().dropped_queue, 1);
    }

    #[test]
    fn const_pipe_random_loss_rate() {
        let mut p = ConstPipe::new(1000.0, SimTime::ZERO, 0.25, u64::MAX);
        let mut r = rng();
        let n = 20_000;
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            let _ = p.offer(1500, t, &mut r);
            t += SimTime::from_micros(50);
        }
        let rate = p.stats().dropped_random as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn zero_rate_pipe_drops_everything() {
        let mut p = ConstPipe::new(0.0, SimTime::ZERO, 0.0, 1 << 20);
        assert!(p.offer(100, SimTime::ZERO, &mut rng()).is_none());
    }

    #[test]
    fn trace_pipe_follows_schedule() {
        let trace = MahimahiTrace::from_deliveries(vec![5, 10, 15]);
        let mut p = TracePipe::new(trace, SimTime::ZERO, 1 << 20);
        let mut r = rng();
        let d1 = p.offer(1500, SimTime::ZERO, &mut r).unwrap();
        let d2 = p.offer(1500, SimTime::ZERO, &mut r).unwrap();
        assert_eq!(d1.as_millis(), 5);
        assert_eq!(d2.as_millis(), 10);
        // Next offer after the schedule's end wraps to the next period.
        let d3 = p.offer(1500, SimTime::from_millis(16), &mut r).unwrap();
        assert_eq!(d3.as_millis(), 16 + 5); // period 16, next op at 16+5
    }

    #[test]
    fn trace_pipe_never_delivers_before_the_offer() {
        // Offer mid-millisecond, just past an opportunity: the packet must
        // ride the NEXT opportunity, not the one at 5 ms that has already
        // gone by (which would put the delivery in the past).
        let trace = MahimahiTrace::from_deliveries(vec![5, 10, 15]);
        let mut p = TracePipe::new(trace, SimTime::ZERO, 1 << 20);
        let now = SimTime::from_micros(5_500);
        let d = p.offer(1500, now, &mut rng()).unwrap();
        assert!(d >= now, "delivered at {d:?}, offered at {now:?}");
        assert_eq!(d.as_millis(), 10);
    }

    #[test]
    fn trace_pipe_fifo_order_preserved() {
        let trace = MahimahiTrace::from_deliveries(vec![1, 2, 3, 4, 50]);
        let mut p = TracePipe::new(trace, SimTime::ZERO, 1 << 20);
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for _ in 0..8 {
            let d = p.offer(1500, SimTime::ZERO, &mut r).unwrap();
            assert!(d >= last, "FIFO violated");
            last = d;
        }
    }

    #[test]
    fn trace_pipe_delay_added() {
        let trace = MahimahiTrace::from_deliveries(vec![5]);
        let mut p = TracePipe::new(trace, SimTime::from_millis(20), 1 << 20);
        let d = p.offer(1500, SimTime::ZERO, &mut rng()).unwrap();
        assert_eq!(d.as_millis(), 25);
    }

    #[test]
    fn trace_pipe_loss_series_switches_per_second() {
        let trace = MahimahiTrace::from_capacity_series(&[100.0; 10]);
        let mut p = TracePipe::new(trace, SimTime::ZERO, u64::MAX).with_loss_series(vec![0.0, 1.0]);
        let mut r = rng();
        // Second 0: lossless.
        assert!(p.offer(1500, SimTime::from_millis(100), &mut r).is_some());
        // Second 1 (and every odd second after wrap-around): certain loss.
        assert!(p.offer(1500, SimTime::from_millis(1500), &mut r).is_none());
        assert!(p.offer(1500, SimTime::from_secs(7), &mut r).is_none());
    }

    #[test]
    fn trace_pipe_loss_series_wraps_like_the_schedule() {
        // Loss 1.0 in even seconds, 0.0 in odd ones. Past the series end
        // the pattern must repeat (Mahimahi wrap-around), not freeze at
        // the final entry — with the old clamp, second 2 would have used
        // the last (lossless) entry and delivered.
        let trace = MahimahiTrace::from_capacity_series(&[100.0; 2]);
        let mut p = TracePipe::new(trace, SimTime::ZERO, u64::MAX).with_loss_series(vec![1.0, 0.0]);
        let mut r = rng();
        assert!(p.offer(1500, SimTime::from_millis(100), &mut r).is_none());
        assert!(p.offer(1500, SimTime::from_millis(1100), &mut r).is_some());
        // Wrapped: second 2 ≡ second 0 (lossy), second 3 ≡ second 1.
        assert!(p.offer(1500, SimTime::from_millis(2100), &mut r).is_none());
        assert!(p.offer(1500, SimTime::from_millis(3100), &mut r).is_some());
    }

    #[test]
    fn const_pipe_gc_frees_queue_when_transmission_completes() {
        // 12 Mbps → 1 ms per 1500-B packet; 100 ms propagation; queue
        // limit 3000 B = one in service + two waiting.
        let mut p = ConstPipe::new(12.0, SimTime::from_millis(100), 0.0, 3000);
        let mut r = rng();
        for _ in 0..3 {
            assert!(p.offer(1500, SimTime::ZERO, &mut r).is_some());
        }
        assert!(p.offer(1500, SimTime::ZERO, &mut r).is_none(), "queue full");
        // At t = 1 ms the first packet's *transmission* is done (delivery
        // is only at 101 ms); its queue slot must be free already.
        let e = p.offer(1500, SimTime::from_millis(1), &mut r);
        assert_eq!(e.unwrap().as_millis(), 104); // tx 3→4 ms + 100 ms prop
    }

    #[test]
    fn trace_pipe_counts_head_packet_against_queue() {
        // No serialisation server in Mahimahi: a packet occupies the
        // queue until its delivery opportunity, so with a 3000-B limit
        // only two undelivered packets fit (ConstPipe would admit three).
        let trace = MahimahiTrace::from_deliveries(vec![5, 10, 15, 20]);
        let mut p = TracePipe::new(trace, SimTime::ZERO, 3000);
        let mut r = rng();
        assert!(p.offer(1500, SimTime::ZERO, &mut r).is_some());
        assert!(p.offer(1500, SimTime::ZERO, &mut r).is_some());
        assert!(p.offer(1500, SimTime::ZERO, &mut r).is_none());
        assert_eq!(p.stats().dropped_queue, 1);
        // Once the first opportunity (t = 5 ms) passes, space frees up.
        assert!(p.offer(1500, SimTime::from_millis(6), &mut r).is_some());
    }

    #[test]
    fn trace_pipe_rate_matches_trace() {
        // Saturate a 24 Mbps trace pipe for 5 s: delivered ≈ 24 Mbit/s.
        let trace = MahimahiTrace::from_capacity_series(&[24.0; 5]);
        let mut p = TracePipe::new(trace, SimTime::ZERO, 60_000);
        let mut r = rng();
        let mut delivered = 0u64;
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(5) {
            if let Some(d) = p.offer(1500, t, &mut r) {
                if d < SimTime::from_secs(5) {
                    delivered += 1500 * 8;
                }
            }
            t += SimTime::from_micros(300); // offered ~40 Mbps
        }
        let mbps = delivered as f64 / 5e6;
        assert!((mbps - 24.0).abs() < 1.5, "delivered {mbps} Mbps");
    }

    #[test]
    #[should_panic(expected = "delivery opportunity")]
    fn empty_trace_pipe_panics() {
        let empty = MahimahiTrace::from_capacity_series(&[0.0]);
        let _ = TracePipe::new(empty, SimTime::ZERO, 1 << 20);
    }

    #[test]
    fn queue_hiwater_tracks_peak_occupancy() {
        // ConstPipe: the mark is "queued bytes after admission", and the
        // in-service head packet occupies the transmitter, not the queue —
        // so packets 1–4 read 1500, 1500, 3000, 4500.
        let mut p = ConstPipe::new(1.0, SimTime::ZERO, 0.0, 4500);
        let mut r = rng();
        assert_eq!(p.queue_hiwater_bytes(), 0);
        let _ = p.offer(1500, SimTime::ZERO, &mut r);
        assert_eq!(p.queue_hiwater_bytes(), 1500);
        let _ = p.offer(1500, SimTime::ZERO, &mut r);
        assert_eq!(p.queue_hiwater_bytes(), 1500);
        let _ = p.offer(1500, SimTime::ZERO, &mut r);
        assert_eq!(p.queue_hiwater_bytes(), 3000);
        assert!(p.offer(1500, SimTime::ZERO, &mut r).is_some());
        assert_eq!(p.queue_hiwater_bytes(), 4500);
        // Rejected packets never raise the mark.
        assert!(p.offer(1500, SimTime::ZERO, &mut r).is_none());
        assert_eq!(p.queue_hiwater_bytes(), 4500);
        // The mark is a lifetime peak: it survives the queue draining.
        let _ = p.offer(100, SimTime::from_secs(60), &mut r);
        assert_eq!(p.queue_hiwater_bytes(), 4500);

        // TracePipe counts the head packet too.
        let trace = MahimahiTrace::from_deliveries(vec![5, 10, 15, 20]);
        let mut tp = TracePipe::new(trace, SimTime::ZERO, 3000);
        assert!(tp.offer(1500, SimTime::ZERO, &mut r).is_some());
        assert!(tp.offer(1500, SimTime::ZERO, &mut r).is_some());
        assert_eq!(tp.queue_hiwater_bytes(), 3000);

        // Wrappers forward the inner pipe's reading.
        let wrapped = FaultPipe::new(
            JitterPipe::new(tp, SimTime::from_millis(1)),
            FaultSchedule::new(),
        );
        assert_eq!(wrapped.queue_hiwater_bytes(), 3000);
    }

    #[test]
    fn stats_account_for_everything() {
        let mut p = ConstPipe::new(12.0, SimTime::ZERO, 0.5, 4500);
        let mut r = rng();
        for i in 0..1000 {
            let _ = p.offer(1500, SimTime::from_millis(i), &mut r);
        }
        let s = p.stats();
        assert_eq!(
            s.offered_packets,
            s.delivered_packets + s.dropped_random + s.dropped_queue
        );
        assert!(s.drop_rate() > 0.4);
    }
}

/// A fault-injection wrapper in the smoltcp examples' spirit: adds random
/// per-packet jitter (which reorders at the receiver) on top of an inner
/// pipe. Useful for exercising transport resequencing logic under
/// conditions neither base pipe produces.
#[derive(Debug)]
pub struct JitterPipe<P: Pipe> {
    inner: P,
    max_jitter: SimTime,
}

impl<P: Pipe> JitterPipe<P> {
    /// Wraps `inner`, adding uniform jitter in `[0, max_jitter]` to every
    /// delivery.
    pub fn new(inner: P, max_jitter: SimTime) -> Self {
        Self { inner, max_jitter }
    }
}

impl<P: Pipe> Pipe for JitterPipe<P> {
    fn offer(&mut self, size_bytes: u32, now: SimTime, rng: &mut SmallRng) -> Option<SimTime> {
        let base = self.inner.offer(size_bytes, now, rng)?;
        let j = rng.gen_range(0..=self.max_jitter.as_nanos());
        Some(base + SimTime::from_nanos(j))
    }

    fn stats(&self) -> PipeStats {
        self.inner.stats()
    }

    fn queued_bytes(&self, now: SimTime) -> u64 {
        self.inner.queued_bytes(now)
    }

    fn queue_hiwater_bytes(&self) -> u64 {
        self.inner.queue_hiwater_bytes()
    }
}

#[cfg(test)]
mod jitter_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn jitter_never_reduces_delay_and_can_reorder() {
        let inner = ConstPipe::new(1000.0, SimTime::from_millis(10), 0.0, u64::MAX);
        let mut plain = ConstPipe::new(1000.0, SimTime::from_millis(10), 0.0, u64::MAX);
        let mut jittery = JitterPipe::new(inner, SimTime::from_millis(8));
        let mut r1 = SmallRng::seed_from_u64(4);
        let mut r2 = SmallRng::seed_from_u64(4);
        let mut reordered = false;
        let mut last = SimTime::ZERO;
        for i in 0..200u64 {
            let t = SimTime::from_micros(i * 50);
            let base = plain.offer(1500, t, &mut r1).unwrap();
            let jit = jittery.offer(1500, t, &mut r2).unwrap();
            assert!(jit >= base, "jitter made a packet early");
            if jit < last {
                reordered = true;
            }
            last = jit;
        }
        assert!(reordered, "8 ms jitter over 50 µs spacing must reorder");
    }

    #[test]
    fn zero_jitter_is_transparent() {
        let inner = ConstPipe::new(50.0, SimTime::from_millis(5), 0.0, u64::MAX);
        let mut plain = ConstPipe::new(50.0, SimTime::from_millis(5), 0.0, u64::MAX);
        let mut wrapped = JitterPipe::new(inner, SimTime::ZERO);
        let mut r1 = SmallRng::seed_from_u64(9);
        let mut r2 = SmallRng::seed_from_u64(9);
        for i in 0..50u64 {
            let t = SimTime::from_millis(i);
            assert_eq!(
                wrapped.offer(1500, t, &mut r2),
                plain.offer(1500, t, &mut r1)
            );
        }
        assert_eq!(wrapped.stats().offered_packets, 50);
    }
}

/// What an injected fault does to packets inside its window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Drop every packet (a forced outage).
    Outage,
    /// Additional i.i.d. loss probability on top of the inner pipe's own.
    Loss(f64),
    /// Added one-way delay, milliseconds (an RTT spike contributes half
    /// its magnitude per direction).
    ExtraDelayMs(u64),
}

/// One scheduled fault: a kind active during `[start_ms, end_ms)` of
/// simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    pub start_ms: u64,
    pub end_ms: u64,
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether the window covers `now`.
    pub fn covers(&self, now: SimTime) -> bool {
        let ms = now.as_millis();
        self.start_ms <= ms && ms < self.end_ms
    }
}

/// A schedule of faults for one direction of one path — the scenario
/// engine compiles its typed perturbations down to this, and a
/// [`FaultPipe`] executes it. An empty schedule is exactly transparent
/// (no RNG draws, no timing changes), so fault-capable harnesses can
/// always wrap without disturbing fault-free runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// An empty (transparent) schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any fault is scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Adds a window (builder style).
    pub fn with(mut self, window: FaultWindow) -> Self {
        self.windows.push(window);
        self
    }

    /// Adds a forced outage over `[start_s, end_s)` seconds.
    pub fn outage_s(self, start_s: u64, end_s: u64) -> Self {
        self.with(FaultWindow {
            start_ms: start_s * 1000,
            end_ms: end_s * 1000,
            kind: FaultKind::Outage,
        })
    }

    /// Adds extra random loss over `[start_s, end_s)` seconds.
    pub fn loss_s(self, start_s: u64, end_s: u64, p: f64) -> Self {
        self.with(FaultWindow {
            start_ms: start_s * 1000,
            end_ms: end_s * 1000,
            kind: FaultKind::Loss(p.clamp(0.0, 1.0)),
        })
    }

    /// Adds extra one-way delay over `[start_s, end_s)` seconds.
    pub fn extra_delay_s(self, start_s: u64, end_s: u64, extra_ms: u64) -> Self {
        self.with(FaultWindow {
            start_ms: start_s * 1000,
            end_ms: end_s * 1000,
            kind: FaultKind::ExtraDelayMs(extra_ms),
        })
    }

    /// The windows covering `now`, in schedule order.
    fn active(&self, now: SimTime) -> impl Iterator<Item = &FaultWindow> {
        self.windows.iter().filter(move |w| w.covers(now))
    }
}

/// Composes a [`FaultSchedule`] onto any inner pipe: scheduled outages
/// and loss consume packets *before* they reach the inner pipe (the
/// fault sits between the sender and the link, like a mid-path failure),
/// and scheduled extra delay shifts deliveries the inner pipe grants.
///
/// Drops caused by the schedule are accounted in
/// [`PipeStats::dropped_fault`], so a harness can separate injected
/// degradation from the link's own behaviour.
#[derive(Debug, Clone)]
pub struct FaultPipe<P: Pipe> {
    inner: P,
    schedule: FaultSchedule,
    /// Packets the schedule consumed (they never reached `inner`).
    fault_offered_packets: u64,
    fault_offered_bytes: u64,
    fault_dropped: u64,
}

impl<P: Pipe> FaultPipe<P> {
    /// Wraps `inner` under `schedule`.
    pub fn new(inner: P, schedule: FaultSchedule) -> Self {
        Self {
            inner,
            schedule,
            fault_offered_packets: 0,
            fault_offered_bytes: 0,
            fault_dropped: 0,
        }
    }
}

impl<P: Pipe> Pipe for FaultPipe<P> {
    fn offer(&mut self, size_bytes: u32, now: SimTime, rng: &mut SmallRng) -> Option<SimTime> {
        let mut extra = SimTime::ZERO;
        for w in self.schedule.active(now) {
            let dropped = match w.kind {
                FaultKind::Outage => true,
                FaultKind::Loss(p) => p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)),
                FaultKind::ExtraDelayMs(ms) => {
                    extra += SimTime::from_millis(ms);
                    false
                }
            };
            if dropped {
                self.fault_offered_packets += 1;
                self.fault_offered_bytes += size_bytes as u64;
                self.fault_dropped += 1;
                return None;
            }
        }
        let base = self.inner.offer(size_bytes, now, rng)?;
        Some(base + extra)
    }

    fn stats(&self) -> PipeStats {
        let mut s = self.inner.stats();
        s.offered_packets += self.fault_offered_packets;
        s.offered_bytes += self.fault_offered_bytes;
        s.dropped_fault += self.fault_dropped;
        s
    }

    fn queued_bytes(&self, now: SimTime) -> u64 {
        self.inner.queued_bytes(now)
    }

    fn queue_hiwater_bytes(&self) -> u64 {
        self.inner.queue_hiwater_bytes()
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use rand::SeedableRng;

    fn fast_inner() -> ConstPipe {
        ConstPipe::new(1000.0, SimTime::from_millis(10), 0.0, u64::MAX)
    }

    #[test]
    fn empty_schedule_is_transparent() {
        // Bit-for-bit: same deliveries AND the same RNG stream as the
        // bare pipe, even with a lossy inner pipe drawing randomness.
        let mut plain = ConstPipe::new(80.0, SimTime::from_millis(10), 0.1, 1 << 20);
        let mut wrapped = FaultPipe::new(
            ConstPipe::new(80.0, SimTime::from_millis(10), 0.1, 1 << 20),
            FaultSchedule::new(),
        );
        let mut r1 = SmallRng::seed_from_u64(11);
        let mut r2 = SmallRng::seed_from_u64(11);
        for i in 0..500u64 {
            let t = SimTime::from_micros(i * 137);
            assert_eq!(
                wrapped.offer(1500, t, &mut r2),
                plain.offer(1500, t, &mut r1),
                "packet {i}"
            );
        }
        assert_eq!(wrapped.stats(), plain.stats());
    }

    #[test]
    fn outage_window_drops_exactly_inside() {
        let mut p = FaultPipe::new(fast_inner(), FaultSchedule::new().outage_s(2, 4));
        let mut r = SmallRng::seed_from_u64(1);
        assert!(p.offer(1500, SimTime::from_millis(1999), &mut r).is_some());
        assert!(p.offer(1500, SimTime::from_millis(2000), &mut r).is_none());
        assert!(p.offer(1500, SimTime::from_millis(3999), &mut r).is_none());
        assert!(p.offer(1500, SimTime::from_millis(4000), &mut r).is_some());
        let s = p.stats();
        assert_eq!(s.dropped_fault, 2);
        assert_eq!(s.offered_packets, 4);
        assert_eq!(s.delivered_packets, 2);
        assert!((s.drop_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn loss_window_adds_loss_only_inside() {
        let mut p = FaultPipe::new(fast_inner(), FaultSchedule::new().loss_s(0, 10, 0.5));
        let mut r = SmallRng::seed_from_u64(5);
        let mut dropped_in = 0u32;
        for i in 0..2000u64 {
            if p.offer(100, SimTime::from_micros(i * 500), &mut r)
                .is_none()
            {
                dropped_in += 1;
            }
        }
        let rate = dropped_in as f64 / 2000.0;
        assert!((rate - 0.5).abs() < 0.05, "in-window loss {rate}");
        // Outside the window the pipe is clean.
        for i in 0..200u64 {
            assert!(p
                .offer(
                    100,
                    SimTime::from_secs(20) + SimTime::from_micros(i * 500),
                    &mut r
                )
                .is_some());
        }
    }

    #[test]
    fn extra_delay_shifts_deliveries() {
        let mut plain = fast_inner();
        let mut delayed =
            FaultPipe::new(fast_inner(), FaultSchedule::new().extra_delay_s(0, 1, 150));
        let mut r1 = SmallRng::seed_from_u64(3);
        let mut r2 = SmallRng::seed_from_u64(3);
        let base = plain.offer(1500, SimTime::ZERO, &mut r1).unwrap();
        let spiked = delayed.offer(1500, SimTime::ZERO, &mut r2).unwrap();
        assert_eq!(spiked, base + SimTime::from_millis(150));
        // After the window: no shift.
        let t = SimTime::from_secs(2);
        let base = plain.offer(1500, t, &mut r1).unwrap();
        let late = delayed.offer(1500, t, &mut r2).unwrap();
        assert_eq!(late, base);
    }

    #[test]
    fn overlapping_windows_compose() {
        // Delay + loss overlapping: surviving packets get the delay.
        let sched = FaultSchedule::new()
            .extra_delay_s(0, 10, 40)
            .loss_s(0, 10, 0.3);
        let mut p = FaultPipe::new(fast_inner(), sched);
        let mut r = SmallRng::seed_from_u64(8);
        let mut survivors = 0u32;
        for i in 0..1000u64 {
            let t = SimTime::from_micros(i * 800);
            if let Some(d) = p.offer(100, t, &mut r) {
                assert!(d >= t + SimTime::from_millis(50), "delay missing at {i}");
                survivors += 1;
            }
        }
        let survive_rate = survivors as f64 / 1000.0;
        assert!(
            (survive_rate - 0.7).abs() < 0.05,
            "survivors {survive_rate}"
        );
        assert_eq!(p.stats().dropped_fault as u32, 1000 - survivors);
    }
}
