//! The event loop: agents, links, timers.

use crate::packet::Packet;
use crate::pipe::{Pipe, PipeStats};
use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies a node (agent) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// An event-driven endpoint.
///
/// Agents never see the simulator directly; they receive a [`Context`]
/// through which they emit packets and arm timers. This keeps agents
/// deterministic and unit-testable in isolation.
pub trait Agent: std::any::Any {
    /// A packet arrived over `link`.
    fn on_packet(&mut self, ctx: &mut Context, link: LinkId, packet: Packet);

    /// A timer armed via [`Context::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Context, timer_id: u64);

    /// Upcast for inspection; implement as `self`.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast for inspection; implement as `self`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// The agent's handle to the simulation during a callback.
pub struct Context<'a> {
    now: SimTime,
    node: NodeId,
    actions: Vec<Action>,
    rng: &'a mut SmallRng,
}

enum Action {
    Send { link: LinkId, packet: Packet },
    Timer { node: NodeId, at: SimTime, id: u64 },
}

impl<'a> Context<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this callback belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends `packet` into `link` (stamping `sent_at` with now).
    pub fn send(&mut self, link: LinkId, mut packet: Packet) {
        packet.sent_at = self.now;
        self.actions.push(Action::Send { link, packet });
    }

    /// Arms a timer that fires on this node after `delay`.
    ///
    /// Timers cannot be cancelled; agents should carry an epoch in
    /// `timer_id` and ignore stale firings (the classic lazy-cancel
    /// pattern).
    pub fn set_timer(&mut self, delay: SimTime, timer_id: u64) {
        self.actions.push(Action::Timer {
            node: self.node,
            at: self.now + delay,
            id: timer_id,
        });
    }

    /// Deterministic randomness for the agent.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

#[derive(Debug)]
enum EventKind {
    Arrival {
        node: NodeId,
        link: LinkId,
        packet: Packet,
    },
    Timer {
        node: NodeId,
        id: u64,
    },
}

struct ScheduledEvent {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}
impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties broken by insertion order for determinism.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Link {
    pipe: Box<dyn Pipe>,
    dst: NodeId,
}

/// The discrete-event simulator.
///
/// Build a topology with [`add_node`](Self::add_node) and
/// [`add_link`](Self::add_link), kick it off by invoking an agent through
/// [`with_agent`](Self::with_agent) (e.g. telling a sender to start), then
/// [`run_until`](Self::run_until).
pub struct Simulator {
    now: SimTime,
    events: BinaryHeap<Reverse<ScheduledEvent>>,
    event_seq: u64,
    nodes: Vec<Option<Box<dyn Agent>>>,
    links: Vec<Link>,
    rng: SmallRng,
    /// Events that popped with a timestamp before `now` — always zero
    /// unless the event queue ordering is broken. Checked by the
    /// conformance layer's clock-monotonicity invariant.
    clock_regressions: u64,
}

/// A consistency snapshot of a finished (or paused) simulation, consumed
/// by the `leo-conformance` invariant checkers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimAudit {
    /// Simulated time never went backwards while processing events.
    pub clock_monotonic: bool,
    /// Final counters of every link's pipe, in [`LinkId`] order.
    pub links: Vec<PipeStats>,
}

impl SimAudit {
    /// All audited laws hold: the clock stayed monotonic and every pipe
    /// conserved its packets ([`PipeStats::is_conserved`]).
    pub fn is_clean(&self) -> bool {
        self.clock_monotonic && self.links.iter().all(|s| s.is_conserved())
    }
}

impl Simulator {
    /// Creates an empty simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            now: SimTime::ZERO,
            events: BinaryHeap::new(),
            event_seq: 0,
            nodes: Vec::new(),
            links: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            clock_regressions: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of links added so far.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Whether no processed event ever carried a timestamp before the
    /// simulation clock (the clock-monotonicity invariant).
    pub fn clock_monotonic(&self) -> bool {
        self.clock_regressions == 0
    }

    /// Snapshots the simulation's consistency state for invariant
    /// checking: clock monotonicity plus every pipe's counters.
    pub fn audit(&self) -> SimAudit {
        SimAudit {
            clock_monotonic: self.clock_monotonic(),
            links: self.links.iter().map(|l| l.pipe.stats()).collect(),
        }
    }

    /// Panics unless [`Self::audit`] is clean — the in-tree conformance
    /// hook, called automatically at the end of [`Self::run_until`] when
    /// [`crate::strict_checks`] is enabled (`LEO_CONFORMANCE=1`).
    pub fn assert_conformance(&self) {
        let audit = self.audit();
        assert!(
            audit.clock_monotonic,
            "conformance: simulation clock went backwards ({} regressions)",
            self.clock_regressions
        );
        for (i, s) in audit.links.iter().enumerate() {
            assert!(
                s.is_conserved(),
                "conformance: link {i} violates packet conservation \
                 (residual {} over {s:?})",
                s.conservation_residual()
            );
        }
    }

    /// Adds an agent, returning its id.
    pub fn add_node(&mut self, agent: Box<dyn Agent>) -> NodeId {
        self.nodes.push(Some(agent));
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a unidirectional link delivering into `dst`.
    pub fn add_link(&mut self, pipe: Box<dyn Pipe>, dst: NodeId) -> LinkId {
        assert!(dst.0 < self.nodes.len(), "unknown destination node");
        self.links.push(Link { pipe, dst });
        LinkId(self.links.len() - 1)
    }

    /// Statistics of a link's pipe.
    pub fn link_stats(&self, link: LinkId) -> PipeStats {
        self.links[link.0].pipe.stats()
    }

    /// Runs `f` against an agent with a live [`Context`] — used to start
    /// flows or inject external stimuli. Downcasting to the concrete agent
    /// type is the caller's business.
    pub fn with_agent<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn Agent, &mut Context) -> R,
    ) -> R {
        let mut agent = self.nodes[node.0].take().expect("agent is present");
        let mut ctx = Context {
            now: self.now,
            node,
            actions: Vec::new(),
            rng: &mut self.rng,
        };
        let out = f(agent.as_mut(), &mut ctx);
        let actions = std::mem::take(&mut ctx.actions);
        self.nodes[node.0] = Some(agent);
        self.apply(actions);
        out
    }

    /// Retrieves an agent for inspection after (or during) a run.
    ///
    /// # Panics
    /// Panics if the node id is invalid.
    pub fn agent(&self, node: NodeId) -> &dyn Agent {
        self.nodes[node.0]
            .as_deref()
            .expect("agent is present outside of callbacks")
    }

    /// Downcasts an agent to its concrete type for result extraction.
    ///
    /// # Panics
    /// Panics if the node id is invalid or the type does not match.
    pub fn agent_as<T: Agent>(&self, node: NodeId) -> &T {
        self.agent(node)
            .as_any()
            .downcast_ref::<T>()
            .expect("agent has the requested concrete type")
    }

    fn apply(&mut self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { link, packet } => {
                    let l = &mut self.links[link.0];
                    if let Some(at) = l.pipe.offer(packet.size_bytes, self.now, &mut self.rng) {
                        let kind = EventKind::Arrival {
                            node: l.dst,
                            link,
                            packet,
                        };
                        self.push_event(at, kind);
                    }
                }
                Action::Timer { node, at, id } => {
                    self.push_event(at, EventKind::Timer { node, id });
                }
            }
        }
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(Reverse(ScheduledEvent {
            at,
            seq: self.event_seq,
            kind,
        }));
    }

    /// Processes one event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        type Delivery = Box<dyn FnOnce(&mut dyn Agent, &mut Context)>;
        let Some(Reverse(ev)) = self.events.pop() else {
            return false;
        };
        if ev.at < self.now {
            // Recorded rather than only debug-asserted so release builds
            // surface the violation through `audit()` / `assert_conformance`.
            self.clock_regressions += 1;
            debug_assert!(false, "time went backwards");
        }
        self.now = self.now.max(ev.at);
        let (node, deliver): (NodeId, Delivery) = match ev.kind {
            EventKind::Arrival { node, link, packet } => {
                (node, Box::new(move |a, ctx| a.on_packet(ctx, link, packet)))
            }
            EventKind::Timer { node, id } => (node, Box::new(move |a, ctx| a.on_timer(ctx, id))),
        };
        let mut agent = self.nodes[node.0].take().expect("agent is present");
        let mut ctx = Context {
            now: self.now,
            node,
            actions: Vec::new(),
            rng: &mut self.rng,
        };
        deliver(agent.as_mut(), &mut ctx);
        let actions = std::mem::take(&mut ctx.actions);
        self.nodes[node.0] = Some(agent);
        self.apply(actions);
        true
    }

    /// Runs until the event queue drains or simulated time reaches
    /// `deadline`, whichever comes first. Returns the number of events
    /// processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        self.now = self.now.max(deadline);
        if crate::strict_checks() {
            self.assert_conformance();
        }
        n
    }
}

/// When `LEO_OBS=1`, every finished simulation flushes its per-link
/// counters into the process-wide [`leo_obs`] registry — one aggregate
/// read per sim lifetime, so the event loop itself stays untouched.
impl Drop for Simulator {
    fn drop(&mut self) {
        if !leo_obs::enabled() {
            return;
        }
        leo_obs::incr("netsim.sims", 1);
        let mut hiwater = 0u64;
        for l in &self.links {
            let s = l.pipe.stats();
            leo_obs::incr("netsim.packets.offered", s.offered_packets);
            leo_obs::incr("netsim.packets.delivered", s.delivered_packets);
            leo_obs::incr("netsim.drop.random", s.dropped_random);
            leo_obs::incr("netsim.drop.queue", s.dropped_queue);
            leo_obs::incr("netsim.drop.fault", s.dropped_fault);
            hiwater = hiwater.max(l.pipe.queue_hiwater_bytes());
        }
        leo_obs::gauge_max("netsim.queue.hiwater_bytes", hiwater as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipe::ConstPipe;

    /// Counts arrivals; replies with an ACK per data packet when wired.
    struct Counter {
        received: Vec<(SimTime, Packet)>,
        reply_link: Option<LinkId>,
    }

    impl Agent for Counter {
        fn on_packet(&mut self, ctx: &mut Context, _link: LinkId, packet: Packet) {
            self.received.push((ctx.now(), packet));
            if let Some(l) = self.reply_link {
                if !packet.is_ack {
                    ctx.send(
                        l,
                        Packet::ack(packet.id, packet.flow, packet.seq + 1, ctx.now()),
                    );
                }
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context, _timer_id: u64) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Sends `n` packets on a timer tick, records ACK arrivals.
    struct Ticker {
        out: LinkId,
        remaining: u32,
        next_id: u64,
        acks: Vec<SimTime>,
    }

    impl Agent for Ticker {
        fn on_packet(&mut self, ctx: &mut Context, _link: LinkId, packet: Packet) {
            if packet.is_ack {
                self.acks.push(ctx.now());
            }
        }
        fn on_timer(&mut self, ctx: &mut Context, _timer_id: u64) {
            if self.remaining > 0 {
                self.remaining -= 1;
                let id = self.next_id;
                self.next_id += 1;
                ctx.send(self.out, Packet::data(id, 1, id, ctx.now()));
                ctx.set_timer(SimTime::from_millis(10), 0);
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn ping_pong_round_trip_time() {
        let mut sim = Simulator::new(7);
        // Build: ticker --l1--> counter --l2--> ticker.
        let ticker = sim.add_node(Box::new(Ticker {
            out: LinkId(0),
            remaining: 3,
            next_id: 0,
            acks: Vec::new(),
        }));
        let counter = sim.add_node(Box::new(Counter {
            received: Vec::new(),
            reply_link: Some(LinkId(1)),
        }));
        let l1 = sim.add_link(
            Box::new(ConstPipe::new(
                100.0,
                SimTime::from_millis(20),
                0.0,
                1 << 20,
            )),
            counter,
        );
        assert_eq!(l1, LinkId(0));
        let l2 = sim.add_link(
            Box::new(ConstPipe::new(
                100.0,
                SimTime::from_millis(20),
                0.0,
                1 << 20,
            )),
            ticker,
        );
        assert_eq!(l2, LinkId(1));

        sim.with_agent(ticker, |a, ctx| a.on_timer(ctx, 0));
        sim.run_until(SimTime::from_secs(2));

        let t = sim.agent_as::<Ticker>(ticker);
        assert_eq!(t.acks.len(), 3, "every data packet should be ACKed");
        // RTT ≈ 2 × 20 ms prop + 2 serialisation times; first ACK lands
        // a bit after 40 ms.
        assert!(t.acks[0] >= SimTime::from_millis(40));
        assert!(t.acks[0] < SimTime::from_millis(45));
        assert_eq!(sim.link_stats(l1).delivered_packets, 3);
        assert_eq!(sim.link_stats(l2).delivered_packets, 3);
    }

    #[test]
    fn packets_arrive_in_send_order_at_equal_times() {
        let mut sim = Simulator::new(1);
        let counter = sim.add_node(Box::new(Counter {
            received: Vec::new(),
            reply_link: None,
        }));
        let src = sim.add_node(Box::new(Ticker {
            out: LinkId(0),
            remaining: 0,
            next_id: 0,
            acks: Vec::new(),
        }));
        let l = sim.add_link(
            Box::new(ConstPipe::new(1e6, SimTime::ZERO, 0.0, 1 << 30)),
            counter,
        );
        sim.with_agent(src, |_, ctx| {
            ctx.send(l, Packet::data(1, 1, 1, ctx.now()));
            ctx.send(l, Packet::data(2, 1, 2, ctx.now()));
        });
        sim.run_until(SimTime::from_secs(1));
        let c = sim.agent_as::<Counter>(counter);
        let ids: Vec<u64> = c.received.iter().map(|(_, p)| p.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulator::new(1);
        let sink = sim.add_node(Box::new(Counter {
            received: Vec::new(),
            reply_link: None,
        }));
        let src = sim.add_node(Box::new(Ticker {
            out: LinkId(0),
            remaining: 1000,
            next_id: 0,
            acks: Vec::new(),
        }));
        let _ = sim.add_link(
            Box::new(ConstPipe::new(100.0, SimTime::ZERO, 0.0, 1 << 30)),
            sink,
        );
        sim.with_agent(src, |a, ctx| a.on_timer(ctx, 0));
        // 10 ms tick → about 10 packets in 100 ms.
        sim.run_until(SimTime::from_millis(100));
        let sent = sim.link_stats(LinkId(0)).offered_packets;
        assert!((9..=11).contains(&sent), "sent {sent}");
        assert_eq!(sim.now(), SimTime::from_millis(100));
    }

    #[test]
    fn timers_fire_in_order_with_fifo_ties() {
        struct Recorder {
            fired: Vec<u64>,
        }
        impl Agent for Recorder {
            fn on_packet(&mut self, _: &mut Context, _: LinkId, _: Packet) {}
            fn on_timer(&mut self, _: &mut Context, id: u64) {
                self.fired.push(id);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim = Simulator::new(1);
        let node = sim.add_node(Box::new(Recorder { fired: Vec::new() }));
        sim.with_agent(node, |_, ctx| {
            ctx.set_timer(SimTime::from_millis(30), 3);
            ctx.set_timer(SimTime::from_millis(10), 1);
            ctx.set_timer(SimTime::from_millis(20), 2);
            ctx.set_timer(SimTime::from_millis(10), 11); // tie with id 1
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent_as::<Recorder>(node).fired, vec![1, 11, 2, 3]);
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            let sink = sim.add_node(Box::new(Counter {
                received: Vec::new(),
                reply_link: None,
            }));
            let src = sim.add_node(Box::new(Ticker {
                out: LinkId(0),
                remaining: 200,
                next_id: 0,
                acks: Vec::new(),
            }));
            let _ = sim.add_link(
                Box::new(ConstPipe::new(10.0, SimTime::from_millis(5), 0.3, 1 << 20)),
                sink,
            );
            sim.with_agent(src, |a, ctx| a.on_timer(ctx, 0));
            sim.run_until(SimTime::from_secs(10));
            // Compare the full delivery sequence, not just the count: two
            // seeds can plausibly deliver the same *number* of packets
            // (the count is a ~Binomial(200, 0.7) draw), but an identical
            // surviving id sequence means the loss realisation matched.
            let ids: Vec<u64> = sim
                .agent_as::<Counter>(sink)
                .received
                .iter()
                .map(|(_, p)| p.id)
                .collect();
            (sim.link_stats(LinkId(0)).delivered_packets, ids)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).1, run(6).1); // loss realisation differs
    }
}
