//! Simulated time.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds from the simulation epoch.
///
/// Nanosecond resolution keeps sub-millisecond transport dynamics (ACK
/// clocking at hundreds of Mbps) exact while `u64` still spans ~584 years.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to nanoseconds; negative clamps to
    /// zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(&self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl std::fmt::Display for SimTime {
    /// Formats as seconds with millisecond precision.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(1500).as_millis(), 1500);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert!((SimTime::from_secs_f64(0.25).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn negative_f64_clamps_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(40);
        assert_eq!((a + b).as_millis(), 140);
        assert_eq!((a - b).as_millis(), 60);
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        assert_eq!(a.saturating_since(b).as_millis(), 60);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime::from_nanos(0));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1234).to_string(), "1.234s");
    }
}
