//! Regression armor for the wrap-around fix: the Mahimahi capacity
//! schedule and the per-second loss series must wrap *in phase*, for any
//! trace length and any query time. A replay driven past the trace end
//! has to see capacity and loss from the same second of the original
//! channel — never period-0 capacity paired with a clamped final-second
//! loss (the pre-fix behavior, pinned here property-style rather than by
//! the fixed cases in the unit suite).

use leo_link::mahimahi::MahimahiTrace;
use leo_netsim::{Pipe, SimTime, TracePipe};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds the test subject: a flat 50 Mbps schedule of `len` seconds
/// (dozens of delivery opportunities per millisecond, so every in-trace
/// second contains opportunities) and a loss series that is 1.0 exactly
/// on seconds divisible by `stride` — a recognisable phase marker.
fn marked_pipe(len: usize, stride: usize) -> TracePipe {
    let caps = vec![50.0; len];
    let mm = MahimahiTrace::from_capacity_series(&caps);
    let loss: Vec<f64> = (0..len)
        .map(|i| if i.is_multiple_of(stride) { 1.0 } else { 0.0 })
        .collect();
    TracePipe::new(mm, SimTime::ZERO, u64::MAX).with_loss_series(loss)
}

proptest! {
    /// For an offer in (possibly far-wrapped) second `t_s`:
    /// * the loss series must consult index `t_s % len` — the offer is
    ///   dropped as `dropped_random` iff that second carries the marker;
    /// * the capacity schedule must hand out a delivery opportunity from
    ///   that same second — the returned delivery time, floored to
    ///   seconds, equals `t_s` exactly.
    /// Together these pin the two wraps to the same phase.
    #[test]
    fn capacity_and_loss_wrap_in_phase(
        len in 1usize..40,
        stride in 1usize..7,
        // Query seconds far beyond the trace end force many wraps.
        seconds in prop::collection::vec(0u64..400, 1..20),
        offset_ms in 100u64..900,
    ) {
        let mut rng = SmallRng::seed_from_u64(9);
        // Offers must arrive in time order; the loss/schedule phase of
        // each is independent of the others.
        let mut seconds = seconds;
        seconds.sort_unstable();
        seconds.dedup();
        let mut pipe = marked_pipe(len, stride);
        let mut expected_drops = 0u64;
        for &t_s in &seconds {
            let now = SimTime::from_millis(t_s * 1000 + offset_ms);
            let marked = (t_s as usize % len).is_multiple_of(stride);
            let got = pipe.offer(1500, now, &mut rng);
            if marked {
                expected_drops += 1;
                prop_assert!(
                    got.is_none(),
                    "second {t_s} maps to marked second {} of {len} but was not dropped",
                    t_s as usize % len
                );
            } else {
                let at = got.expect("unmarked second must admit the packet");
                prop_assert!(at >= now);
                let delivery_s = at.as_nanos() / 1_000_000_000;
                prop_assert_eq!(
                    delivery_s, t_s,
                    "delivery opportunity came from second {} but the offer was in \
                     (wrapped) second {}: schedule and loss series are out of phase",
                    delivery_s, t_s
                );
            }
        }
        let stats = pipe.stats();
        prop_assert_eq!(stats.dropped_random, expected_drops);
        prop_assert_eq!(stats.offered_packets, seconds.len() as u64);
        prop_assert!(stats.is_conserved());
    }

    /// The wrapped query agrees with the equivalent in-trace query: an
    /// offer in second `t_s` of a fresh pipe and an offer in second
    /// `t_s + k·len` of another fresh pipe must land on delivery times
    /// exactly `k·len` seconds apart (the schedule is periodic) and see
    /// the same loss decision.
    #[test]
    fn wrapped_query_mirrors_in_trace_query(
        len in 1u64..30,
        wraps in 1u64..12,
        t_in in 0u64..30,
        offset_ms in 0u64..1000,
    ) {
        let t_in = t_in % len;
        let stride = 2usize;
        let mut a = marked_pipe(len as usize, stride);
        let mut b = marked_pipe(len as usize, stride);
        let mut rng_a = SmallRng::seed_from_u64(4);
        let mut rng_b = SmallRng::seed_from_u64(4);
        let now_a = SimTime::from_millis(t_in * 1000 + offset_ms);
        let now_b = SimTime::from_millis((t_in + wraps * len) * 1000 + offset_ms);
        let got_a = a.offer(1500, now_a, &mut rng_a);
        let got_b = b.offer(1500, now_b, &mut rng_b);
        match (got_a, got_b) {
            (None, None) => {}
            (Some(at_a), Some(at_b)) => {
                let shift = SimTime::from_millis(wraps * len * 1000);
                prop_assert_eq!(
                    at_a + shift, at_b,
                    "periodic schedule broke: {:?} + {} wraps != {:?}",
                    at_a, wraps, at_b
                );
            }
            (a, b) => prop_assert!(false, "loss decisions diverged across wraps: {a:?} vs {b:?}"),
        }
    }
}
