//! Zero-cost-when-off observability: a process-wide metrics registry,
//! lightweight span timers, and a JSON run-report sink.
//!
//! The paper this repo reproduces is a *measurement study* — its whole
//! contribution is instrumenting a system well enough to explain why
//! throughput, latency, and loss behave as they do. This crate gives the
//! simulator the same treatment: counters, max-gauges, log-bucketed
//! histograms, and span timers wired through the hot paths (campaign
//! generation, the orbit fast path, `netsim` pipes, the MPTCP emulator,
//! the scenario runner).
//!
//! # The `LEO_OBS` contract
//!
//! Everything is gated behind `LEO_OBS=1` (or `true`), read once and
//! cached in a `OnceLock` — the same pattern as `LEO_CONFORMANCE`. With
//! the gate off, every recording call is a single cached-bool load and an
//! early return: no clocks are read, no locks are taken, no strings are
//! built. With the gate on, recording only ever *reads* simulation state
//! (wall clocks, existing counters) — it never touches an RNG, never
//! changes queue admission, never alters event ordering. The committed
//! golden digests are therefore byte-identical with `LEO_OBS` off and on,
//! at any campaign thread count (pinned by `tests/obs_zero_perturbation.rs`
//! and enforced in CI).
//!
//! # Quick use
//!
//! ```
//! // Recording is a no-op unless the process was started with LEO_OBS=1.
//! leo_obs::incr("my.counter", 1);
//! leo_obs::gauge_max("my.hiwater", 42.0);
//! leo_obs::observe("my.latency_s", 0.003);
//! {
//!     let _span = leo_obs::span("my.phase");
//!     // ... timed work; the histogram `my.phase` records seconds on drop
//! }
//! let report = leo_obs::snapshot();
//! assert!(report.to_json().starts_with('{'));
//! ```

mod registry;
mod report;

pub use registry::{gauge_max, incr, observe, reset, snapshot, span, Histogram, Span};
pub use report::{HistogramSnapshot, ObsReport};

/// Whether observability is enabled for this process (`LEO_OBS=1` or
/// `true`, cached on first call — the `LEO_CONFORMANCE` pattern).
pub fn enabled() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("LEO_OBS")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}
