//! The process-wide metrics registry.
//!
//! Three metric families, all keyed by `&str` names:
//!
//! - **counters** — monotonically increasing `u64` sums ([`incr`]);
//! - **max-gauges** — the maximum `f64` ever recorded ([`gauge_max`]),
//!   for high-water marks;
//! - **histograms** — count/sum/min/max plus fixed log₁₀-scale buckets
//!   ([`observe`]), for latencies and ratios.
//!
//! Every recording function early-returns when [`crate::enabled`] is off,
//! so the registry costs one cached-bool load per call site in normal
//! runs. Recorded names are conventionally dotted lowercase paths
//! (`campaign.stage.trace`, `netsim.drop.queue`); span histograms record
//! seconds.

use crate::report::{HistogramSnapshot, ObsReport};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Buckets per decade of the histogram's log₁₀ grid.
const BUCKETS_PER_DECADE: usize = 4;
/// Decades covered: `[1e-9, 1e9)`.
const DECADES: usize = 18;
/// Total bucket count (values outside the grid clamp to the edges).
pub(crate) const BUCKET_COUNT: usize = BUCKETS_PER_DECADE * DECADES;
/// `log₁₀` of the grid's lower edge.
const LOG10_LO: f64 = -9.0;

/// A fixed-bucket log-scale histogram.
///
/// Exact `count`/`sum`/`min`/`max`, plus `BUCKET_COUNT` buckets spanning
/// `1e-9..1e9` at four per decade for quantile estimates. Non-positive
/// and non-finite values land in the lowest bucket (they still count
/// toward `count` and `min`/`max` bookkeeping uses only finite values).
#[derive(Debug, Clone)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    buckets: Box<[u64; BUCKET_COUNT]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Box::new([0; BUCKET_COUNT]),
        }
    }
}

impl Histogram {
    /// Bucket index for a value.
    fn bucket_of(v: f64) -> usize {
        // NaN fails the comparison too, landing it in bucket 0.
        if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !v.is_finite() {
            return 0;
        }
        let idx = (v.log10() - LOG10_LO) * BUCKETS_PER_DECADE as f64;
        if idx < 0.0 {
            0
        } else {
            (idx as usize).min(BUCKET_COUNT - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Estimated `q`-quantile (`q ∈ [0, 1]`): the geometric midpoint of
    /// the bucket holding the rank, clamped to the exact `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut bucket = BUCKET_COUNT - 1;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                bucket = i;
                break;
            }
        }
        let mid = 10f64.powf(LOG10_LO + (bucket as f64 + 0.5) / BUCKETS_PER_DECADE as f64);
        if self.min.is_finite() && self.max.is_finite() {
            mid.clamp(self.min, self.max)
        } else {
            mid
        }
    }

    /// Read-only snapshot for reports.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let finite_or = |v: f64| if v.is_finite() { v } else { 0.0 };
        HistogramSnapshot {
            count: self.count,
            sum: finite_or(self.sum),
            min: finite_or(self.min),
            max: finite_or(self.max),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges_max: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Observability must never take the process down: recover from a
    // poisoned lock (a panicking worker mid-record) rather than propagate.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Adds `n` to the named counter. No-op unless [`crate::enabled`].
pub fn incr(name: &str, n: u64) {
    if !crate::enabled() {
        return;
    }
    *lock(&registry().counters)
        .entry(name.to_string())
        .or_insert(0) += n;
}

/// Raises the named max-gauge to at least `v`. No-op unless
/// [`crate::enabled`].
pub fn gauge_max(name: &str, v: f64) {
    if !crate::enabled() || !v.is_finite() {
        return;
    }
    let mut g = lock(&registry().gauges_max);
    let e = g.entry(name.to_string()).or_insert(f64::NEG_INFINITY);
    if v > *e {
        *e = v;
    }
}

/// Records `v` into the named histogram. No-op unless [`crate::enabled`].
pub fn observe(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    lock(&registry().histograms)
        .entry(name.to_string())
        .or_default()
        .record(v);
}

/// A span timer: measures wall-clock from construction to drop and
/// records the elapsed **seconds** into the histogram named at
/// construction. When [`crate::enabled`] is off the constructor reads no
/// clock and the drop does nothing.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    inner: Option<(String, Instant)>,
}

impl Span {
    /// Starts a span (reads `Instant::now` only when enabled).
    pub fn new(name: &str) -> Self {
        Self {
            inner: crate::enabled().then(|| (name.to_string(), Instant::now())),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, t0)) = self.inner.take() {
            observe(&name, t0.elapsed().as_secs_f64());
        }
    }
}

/// Starts a [`Span`] over `name`.
pub fn span(name: &str) -> Span {
    Span::new(name)
}

/// Snapshots every metric into an [`ObsReport`]. Always works; with the
/// gate off it returns an empty report with `enabled: false`.
pub fn snapshot() -> ObsReport {
    let r = registry();
    ObsReport {
        enabled: crate::enabled(),
        counters: lock(&r.counters).clone(),
        gauges_max: lock(&r.gauges_max).clone(),
        histograms: lock(&r.histograms)
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect(),
    }
}

/// Clears every metric (test isolation; the `LEO_OBS` gate itself stays
/// cached).
pub fn reset() {
    let r = registry();
    lock(&r.counters).clear();
    lock(&r.gauges_max).clear();
    lock(&r.histograms).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_monotone_and_clamped() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(-1.0), 0);
        assert_eq!(Histogram::bucket_of(f64::NAN), 0);
        assert_eq!(Histogram::bucket_of(1e-12), 0);
        assert_eq!(Histogram::bucket_of(1e12), BUCKET_COUNT - 1);
        let mut last = 0;
        for e in (-8..8).map(|d| 10f64.powi(d)) {
            let b = Histogram::bucket_of(e * 1.0001);
            assert!(b >= last, "bucket order broke at {e}");
            last = b;
        }
        // One decade spans exactly BUCKETS_PER_DECADE buckets.
        assert_eq!(
            Histogram::bucket_of(10.0001) - Histogram::bucket_of(1.0001),
            BUCKETS_PER_DECADE
        );
    }

    #[test]
    fn histogram_tracks_exact_and_estimated_stats() {
        let mut h = Histogram::default();
        for v in [0.001, 0.002, 0.004, 0.008, 0.1] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert!((h.sum - 0.115).abs() < 1e-12);
        assert_eq!(h.min, 0.001);
        assert_eq!(h.max, 0.1);
        // Quantiles are bucket estimates but must stay within [min, max]
        // and be monotone in q.
        let (p50, p90, p99) = (h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
        assert!(h.min <= p50 && p50 <= p90 && p90 <= p99 && p99 <= h.max);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.p50, 0.0);
    }

    #[test]
    fn disabled_process_records_nothing() {
        // Unit tests run without LEO_OBS, so the public API must no-op
        // (the integration test in `tests/enabled.rs` covers the on case).
        if crate::enabled() {
            return; // someone exported LEO_OBS=1 into the test run
        }
        incr("unit.counter", 3);
        gauge_max("unit.gauge", 7.0);
        observe("unit.hist", 1.0);
        drop(span("unit.span"));
        let snap = snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty());
        assert!(snap.gauges_max.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
