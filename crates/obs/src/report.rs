//! The JSON run-report sink.
//!
//! [`ObsReport`] is a plain snapshot of the registry, rendered as pretty
//! JSON (the `ScenarioReport` style) by [`ObsReport::to_json`]. The JSON
//! is hand-rolled — this crate is dependency-free — with stable key order
//! (`BTreeMap`) so two snapshots of the same state render byte-identical.
//!
//! Schema:
//!
//! ```json
//! {
//!   "enabled": true,
//!   "counters": { "netsim.drop.queue": 12 },
//!   "gauges_max": { "netsim.queue.hiwater_bytes": 64500.0 },
//!   "histograms": {
//!     "campaign.stage.trace": {
//!       "count": 1, "sum": 0.18, "min": 0.18, "max": 0.18,
//!       "p50": 0.18, "p90": 0.18, "p99": 0.18
//!     }
//!   }
//! }
//! ```
//!
//! Counters are exact; gauges are running maxima; histogram `count`,
//! `sum`, `min`, `max` are exact while `p50`/`p90`/`p99` are log-bucket
//! estimates. Span histograms record seconds. Wall-clock values are of
//! course not deterministic — the report is a diagnostic artifact and is
//! never golden-checked.

use std::collections::BTreeMap;

/// Read-only summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

/// A snapshot of every metric in the process registry.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Whether `LEO_OBS` was on (an all-empty report with `enabled:
    /// false` usually means the flag was forgotten).
    pub enabled: bool,
    pub counters: BTreeMap<String, u64>,
    pub gauges_max: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl ObsReport {
    /// Counter value, defaulting to 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Pretty JSON, stable key order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"enabled\": {},\n", self.enabled));

        s.push_str("  \"counters\": {");
        push_entries(&mut s, self.counters.iter(), |s, v| {
            s.push_str(&v.to_string())
        });
        s.push_str("},\n");

        s.push_str("  \"gauges_max\": {");
        push_entries(&mut s, self.gauges_max.iter(), |s, v| {
            s.push_str(&json_f64(**v))
        });
        s.push_str("},\n");

        s.push_str("  \"histograms\": {");
        push_entries(&mut s, self.histograms.iter(), |s, h| {
            s.push_str(&format!(
                "{{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
                json_f64(h.p50),
                json_f64(h.p90),
                json_f64(h.p99)
            ))
        });
        s.push_str("}\n}\n");
        s
    }
}

/// Renders `"key": <value>` entries indented under an open brace.
fn push_entries<'a, V: 'a>(
    s: &mut String,
    entries: impl Iterator<Item = (&'a String, V)>,
    mut push_value: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (k, v) in entries {
        s.push_str(if first { "\n" } else { ",\n" });
        first = false;
        s.push_str("    \"");
        s.push_str(&json_escape(k));
        s.push_str("\": ");
        push_value(s, &v);
    }
    if !first {
        s.push_str("\n  ");
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-roundtrip float; non-finite values (never produced by the
/// registry, but a report field could be hand-built) render as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, but keep the float-ness
        // visible for schema readers.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ObsReport {
        let mut counters = BTreeMap::new();
        counters.insert("a.count".to_string(), 3u64);
        counters.insert("b.count".to_string(), 0u64);
        let mut gauges_max = BTreeMap::new();
        gauges_max.insert("q.hiwater".to_string(), 1500.0);
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "stage.t".to_string(),
            HistogramSnapshot {
                count: 2,
                sum: 0.5,
                min: 0.2,
                max: 0.3,
                p50: 0.23,
                p90: 0.3,
                p99: 0.3,
            },
        );
        ObsReport {
            enabled: true,
            counters,
            gauges_max,
            histograms,
        }
    }

    #[test]
    fn json_contains_every_section_and_key() {
        let j = sample_report().to_json();
        for needle in [
            "\"enabled\": true",
            "\"a.count\": 3",
            "\"b.count\": 0",
            "\"q.hiwater\": 1500.0",
            "\"stage.t\"",
            "\"count\": 2",
            "\"p99\": 0.3",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }

    #[test]
    fn json_is_structurally_balanced_and_stable() {
        let j = sample_report().to_json();
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces:\n{j}"
        );
        assert_eq!(j, sample_report().to_json(), "rendering must be stable");
    }

    #[test]
    fn empty_report_renders_empty_objects() {
        let r = ObsReport {
            enabled: false,
            counters: BTreeMap::new(),
            gauges_max: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        let j = r.to_json();
        assert!(j.contains("\"enabled\": false"));
        assert!(j.contains("\"counters\": {}"));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn float_rendering_is_json_safe() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn accessors_default_sensibly() {
        let r = sample_report();
        assert_eq!(r.counter("a.count"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.counter_sum("a."), 3);
        assert_eq!(r.counter_sum(""), 3);
        assert!(r.histogram("stage.t").is_some());
        assert!(r.histogram("nope").is_none());
    }
}
