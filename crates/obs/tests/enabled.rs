//! The enabled path, in its own process so the `LEO_OBS` OnceLock can be
//! set before anything reads it. One test function: the registry is
//! process-global and the gate is process-wide, so splitting into
//! parallel `#[test]`s would race on `reset()`.

#[test]
fn enabled_registry_records_and_reports() {
    std::env::set_var("LEO_OBS", "1");
    assert!(leo_obs::enabled());

    leo_obs::reset();
    leo_obs::incr("t.counter", 2);
    leo_obs::incr("t.counter", 3);
    leo_obs::gauge_max("t.hiwater", 10.0);
    leo_obs::gauge_max("t.hiwater", 4.0); // lower: must not win
    leo_obs::observe("t.hist", 0.25);
    leo_obs::observe("t.hist", 0.5);
    {
        let _span = leo_obs::span("t.span");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let snap = leo_obs::snapshot();
    assert!(snap.enabled);
    assert_eq!(snap.counter("t.counter"), 5);
    assert_eq!(snap.gauges_max.get("t.hiwater"), Some(&10.0));
    let h = snap.histogram("t.hist").expect("histogram recorded");
    assert_eq!(h.count, 2);
    assert_eq!(h.min, 0.25);
    assert_eq!(h.max, 0.5);
    assert!((h.sum - 0.75).abs() < 1e-12);
    let s = snap.histogram("t.span").expect("span recorded");
    assert_eq!(s.count, 1);
    assert!(
        s.sum >= 0.002,
        "span shorter than the slept 2 ms: {}",
        s.sum
    );

    // The JSON report carries everything.
    let j = snap.to_json();
    for needle in ["\"t.counter\": 5", "\"t.hiwater\": 10.0", "\"t.hist\""] {
        assert!(j.contains(needle), "missing {needle} in:\n{j}");
    }

    // Concurrent recording from threads must not lose increments.
    leo_obs::reset();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..1000 {
                    leo_obs::incr("t.parallel", 1);
                }
            });
        }
    });
    assert_eq!(leo_obs::snapshot().counter("t.parallel"), 4000);

    // reset() clears the registry for the next phase of a test.
    leo_obs::reset();
    assert!(leo_obs::snapshot().counters.is_empty());
}
