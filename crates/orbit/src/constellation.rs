//! Walker-delta constellations on circular orbits.
//!
//! Starlink's first (and in 2023, dominant) shell is a Walker-delta
//! constellation: 72 orbital planes at 53° inclination and ~550 km altitude,
//! 22 satellites per plane. Circular-orbit propagation with Earth rotation
//! is accurate to well under a degree of ground geometry over the minutes-
//! to-hours horizons this study simulates, which is ample for elevation,
//! visibility, and latency modelling.

use leo_geo::point::{Ecef, EARTH_RADIUS_KM};
use serde::{Deserialize, Serialize};

/// Standard gravitational parameter of Earth, km³/s².
pub const MU_EARTH: f64 = 398_600.441_8;

/// Sidereal day length in seconds (Earth rotation period).
pub const SIDEREAL_DAY_S: f64 = 86_164.090_5;

/// One shell of a Walker-delta constellation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Shell {
    /// Orbit altitude above the spherical Earth, km.
    pub altitude_km: f64,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Number of equally spaced orbital planes.
    pub planes: u32,
    /// Satellites per plane, equally spaced.
    pub sats_per_plane: u32,
    /// Walker phasing factor `F`: the along-track phase offset between
    /// adjacent planes is `F × 360° / (planes × sats_per_plane)`.
    pub phase_factor: u32,
}

impl Shell {
    /// Starlink shell 1: the 550 km / 53° shell.
    pub fn starlink_shell1() -> Self {
        Shell {
            altitude_km: 550.0,
            inclination_deg: 53.0,
            planes: 72,
            sats_per_plane: 22,
            phase_factor: 39,
        }
    }

    /// Starlink shell 2: 540 km / 53.2°.
    pub fn starlink_shell2() -> Self {
        Shell {
            altitude_km: 540.0,
            inclination_deg: 53.2,
            planes: 72,
            sats_per_plane: 22,
            phase_factor: 39,
        }
    }

    /// Starlink shell 3: 570 km / 70° (higher-latitude coverage).
    pub fn starlink_shell3() -> Self {
        Shell {
            altitude_km: 570.0,
            inclination_deg: 70.0,
            planes: 36,
            sats_per_plane: 20,
            phase_factor: 11,
        }
    }

    /// Starlink shell 4: 560 km / 97.6° (near-polar).
    pub fn starlink_shell4() -> Self {
        Shell {
            altitude_km: 560.0,
            inclination_deg: 97.6,
            planes: 6,
            sats_per_plane: 58,
            phase_factor: 1,
        }
    }

    /// Orbital radius from the Earth's centre, km.
    pub fn orbit_radius_km(&self) -> f64 {
        EARTH_RADIUS_KM + self.altitude_km
    }

    /// Orbital period, seconds (Kepler's third law, circular orbit).
    pub fn period_s(&self) -> f64 {
        let r = self.orbit_radius_km();
        2.0 * std::f64::consts::PI * (r * r * r / MU_EARTH).sqrt()
    }

    /// Orbital speed, km/s.
    pub fn orbital_speed_km_s(&self) -> f64 {
        (MU_EARTH / self.orbit_radius_km()).sqrt()
    }

    /// Total satellites in the shell.
    pub fn total_sats(&self) -> u32 {
        self.planes * self.sats_per_plane
    }
}

/// One satellite: its shell and its slot within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Satellite {
    /// Shell index within the constellation.
    pub shell: u16,
    /// Orbital plane index, `0..planes`.
    pub plane: u16,
    /// Slot within the plane, `0..sats_per_plane`.
    pub slot: u16,
}

/// A multi-shell constellation with position propagation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Constellation {
    shells: Vec<Shell>,
}

impl Constellation {
    /// Builds a constellation from shells.
    pub fn new(shells: Vec<Shell>) -> Self {
        Self { shells }
    }

    /// The Starlink-like default: shell 1 only (the shell that carried
    /// essentially all 2023 service over the campaign's latitudes).
    pub fn starlink() -> Self {
        Self::new(vec![Shell::starlink_shell1()])
    }

    /// The full first-generation Starlink constellation: shells 1–4.
    pub fn starlink_full() -> Self {
        Self::new(vec![
            Shell::starlink_shell1(),
            Shell::starlink_shell2(),
            Shell::starlink_shell3(),
            Shell::starlink_shell4(),
        ])
    }

    /// The shells.
    pub fn shells(&self) -> &[Shell] {
        &self.shells
    }

    /// Total satellite count across shells.
    pub fn total_sats(&self) -> u32 {
        self.shells.iter().map(|s| s.total_sats()).sum()
    }

    /// Iterates over every satellite identifier.
    pub fn satellites(&self) -> impl Iterator<Item = Satellite> + '_ {
        self.shells.iter().enumerate().flat_map(|(si, sh)| {
            (0..sh.planes).flat_map(move |p| {
                (0..sh.sats_per_plane).map(move |k| Satellite {
                    shell: si as u16,
                    plane: p as u16,
                    slot: k as u16,
                })
            })
        })
    }

    /// ECEF position of `sat` at time `t_s` seconds after epoch.
    ///
    /// The orbit is propagated in an inertial frame and then rotated by the
    /// Earth's sidereal rotation to get Earth-fixed coordinates.
    pub fn position_ecef(&self, sat: Satellite, t_s: f64) -> Ecef {
        let shell = &self.shells[sat.shell as usize];
        let r = shell.orbit_radius_km();
        let inc = shell.inclination_deg.to_radians();
        let n_total = shell.total_sats() as f64;

        // Right ascension of the ascending node for this plane.
        let raan = 2.0 * std::f64::consts::PI * sat.plane as f64 / shell.planes as f64;
        // Along-track phase: slot spacing plus Walker inter-plane phasing.
        let mean_anomaly0 = 2.0
            * std::f64::consts::PI
            * (sat.slot as f64 / shell.sats_per_plane as f64
                + shell.phase_factor as f64 * sat.plane as f64 / n_total);
        let mean_motion = 2.0 * std::f64::consts::PI / shell.period_s();
        let u = mean_anomaly0 + mean_motion * t_s; // argument of latitude

        // Position in the orbital plane → inertial frame.
        let (sin_u, cos_u) = u.sin_cos();
        let (sin_i, cos_i) = inc.sin_cos();
        let (sin_o, cos_o) = raan.sin_cos();
        let x_i = r * (cos_o * cos_u - sin_o * sin_u * cos_i);
        let y_i = r * (sin_o * cos_u + cos_o * sin_u * cos_i);
        let z_i = r * (sin_u * sin_i);

        // Inertial → Earth-fixed: rotate by -θ where θ = ω_earth × t.
        let theta = 2.0 * std::f64::consts::PI * t_s / SIDEREAL_DAY_S;
        let (sin_t, cos_t) = theta.sin_cos();
        Ecef {
            x_km: cos_t * x_i + sin_t * y_i,
            y_km: -sin_t * x_i + cos_t * y_i,
            z_km: z_i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell1_dimensions() {
        let s = Shell::starlink_shell1();
        assert_eq!(s.total_sats(), 1584);
        // ~95.6 minutes at 550 km.
        let period_min = s.period_s() / 60.0;
        assert!(
            (95.0..97.0).contains(&period_min),
            "period {period_min} min"
        );
    }

    #[test]
    fn orbital_speed_matches_paper_figure() {
        // §4.2: "Starlink's operation in low earth orbit at an approximate
        // speed of 28,000 km/h".
        let s = Shell::starlink_shell1();
        let kmh = s.orbital_speed_km_s() * 3600.0;
        assert!(
            (26_000.0..28_500.0).contains(&kmh),
            "orbital speed {kmh} km/h"
        );
    }

    #[test]
    fn positions_stay_on_orbit_sphere() {
        let c = Constellation::starlink();
        let r = Shell::starlink_shell1().orbit_radius_km();
        for (i, sat) in c.satellites().enumerate().step_by(97) {
            let p = c.position_ecef(sat, i as f64 * 13.7);
            assert!((p.norm_km() - r).abs() < 1e-6, "sat {i} off-sphere");
        }
    }

    #[test]
    fn latitude_bounded_by_inclination() {
        let c = Constellation::starlink();
        for sat in c.satellites().step_by(53) {
            for t in [0.0, 600.0, 3200.0] {
                let (geo, _) = c.position_ecef(sat, t).to_geo();
                assert!(
                    geo.lat_deg.abs() <= 53.0 + 1e-6,
                    "lat {} exceeds inclination",
                    geo.lat_deg
                );
            }
        }
    }

    #[test]
    fn period_returns_to_inertial_position() {
        // After one orbital period, the satellite returns to the same
        // inertial position; in ECEF it is offset by Earth rotation, so
        // compare via the inertial frame: propagating by exactly one period
        // changes ECEF position only through the Earth-rotation angle.
        let c = Constellation::starlink();
        let sat = Satellite {
            shell: 0,
            plane: 0,
            slot: 0,
        };
        let period = Shell::starlink_shell1().period_s();
        let p0 = c.position_ecef(sat, 0.0);
        let p1 = c.position_ecef(sat, period);
        // Undo earth rotation on p1.
        let theta = 2.0 * std::f64::consts::PI * period / SIDEREAL_DAY_S;
        let (s, co) = theta.sin_cos();
        let x = co * p1.x_km - s * p1.y_km;
        let y = s * p1.x_km + co * p1.y_km;
        assert!((x - p0.x_km).abs() < 1e-3);
        assert!((y - p0.y_km).abs() < 1e-3);
        assert!((p1.z_km - p0.z_km).abs() < 1e-3);
    }

    #[test]
    fn full_constellation_has_four_shells() {
        let c = Constellation::starlink_full();
        assert_eq!(c.shells().len(), 4);
        // 1584 + 1584 + 720 + 348 = 4236 satellites.
        assert_eq!(c.total_sats(), 4236);
        assert_eq!(c.satellites().count(), 4236);
    }

    #[test]
    fn polar_shell_covers_high_latitudes() {
        // The 97.6° shell reaches latitudes the 53° shell cannot.
        use leo_geo::point::GeoPoint;
        let full = Constellation::starlink_full();
        let shell1 = Constellation::starlink();
        let arctic = GeoPoint::new(78.0, 15.0); // Svalbard-like
        let gp = arctic.to_ecef(0.0);
        let visible = |c: &Constellation| {
            c.satellites()
                .filter(|&s| gp.elevation_deg_to(&c.position_ecef(s, 300.0)) >= 25.0)
                .count()
        };
        assert_eq!(visible(&shell1), 0, "53° shell should not serve 78°N");
        assert!(visible(&full) > 0, "polar shell should serve 78°N");
    }

    #[test]
    fn satellites_iterator_is_complete_and_unique() {
        let c = Constellation::starlink();
        let all: Vec<Satellite> = c.satellites().collect();
        assert_eq!(all.len(), 1584);
        let mut dedup = all.clone();
        dedup.sort_by_key(|s| (s.shell, s.plane, s.slot));
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn adjacent_slots_are_spaced_along_track() {
        let c = Constellation::starlink();
        let a = c.position_ecef(
            Satellite {
                shell: 0,
                plane: 0,
                slot: 0,
            },
            0.0,
        );
        let b = c.position_ecef(
            Satellite {
                shell: 0,
                plane: 0,
                slot: 1,
            },
            0.0,
        );
        // In-plane spacing is 360/22 ≈ 16.4° of arc ≈ 2π r / 22 chord-ish.
        let r = Shell::starlink_shell1().orbit_radius_km();
        let expected_chord = 2.0 * r * (std::f64::consts::PI / 22.0).sin();
        assert!((a.distance_km(&b) - expected_chord).abs() < 1.0);
    }
}
