//! Starlink service plans: Roam and Mobility.
//!
//! §3.1: the study compares the **Roam** plan (portable, cheap, standard
//! dish) against the **Mobility** plan (flat high-performance dish, "wider
//! field of view", network priority, >4× hardware cost). §4.1 attributes
//! Mobility's ~2× throughput advantage to its wider field of view, prompter
//! tracking under motion, and advertised congestion priority — exactly the
//! three knobs modelled here.

use serde::{Deserialize, Serialize};

/// A Starlink service plan and its dish characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DishPlan {
    /// Roam (RM): portable standard dish, best-effort priority.
    Roam,
    /// Mobility (MOB): in-motion flat dish, highest network priority.
    Mobility,
}

impl DishPlan {
    /// All plans, in the paper's RM-then-MOB order.
    pub const ALL: [DishPlan; 2] = [DishPlan::Roam, DishPlan::Mobility];

    /// Short label used in figures ("RM" / "MOB").
    pub fn label(&self) -> &'static str {
        match self {
            DishPlan::Roam => "RM",
            DishPlan::Mobility => "MOB",
        }
    }

    /// Minimum usable satellite elevation, degrees.
    ///
    /// The Mobility dish's wider field of view lets it use lower passes,
    /// which both raises the visible-satellite count and shortens the gaps
    /// between usable satellites while moving.
    pub fn min_elevation_deg(&self) -> f64 {
        match self {
            DishPlan::Roam => 35.0,
            DishPlan::Mobility => 22.0,
        }
    }

    /// Fraction of cell capacity granted under the plan's priority tier.
    ///
    /// Mobility is advertised as receiving "the highest priority in the
    /// network, for instance, during congestion"; Roam rides best-effort.
    pub fn priority_factor(&self) -> f64 {
        match self {
            DishPlan::Roam => 0.52,
            DishPlan::Mobility => 1.0,
        }
    }

    /// Seconds of degraded service after a satellite handover while in
    /// motion (re-acquisition / re-pointing time).
    pub fn reacquisition_s(&self) -> u32 {
        match self {
            DishPlan::Roam => 3,
            DishPlan::Mobility => 1,
        }
    }

    /// Speed-sensitivity of tracking: capacity penalty per 100 km/h of
    /// vehicle speed. §4.1 blames Roam's lag "to adjust its orientation
    /// promptly under high mobility"; Mobility is designed for motion and
    /// takes no penalty (Figure 6 shows flat speed curves for MOB).
    pub fn speed_penalty_per_100kmh(&self) -> f64 {
        match self {
            DishPlan::Roam => 0.15,
            DishPlan::Mobility => 0.0,
        }
    }

    /// Relative hardware cost versus Roam (§3.1: "over 4× the hardware
    /// cost"). Used by the cost-effectiveness analysis in `leo-core`.
    pub fn hardware_cost_factor(&self) -> f64 {
        match self {
            DishPlan::Roam => 1.0,
            DishPlan::Mobility => 4.3,
        }
    }
}

impl std::fmt::Display for DishPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobility_has_wider_view_and_priority() {
        assert!(DishPlan::Mobility.min_elevation_deg() < DishPlan::Roam.min_elevation_deg());
        assert!(DishPlan::Mobility.priority_factor() > DishPlan::Roam.priority_factor());
        assert!(DishPlan::Mobility.reacquisition_s() < DishPlan::Roam.reacquisition_s());
    }

    #[test]
    fn mobility_costs_over_4x() {
        assert!(DishPlan::Mobility.hardware_cost_factor() > 4.0);
        assert_eq!(DishPlan::Roam.hardware_cost_factor(), 1.0);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(DishPlan::Roam.label(), "RM");
        assert_eq!(DishPlan::Mobility.label(), "MOB");
    }

    #[test]
    fn only_roam_is_speed_sensitive() {
        assert!(DishPlan::Roam.speed_penalty_per_100kmh() > 0.0);
        assert_eq!(DishPlan::Mobility.speed_penalty_per_100kmh(), 0.0);
    }
}
