//! The orbit fast path: precomputed propagation tables, analytic plane
//! pruning, and a time-coherent visibility searcher.
//!
//! [`crate::visibility::visible_satellites`] propagates **every** satellite
//! of the constellation — 1,584 for shell 1, 4,236 for the full
//! first-generation Starlink — through five `sin_cos` pairs per query, and
//! its z-band prefilter only runs *after* the full `position_ecef` it was
//! meant to avoid. That scan sits under the Starlink link model, pass
//! prediction, and therefore every campaign and scenario sweep. This module
//! indexes the geometry instead (the approach that lets constellation-scale
//! simulators like Hypatia scale), in three layers:
//!
//! 1. **[`PropagationTable`]** — a structure-of-arrays table built once per
//!    [`Constellation`]: per-plane RAAN sine/cosine, per-satellite initial
//!    argument of latitude, per-shell inclination sine/cosine and mean
//!    motion. Propagating one candidate then costs a single `sin_cos` plus
//!    a handful of multiply-adds, and the Earth-rotation angle is shared by
//!    every satellite of a query instead of being recomputed per satellite.
//!
//! 2. **Analytic plane pruning** — for a ground point and elevation mask,
//!    an entire orbital plane is rejected when the observer's angular
//!    distance to the plane's great circle exceeds the central-angle bound
//!    for the shell; within surviving planes the argument-of-latitude
//!    window that can clear the mask maps to a contiguous slot range. This
//!    shrinks candidates from O(total satellites) to O(visible
//!    neighbourhood) — typically a few dozen.
//!
//! 3. **[`VisibilitySearcher`]** — a stateful searcher exploiting the
//!    temporal coherence of 1 Hz drive sampling: the pruning windows are
//!    padded by the worst-case drift over a short horizon (satellite mean
//!    motion, Earth rotation, observer movement budget) and reused across
//!    consecutive queries, so steady-state queries skip even the O(planes)
//!    window rebuild.
//!
//! **Exactness contract:** every layer evaluates the *same* floating-point
//! expressions as [`Constellation::position_ecef`] and
//! [`crate::visibility::visible_satellites`] on the candidates it retains,
//! and the pruning bounds are conservative (the analytic bound plus explicit
//! pads), so the fast path returns results **bit-for-bit equal** to the
//! naive scan. The naive path stays in [`crate::visibility`] as the test
//! oracle; equivalence is pinned by unit tests here and property tests in
//! `tests/fastpath_equivalence.rs`.

use crate::constellation::{Constellation, Satellite, SIDEREAL_DAY_S};
use crate::visibility::SatView;
use leo_geo::point::{Ecef, GeoPoint, EARTH_RADIUS_KM};
use std::f64::consts::PI;

/// Earth's sidereal rotation rate, rad/s.
const EARTH_RATE_RAD_S: f64 = 2.0 * PI / SIDEREAL_DAY_S;

/// Fixed angular pad (rad) absorbing floating-point noise in the analytic
/// pruning bounds. The underlying spherical geometry is exact; accumulated
/// FP error is ~1e-8 rad, so one millirad is a ≥10⁴× safety margin.
const FP_PAD_RAD: f64 = 1e-3;

/// Extra slack (in slot-index units) when rounding an argument-of-latitude
/// window outward to whole slots.
const SLOT_EPS: f64 = 1e-9;

/// Per-shell propagation constants.
#[derive(Debug, Clone)]
struct ShellRow {
    /// Orbital radius, km.
    r_km: f64,
    sin_i: f64,
    cos_i: f64,
    /// Mean motion, rad/s.
    mean_motion: f64,
    sats_per_plane: u32,
    /// Index of this shell's first plane in `PropagationTable::planes`.
    plane_start: usize,
}

/// Per-plane propagation constants.
#[derive(Debug, Clone)]
struct PlaneRow {
    shell: u16,
    plane: u16,
    sin_raan: f64,
    cos_raan: f64,
    /// Global index of this plane's slot-0 satellite in `u0`.
    sat_start: usize,
}

/// Structure-of-arrays propagation table for one [`Constellation`].
///
/// Built once (O(total satellites) with a few trig calls per plane), then
/// every [`position_ecef`](Self::position_ecef) is one `sin_cos` plus fused
/// multiply-adds — and returns **exactly** the same bits as
/// [`Constellation::position_ecef`].
#[derive(Debug, Clone)]
pub struct PropagationTable {
    shells: Vec<ShellRow>,
    planes: Vec<PlaneRow>,
    /// Initial argument of latitude per satellite, indexed by global
    /// satellite index (shells, then planes, then slots — the same order as
    /// [`Constellation::satellites`]).
    u0: Vec<f64>,
}

/// The Earth-rotation angle at `t_s`, as `(sin θ, cos θ)` — shared across
/// all satellites of one query instead of recomputed per satellite.
#[inline]
pub fn earth_rotation(t_s: f64) -> (f64, f64) {
    // Must match `Constellation::position_ecef` bit-for-bit.
    let theta = 2.0 * PI * t_s / SIDEREAL_DAY_S;
    theta.sin_cos()
}

impl PropagationTable {
    /// Precomputes the table for `constellation`.
    pub fn new(constellation: &Constellation) -> Self {
        let mut shells = Vec::with_capacity(constellation.shells().len());
        let mut planes = Vec::new();
        let mut u0 = Vec::with_capacity(constellation.total_sats() as usize);
        for (si, sh) in constellation.shells().iter().enumerate() {
            let n_total = sh.total_sats() as f64;
            let (sin_i, cos_i) = sh.inclination_deg.to_radians().sin_cos();
            shells.push(ShellRow {
                r_km: sh.orbit_radius_km(),
                sin_i,
                cos_i,
                mean_motion: 2.0 * PI / sh.period_s(),
                sats_per_plane: sh.sats_per_plane,
                plane_start: planes.len(),
            });
            for p in 0..sh.planes {
                // Identical expressions to `Constellation::position_ecef`,
                // evaluated once here instead of per query.
                let raan = 2.0 * PI * p as f64 / sh.planes as f64;
                let (sin_raan, cos_raan) = raan.sin_cos();
                planes.push(PlaneRow {
                    shell: si as u16,
                    plane: p as u16,
                    sin_raan,
                    cos_raan,
                    sat_start: u0.len(),
                });
                for k in 0..sh.sats_per_plane {
                    u0.push(
                        2.0 * PI
                            * (k as f64 / sh.sats_per_plane as f64
                                + sh.phase_factor as f64 * p as f64 / n_total),
                    );
                }
            }
        }
        Self { shells, planes, u0 }
    }

    /// Total satellites in the table.
    pub fn total_sats(&self) -> usize {
        self.u0.len()
    }

    /// ECEF position of `sat` at `t_s` — bit-identical to
    /// [`Constellation::position_ecef`], at a fifth of the trig cost.
    #[inline]
    pub fn position_ecef(&self, sat: Satellite, t_s: f64) -> Ecef {
        let (sin_t, cos_t) = earth_rotation(t_s);
        self.position_with_rotation(sat, t_s, sin_t, cos_t)
    }

    /// Like [`position_ecef`](Self::position_ecef) but with the Earth
    /// rotation precomputed by [`earth_rotation`], for sweeps that place
    /// many satellites at one instant.
    #[inline]
    pub fn position_with_rotation(&self, sat: Satellite, t_s: f64, sin_t: f64, cos_t: f64) -> Ecef {
        let shell = &self.shells[sat.shell as usize];
        let plane = &self.planes[shell.plane_start + sat.plane as usize];
        self.position_inner(
            shell,
            plane,
            plane.sat_start + sat.slot as usize,
            t_s,
            sin_t,
            cos_t,
        )
    }

    #[inline]
    fn position_inner(
        &self,
        shell: &ShellRow,
        plane: &PlaneRow,
        sat_idx: usize,
        t_s: f64,
        sin_t: f64,
        cos_t: f64,
    ) -> Ecef {
        // Same operation order as `Constellation::position_ecef` so the
        // result is bit-for-bit identical.
        let u = self.u0[sat_idx] + shell.mean_motion * t_s;
        let (sin_u, cos_u) = u.sin_cos();
        let x_i = shell.r_km * (plane.cos_raan * cos_u - plane.sin_raan * sin_u * shell.cos_i);
        let y_i = shell.r_km * (plane.sin_raan * cos_u + plane.cos_raan * sin_u * shell.cos_i);
        let z_i = shell.r_km * (sin_u * shell.sin_i);
        Ecef {
            x_km: cos_t * x_i + sin_t * y_i,
            y_km: -sin_t * x_i + cos_t * y_i,
            z_km: z_i,
        }
    }
}

/// A contiguous candidate slot range within one orbital plane.
///
/// Slot indices are `k.rem_euclid(sats_per_plane)` for `k` in
/// `k_lo..=k_hi`; the range never covers a slot twice.
#[derive(Debug, Clone, Copy)]
struct PlaneWindow {
    /// Index into `PropagationTable::planes`.
    plane_idx: u32,
    k_lo: i64,
    k_hi: i64,
}

/// Worst-case Earth-central angle (rad) between observer and sub-satellite
/// point at which a satellite of orbital radius `r_orbit_km` still clears
/// `min_elevation_deg` — the same bound as
/// `visibility::max_central_angle_deg`, per shell.
fn central_angle_bound_rad(r_orbit_km: f64, min_elevation_deg: f64) -> f64 {
    let e = min_elevation_deg.to_radians();
    let psi = ((EARTH_RADIUS_KM / r_orbit_km) * e.cos()).acos() - e;
    psi.max(0.0)
}

/// Computes the surviving plane windows for an observer at `gp` (ECEF, on
/// the surface) at time `t_s` against `min_elevation_deg`, with the
/// per-shell central-angle bound padded by `extra_pad_rad` (the coherence
/// drift budget; 0 for a one-shot query).
fn build_windows(
    table: &PropagationTable,
    gp: &Ecef,
    t_s: f64,
    min_elevation_deg: f64,
    extra_pad_rad: f64,
    windows: &mut Vec<PlaneWindow>,
) {
    windows.clear();

    // Observer direction in the inertial frame (inverse of the ECEF
    // rotation in `position_ecef`), normalised. Central angles are
    // rotation-invariant, so pruning in the inertial frame is exact.
    let (sin_t, cos_t) = earth_rotation(t_s);
    let gx = cos_t * gp.x_km - sin_t * gp.y_km;
    let gy = sin_t * gp.x_km + cos_t * gp.y_km;
    let gz = gp.z_km;
    let gn = (gx * gx + gy * gy + gz * gz).sqrt();
    let (gx, gy, gz) = (gx / gn, gy / gn, gz / gn);

    for (si, shell) in table.shells.iter().enumerate() {
        let psi =
            central_angle_bound_rad(shell.r_km, min_elevation_deg) + FP_PAD_RAD + extra_pad_rad;
        let cos_psi = if psi >= PI { -1.0 } else { psi.cos() };
        let spp = shell.sats_per_plane as i64;
        let slot_step = 2.0 * PI / shell.sats_per_plane as f64;
        let plane_end = table
            .shells
            .get(si + 1)
            .map_or(table.planes.len(), |s| s.plane_start);
        for plane_idx in shell.plane_start..plane_end {
            let plane = &table.planes[plane_idx];
            // Plane basis: p̂ points at the ascending node, q̂ 90° ahead
            // along the orbit. A satellite at argument of latitude u sits
            // at cos(u)·p̂ + sin(u)·q̂, so the observer-satellite central
            // angle γ satisfies cos γ = a·cos u + b·sin u = R·cos(u − φ).
            let a = gx * plane.cos_raan + gy * plane.sin_raan;
            let b = (gy * plane.cos_raan - gx * plane.sin_raan) * shell.cos_i + gz * shell.sin_i;
            let r = (a * a + b * b).sqrt();
            // R = cos(angular distance observer → plane great circle):
            // if even the closest point of the circle is beyond ψ, no
            // satellite of this plane can clear the mask — prune it whole.
            if r < cos_psi {
                continue;
            }
            // Argument-of-latitude window: |u − φ| ≤ Δ.
            let delta = if r <= 0.0 {
                PI
            } else {
                (cos_psi / r).clamp(-1.0, 1.0).acos()
            };
            let phi = b.atan2(a);
            // Slots are equally spaced in u: u_k(t) = u0[slot0] + k·step +
            // n·t, so the window maps to a contiguous k-range around c.
            let c = (phi - table.u0[plane.sat_start] - shell.mean_motion * t_s) / slot_step;
            let half = delta / slot_step + SLOT_EPS;
            let k_lo = (c - half).ceil() as i64;
            let k_hi = (c + half).floor() as i64;
            if k_hi < k_lo {
                continue; // window narrower than slot spacing, no slot inside
            }
            let (k_lo, k_hi) = if k_hi - k_lo + 1 >= spp {
                (0, spp - 1) // window wraps the whole plane
            } else {
                (k_lo, k_hi)
            };
            windows.push(PlaneWindow {
                plane_idx: plane_idx as u32,
                k_lo,
                k_hi,
            });
        }
    }

    if leo_obs::enabled() && !table.planes.is_empty() {
        leo_obs::incr("orbit.prune.planes_total", table.planes.len() as u64);
        leo_obs::incr("orbit.prune.planes_survived", windows.len() as u64);
        leo_obs::observe(
            "orbit.prune.survivor_frac",
            windows.len() as f64 / table.planes.len() as f64,
        );
    }
}

/// Evaluates the exact visibility test on every candidate in `windows`,
/// appending hits to `out` (cleared first) in ascending
/// (shell, plane, slot) order — the same order as the naive scan.
fn scan_windows(
    table: &PropagationTable,
    windows: &[PlaneWindow],
    gp: &Ecef,
    t_s: f64,
    min_elevation_deg: f64,
    out: &mut Vec<SatView>,
) {
    out.clear();
    let (sin_t, cos_t) = earth_rotation(t_s);
    for w in windows {
        let plane = &table.planes[w.plane_idx as usize];
        let shell = &table.shells[plane.shell as usize];
        let spp = shell.sats_per_plane as i64;
        for k in w.k_lo..=w.k_hi {
            let slot = k.rem_euclid(spp) as usize;
            let sat_idx = plane.sat_start + slot;
            let sp = table.position_inner(shell, plane, sat_idx, t_s, sin_t, cos_t);
            let elevation = gp.elevation_deg_to(&sp);
            if elevation >= min_elevation_deg {
                out.push(SatView {
                    sat: Satellite {
                        shell: plane.shell,
                        plane: plane.plane,
                        slot: slot as u16,
                    },
                    elevation_deg: elevation,
                    range_km: gp.distance_km(&sp),
                });
            }
        }
    }
    out.sort_unstable_by_key(|v| (v.sat.shell, v.sat.plane, v.sat.slot));
}

/// One-shot fast visibility query: identical results to
/// [`crate::visibility::visible_satellites`], O(planes + visible
/// neighbourhood) instead of O(total satellites).
pub fn visible_satellites_fast(
    table: &PropagationTable,
    ground: &GeoPoint,
    t_s: f64,
    min_elevation_deg: f64,
) -> Vec<SatView> {
    let gp = ground.to_ecef(0.0);
    let mut windows = Vec::new();
    build_windows(table, &gp, t_s, min_elevation_deg, 0.0, &mut windows);
    let mut out = Vec::new();
    scan_windows(table, &windows, &gp, t_s, min_elevation_deg, &mut out);
    out
}

/// One-shot fast best-satellite query: identical result to
/// [`crate::visibility::best_satellite`].
pub fn best_satellite_fast(
    table: &PropagationTable,
    ground: &GeoPoint,
    t_s: f64,
    min_elevation_deg: f64,
) -> Option<SatView> {
    best_of(visible_satellites_fast(
        table,
        ground,
        t_s,
        min_elevation_deg,
    ))
}

/// Highest-elevation view, resolving ties like the naive
/// `Iterator::max_by` over ascending (shell, plane, slot) order.
fn best_of(views: Vec<SatView>) -> Option<SatView> {
    views
        .into_iter()
        .max_by(|a, b| a.elevation_deg.total_cmp(&b.elevation_deg))
}

/// Cached pruning state of a [`VisibilitySearcher`].
#[derive(Debug, Clone)]
struct SearchState {
    anchor_t_s: f64,
    anchor_ecef: Ecef,
    min_elevation_deg: f64,
    windows: Vec<PlaneWindow>,
}

/// A stateful, time-coherent visibility searcher.
///
/// Drive traces sample the link at 1 Hz and re-select satellites every few
/// seconds; between consecutive queries the candidate neighbourhood barely
/// moves. The searcher pads the pruning windows by the worst-case drift
/// over a short horizon — satellite mean motion, Earth rotation, and an
/// observer movement budget — and reuses them until the horizon expires,
/// the observer leaves the budget, or the mask changes. Every candidate
/// still passes through the exact elevation test, so results remain
/// bit-identical to the naive scan (and to the one-shot fast path).
#[derive(Debug, Clone)]
pub struct VisibilitySearcher {
    table: PropagationTable,
    /// Window validity horizon, seconds.
    horizon_s: f64,
    /// How far (km) the observer may move before windows are rebuilt.
    move_budget_km: f64,
    state: Option<SearchState>,
    scratch: Vec<SatView>,
}

impl VisibilitySearcher {
    /// Default window validity horizon: a little over one Starlink
    /// scheduler slot, so slot-aligned reselections reuse windows.
    pub const DEFAULT_HORIZON_S: f64 = 16.0;
    /// Default observer movement budget: generous for highway driving
    /// within one horizon (200 km/h × 16 s ≈ 0.9 km).
    pub const DEFAULT_MOVE_BUDGET_KM: f64 = 2.0;

    /// Builds a searcher (and its [`PropagationTable`]) for `constellation`.
    pub fn new(constellation: &Constellation) -> Self {
        Self::with_table(PropagationTable::new(constellation))
    }

    /// Builds a searcher around an existing table.
    pub fn with_table(table: PropagationTable) -> Self {
        Self {
            table,
            horizon_s: Self::DEFAULT_HORIZON_S,
            move_budget_km: Self::DEFAULT_MOVE_BUDGET_KM,
            state: None,
            scratch: Vec::new(),
        }
    }

    /// Overrides the coherence horizon (seconds). Larger horizons rebuild
    /// windows less often but scan slightly wider candidate ranges.
    pub fn with_horizon(mut self, horizon_s: f64) -> Self {
        self.horizon_s = horizon_s.max(0.0);
        self.state = None;
        self
    }

    /// The underlying propagation table.
    pub fn table(&self) -> &PropagationTable {
        &self.table
    }

    /// All satellites above the mask — identical to
    /// [`crate::visibility::visible_satellites`].
    pub fn visible(&mut self, ground: &GeoPoint, t_s: f64, min_elevation_deg: f64) -> Vec<SatView> {
        let mut out = Vec::new();
        self.visible_into(ground, t_s, min_elevation_deg, &mut out);
        out
    }

    /// Allocation-reusing variant of [`visible`](Self::visible): clears
    /// `out` and fills it with the visible views in (shell, plane, slot)
    /// order.
    pub fn visible_into(
        &mut self,
        ground: &GeoPoint,
        t_s: f64,
        min_elevation_deg: f64,
        out: &mut Vec<SatView>,
    ) {
        let gp = ground.to_ecef(0.0);
        self.ensure_windows(&gp, t_s, min_elevation_deg);
        let state = self.state.as_ref().expect("windows just ensured");
        scan_windows(
            &self.table,
            &state.windows,
            &gp,
            t_s,
            min_elevation_deg,
            out,
        );
    }

    /// The visible satellite with the highest elevation — identical to
    /// [`crate::visibility::best_satellite`].
    pub fn best(&mut self, ground: &GeoPoint, t_s: f64, min_elevation_deg: f64) -> Option<SatView> {
        let mut out = std::mem::take(&mut self.scratch);
        self.visible_into(ground, t_s, min_elevation_deg, &mut out);
        let best = out
            .iter()
            .copied()
            .max_by(|a, b| a.elevation_deg.total_cmp(&b.elevation_deg));
        self.scratch = out;
        best
    }

    /// Number of candidate satellites the current windows admit — the
    /// pruning diagnostic (naive scans always evaluate every satellite).
    pub fn candidate_count(&self) -> usize {
        self.state.as_ref().map_or(0, |s| {
            s.windows
                .iter()
                .map(|w| (w.k_hi - w.k_lo + 1) as usize)
                .sum()
        })
    }

    fn ensure_windows(&mut self, gp: &Ecef, t_s: f64, min_elevation_deg: f64) {
        leo_obs::incr("orbit.searcher.queries", 1);
        let valid = self.state.as_ref().is_some_and(|s| {
            s.min_elevation_deg == min_elevation_deg
                && t_s >= s.anchor_t_s
                && t_s - s.anchor_t_s <= self.horizon_s
                && gp.distance_km(&s.anchor_ecef) <= self.move_budget_km
        });
        if valid {
            leo_obs::incr("orbit.searcher.reuses", 1);
            return;
        }
        leo_obs::incr("orbit.searcher.rebuilds", 1);
        // Drift pad: how far the window geometry can shift over the
        // horizon. Satellites advance by n·H along their plane, the
        // observer's inertial direction rotates with the Earth, and the
        // observer may drive up to the movement budget.
        let max_mean_motion = self
            .table
            .shells
            .iter()
            .map(|s| s.mean_motion)
            .fold(0.0, f64::max);
        let pad = (max_mean_motion + EARTH_RATE_RAD_S) * self.horizon_s
            + self.move_budget_km / EARTH_RADIUS_KM;
        let mut windows = self.state.take().map(|s| s.windows).unwrap_or_default();
        build_windows(&self.table, gp, t_s, min_elevation_deg, pad, &mut windows);
        self.state = Some(SearchState {
            anchor_t_s: t_s,
            anchor_ecef: *gp,
            min_elevation_deg,
            windows,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::Shell;
    use crate::visibility::{best_satellite, visible_satellites};

    fn exotic_constellation() -> Constellation {
        // Equatorial, polar, and retrograde shells: the pruning geometry's
        // worst corners.
        Constellation::new(vec![
            Shell {
                altitude_km: 600.0,
                inclination_deg: 0.0,
                planes: 1,
                sats_per_plane: 30,
                phase_factor: 0,
            },
            Shell {
                altitude_km: 500.0,
                inclination_deg: 90.0,
                planes: 8,
                sats_per_plane: 12,
                phase_factor: 3,
            },
            Shell::starlink_shell4(),
        ])
    }

    #[test]
    fn table_positions_are_bit_identical() {
        for c in [Constellation::starlink_full(), exotic_constellation()] {
            let table = PropagationTable::new(&c);
            for (i, sat) in c.satellites().enumerate().step_by(13) {
                for t in [0.0, 17.3, 991.1, 86_400.0] {
                    let naive = c.position_ecef(sat, t);
                    let fast = table.position_ecef(sat, t + i as f64 * 0.0);
                    assert_eq!(naive, fast, "sat {sat:?} t {t}");
                }
            }
        }
    }

    #[test]
    fn one_shot_fast_path_matches_naive() {
        let c = Constellation::starlink_full();
        let table = PropagationTable::new(&c);
        for (lat, lon) in [(44.5, -93.0), (0.0, 10.0), (78.0, 15.0), (-55.0, -70.0)] {
            let g = GeoPoint::new(lat, lon);
            for t in [0.0, 300.0, 4411.0, 50_000.0] {
                for mask in [20.0, 25.0, 40.0, 55.0] {
                    let naive = visible_satellites(&c, &g, t, mask);
                    let fast = visible_satellites_fast(&table, &g, t, mask);
                    assert_eq!(naive, fast, "({lat},{lon}) t={t} mask={mask}");
                }
            }
        }
    }

    #[test]
    fn one_shot_fast_path_matches_naive_on_exotic_shells() {
        let c = exotic_constellation();
        let table = PropagationTable::new(&c);
        for (lat, lon) in [(0.0, 0.0), (89.0, 45.0), (-89.0, 0.0), (53.0, 170.0)] {
            let g = GeoPoint::new(lat, lon);
            for t in [0.0, 777.7, 12_345.6] {
                let naive = visible_satellites(&c, &g, t, 15.0);
                let fast = visible_satellites_fast(&table, &g, t, 15.0);
                assert_eq!(naive, fast, "({lat},{lon}) t={t}");
            }
        }
    }

    #[test]
    fn best_satellite_fast_matches_naive() {
        let c = Constellation::starlink();
        let table = PropagationTable::new(&c);
        let g = GeoPoint::new(44.0, -90.0);
        for t in 0..40 {
            let t = t as f64 * 77.0;
            assert_eq!(
                best_satellite(&c, &g, t, 25.0),
                best_satellite_fast(&table, &g, t, 25.0),
            );
        }
    }

    #[test]
    fn searcher_matches_naive_through_a_coherent_drive() {
        // A 1 Hz drive: the searcher reuses windows within its horizon and
        // must still agree exactly with the naive scan at every step.
        let c = Constellation::starlink_full();
        let mut searcher = VisibilitySearcher::new(&c);
        let start = GeoPoint::new(46.5, -100.0);
        for t in 0..120u64 {
            let ground = start.destination(90.0, t as f64 * 0.03); // ~108 km/h
            let t_s = 5000.0 + t as f64;
            let naive = visible_satellites(&c, &ground, t_s, 25.0);
            let fast = searcher.visible(&ground, t_s, 25.0);
            assert_eq!(naive, fast, "t={t_s}");
            assert_eq!(
                best_satellite(&c, &ground, t_s, 25.0),
                searcher.best(&ground, t_s, 25.0),
            );
        }
    }

    #[test]
    fn searcher_handles_time_jumps_and_mask_changes() {
        let c = Constellation::starlink();
        let mut searcher = VisibilitySearcher::new(&c);
        let g = GeoPoint::new(44.5, -93.0);
        // Forward beyond the horizon, backwards, and mask flips.
        for (t, mask) in [
            (0.0, 25.0),
            (1.0, 25.0),
            (500.0, 25.0),
            (100.0, 25.0),
            (100.0, 45.0),
            (101.0, 25.0),
        ] {
            assert_eq!(
                visible_satellites(&c, &g, t, mask),
                searcher.visible(&g, t, mask),
                "t={t} mask={mask}"
            );
        }
    }

    #[test]
    fn pruning_rejects_most_of_the_constellation() {
        let c = Constellation::starlink_full();
        let mut searcher = VisibilitySearcher::new(&c);
        let g = GeoPoint::new(44.5, -93.0);
        searcher.visible(&g, 0.0, 25.0);
        let candidates = searcher.candidate_count();
        let total = c.total_sats() as usize;
        assert!(
            candidates * 10 < total,
            "pruning left {candidates} of {total} candidates"
        );
        assert!(candidates > 0);
    }

    #[test]
    fn far_observer_prunes_polar_only_planes() {
        // From the equator, the 97.6° shell's planes mostly pass nearly
        // overhead at some point, but a mid-inclination observer far from a
        // plane's ground track must reject it without propagating anyone.
        let c = Constellation::starlink();
        let table = PropagationTable::new(&c);
        let g = GeoPoint::new(80.0, 0.0); // poleward of the 53° shell
        let views = visible_satellites_fast(&table, &g, 0.0, 25.0);
        assert!(views.is_empty());
    }
}
