//! Ground stations and bent-pipe path latency.
//!
//! In 2023, Starlink user traffic was bent-pipe: user dish → satellite →
//! ground station (gateway) → point of presence → Internet. The paper's
//! Eq. 1 estimates the one-way satellite hop at ≈1.835 ms (550 km at the
//! speed of light); the end-to-end RTT of 50–100 ms is dominated by
//! gateway/PoP backhaul and scheduling, which the link model adds on top of
//! the geometric component computed here.

use crate::constellation::{Constellation, Satellite};
use crate::SPEED_OF_LIGHT_KM_S;
use leo_geo::point::{Ecef, GeoPoint};
use serde::{Deserialize, Serialize};

/// A Starlink gateway ground station.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundStation {
    pub name: String,
    pub location: GeoPoint,
}

/// The set of gateways serving the campaign region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundStationDb {
    stations: Vec<GroundStation>,
}

impl GroundStationDb {
    /// Builds a database from explicit stations.
    pub fn from_stations(stations: Vec<GroundStation>) -> Self {
        Self { stations }
    }

    /// Synthetic gateways spread across the five-state corridor, spaced
    /// like the real ~500–900 km gateway grid in the US Midwest.
    pub fn midwest_corridor() -> Self {
        let mk = |name: &str, lat: f64, lon: f64| GroundStation {
            name: name.to_string(),
            location: GeoPoint::new(lat, lon),
        };
        Self::from_stations(vec![
            mk("gw-lakeport", 45.3, -93.9),
            mk("gw-brewton", 43.5, -89.9),
            mk("gw-lakeshore", 41.5, -88.4),
            mk("gw-cornfield", 41.9, -93.2),
            mk("gw-sioux", 43.6, -96.4),
            mk("gw-rapid", 44.2, -103.0),
        ])
    }

    /// The stations.
    pub fn stations(&self) -> &[GroundStation] {
        &self.stations
    }

    /// The station nearest to `p`, with its distance in km.
    pub fn nearest(&self, p: &GeoPoint) -> Option<(&GroundStation, f64)> {
        self.stations
            .iter()
            .map(|s| (s, s.location.distance_km(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
    }

    /// Geometric one-way latency (ms) of the bent pipe user → `sat` →
    /// nearest gateway, at time `t_s`.
    ///
    /// Returns `None` when the database is empty.
    pub fn bent_pipe_one_way_ms(
        &self,
        constellation: &Constellation,
        sat: Satellite,
        user: &GeoPoint,
        t_s: f64,
    ) -> Option<f64> {
        self.bent_pipe_one_way_ms_at(&constellation.position_ecef(sat, t_s), user)
    }

    /// [`bent_pipe_one_way_ms`](Self::bent_pipe_one_way_ms) with the
    /// satellite position already propagated — lets fast-path callers
    /// (which have the position from a [`crate::fastpath::PropagationTable`])
    /// skip re-propagating the satellite.
    pub fn bent_pipe_one_way_ms_at(&self, sat_pos: &Ecef, user: &GeoPoint) -> Option<f64> {
        let (gw, _) = self.nearest(user)?;
        let up_km = user.to_ecef(0.0).distance_km(sat_pos);
        let down_km = gw.location.to_ecef(0.0).distance_km(sat_pos);
        Some((up_km + down_km) / SPEED_OF_LIGHT_KM_S * 1000.0)
    }
}

/// Geometric bent-pipe RTT floor, ms: the user↔satellite↔gateway path has
/// two ~altitude-length radio legs, each traversed out and back, so the
/// floor is `2 (round trip) × 2 (legs) × Eq. 1` ≈ 7.34 ms at 550 km. Used
/// by the link model both as the pre-acquisition initial value and as the
/// fallback when no gateway database is configured.
pub fn bent_pipe_floor_rtt_ms() -> f64 {
    2.0 * 2.0 * eq1_one_way_latency_ms(550.0)
}

/// The paper's Eq. 1: one-way latency of the vertical satellite hop, ms.
///
/// `Latency = distance / speed_of_light` with distance = orbital altitude.
pub fn eq1_one_way_latency_ms(altitude_km: f64) -> f64 {
    altitude_km / SPEED_OF_LIGHT_KM_S * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::Constellation;
    use crate::visibility::best_satellite;

    #[test]
    fn eq1_reproduces_paper_value() {
        // Paper: 550 km / 299792 km/s = 1.835 ms.
        let ms = eq1_one_way_latency_ms(550.0);
        assert!((ms - 1.835).abs() < 0.001, "got {ms}");
    }

    #[test]
    fn nearest_gateway_on_corridor() {
        let db = GroundStationDb::midwest_corridor();
        let (gw, d) = db.nearest(&GeoPoint::new(45.0, -93.2)).unwrap();
        assert_eq!(gw.name, "gw-lakeport");
        assert!(d < 100.0);
    }

    #[test]
    fn bent_pipe_latency_is_single_digit_ms() {
        // With the user near a gateway and a high-elevation satellite, the
        // geometric bent-pipe one-way latency is a handful of milliseconds —
        // consistent with the paper's observation that the satellite hop
        // contributes little to the 50–100 ms RTTs.
        let c = Constellation::starlink();
        let db = GroundStationDb::midwest_corridor();
        let user = GeoPoint::new(44.9, -93.3);
        let view = best_satellite(&c, &user, 500.0, 25.0).expect("satellite visible");
        let ms = db.bent_pipe_one_way_ms(&c, view.sat, &user, 500.0).unwrap();
        assert!((1.8..15.0).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn bent_pipe_latency_lower_bounded_by_eq1() {
        let c = Constellation::starlink();
        let db = GroundStationDb::midwest_corridor();
        let user = GeoPoint::new(43.5, -96.7);
        for t in [0.0, 120.0, 480.0] {
            if let Some(view) = best_satellite(&c, &user, t, 25.0) {
                let ms = db.bent_pipe_one_way_ms(&c, view.sat, &user, t).unwrap();
                assert!(ms >= 2.0 * eq1_one_way_latency_ms(550.0) * 0.99);
            }
        }
    }

    #[test]
    fn empty_db_returns_none() {
        let db = GroundStationDb::from_stations(vec![]);
        assert!(db.nearest(&GeoPoint::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn bent_pipe_floor_is_four_eq1_hops() {
        // Pin the intended bent-pipe RTT floor: the up and down legs
        // (user↔sat, sat↔gateway) each cross ~550 km twice per round trip,
        // i.e. 4 × 1.835 ms ≈ 7.34 ms — NOT 2 × 1.835 (one leg, one way
        // double-counted) nor 8 × (both legs counted twice over).
        let floor = bent_pipe_floor_rtt_ms();
        assert!((floor - 4.0 * 1.835).abs() < 0.01, "got {floor}");
        assert_eq!(floor, 2.0 * 2.0 * eq1_one_way_latency_ms(550.0));
    }

    #[test]
    fn bent_pipe_at_position_matches_propagating_variant() {
        let c = Constellation::starlink();
        let db = GroundStationDb::midwest_corridor();
        let user = GeoPoint::new(44.9, -93.3);
        let view = best_satellite(&c, &user, 500.0, 25.0).expect("satellite visible");
        let via_constellation = db.bent_pipe_one_way_ms(&c, view.sat, &user, 500.0);
        let via_position = db.bent_pipe_one_way_ms_at(&c.position_ecef(view.sat, 500.0), &user);
        assert_eq!(via_constellation, via_position);
    }
}
