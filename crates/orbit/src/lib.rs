//! LEO satellite constellation simulator.
//!
//! The paper measured the real Starlink service; this crate stands in for
//! that service with a physics-grounded simulator:
//!
//! * [`constellation`] — Walker-delta shells propagated on circular orbits
//!   (the default is Starlink shell 1: 550 km, 53°, 72 planes × 22
//!   satellites, the shell that served the paper's 2023 campaign),
//! * [`visibility`] — elevation/azimuth geometry, visible-satellite
//!   queries, and pass prediction,
//! * [`fastpath`] — the indexed visibility fast path: precomputed
//!   propagation tables, analytic plane pruning, and a time-coherent
//!   [`VisibilitySearcher`] returning bit-identical results to the naive
//!   scan at a fraction of the cost,
//! * [`ground`] — ground stations and bent-pipe path latency; Eq. 1 of the
//!   paper (≈1.835 ms one-way at 550 km) falls out of this geometry,
//! * [`obstruction`] — the line-of-sight blockage process that §2 and §5
//!   identify as Starlink's key weakness in built-up areas,
//! * [`dish`] — the Roam and Mobility service plans (field of view,
//!   tracking agility, congestion priority),
//! * [`model`] — [`StarlinkLinkModel`], which reduces all of the above to
//!   per-second [`leo_link::DuplexCondition`]s for the measurement tools.

pub mod constellation;
pub mod dish;
pub mod fastpath;
pub mod ground;
pub mod model;
pub mod obstruction;
pub mod passes;
pub mod visibility;

pub use constellation::{Constellation, Satellite, Shell};
pub use dish::DishPlan;
pub use fastpath::{
    best_satellite_fast, visible_satellites_fast, PropagationTable, VisibilitySearcher,
};
pub use ground::{GroundStation, GroundStationDb};
pub use model::{StarlinkLinkModel, StarlinkModelConfig};
pub use obstruction::{ObstructionParams, ObstructionProcess, SkyState};
pub use passes::{coverage_stats, passes_of, serving_timeline, CoverageStats, SatPass};
pub use visibility::{best_satellite, visible_satellites, SatView};

/// Speed of light in km/s, as used in the paper's Eq. 1.
pub const SPEED_OF_LIGHT_KM_S: f64 = 299_792.0;
