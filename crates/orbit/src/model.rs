//! The Starlink link model: geometry + obstruction + plan → per-second
//! link conditions.
//!
//! This is the simulator's stand-in for the real Starlink service the paper
//! measured. Every mechanism the paper names is represented:
//!
//! * **Line-of-sight geometry** — a best visible satellite is selected at
//!   each 15-second reconfiguration slot (Starlink's scheduler interval);
//!   its elevation sets beam quality and the bent-pipe geometric RTT.
//! * **Obstruction** — a fast Markov sky-state chain (seconds-scale bursts)
//!   composed with a slow per-road-segment *sky quality* field
//!   (minutes-scale urban canyons, tree corridors).
//! * **Plan differences** — field of view, congestion priority,
//!   re-acquisition lag, and Roam's speed sensitivity, from [`DishPlan`].
//! * **FDD asymmetry** — uplink capacity is ~1/10 of downlink (§4.1).
//! * **Weather** — mild rain/snow fade (§3.3).
//!
//! Calibration targets (see `DESIGN.md` §3): Mobility UDP downlink
//! mean ≈ 130–160 Mbps with median well above the mean's percentile
//! (heavy low tail), Roam ≈ half of Mobility, RTTs 50–100 ms, TCP
//! retransmission-driving loss 0.3–1.3 %.

use crate::constellation::{Constellation, Satellite};
use crate::dish::DishPlan;
use crate::fastpath::VisibilitySearcher;
use crate::ground::{bent_pipe_floor_rtt_ms, GroundStationDb};
use crate::obstruction::ObstructionProcess;
use crate::visibility::best_satellite;
use leo_geo::area::AreaType;
use leo_geo::drive::EnvironmentSample;
use leo_geo::point::Ecef;
use leo_link::condition::LinkCondition;
use leo_link::trace::LinkTrace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the Starlink link model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StarlinkModelConfig {
    pub plan: DishPlan,
    /// RNG seed; the produced traces are a pure function of (drive, config).
    pub seed: u64,
    /// Clear-sky cell capacity at zenith for a priority-1 dish, Mbps.
    pub peak_capacity_mbps: f64,
    /// Uplink/downlink capacity ratio (FDD split).
    pub uplink_ratio: f64,
    /// Baseline random loss on a clear link.
    pub base_loss: f64,
    /// Gateway → PoP → test-server RTT component, ms.
    pub backhaul_rtt_ms: f64,
    /// Starlink scheduler reconfiguration interval, seconds.
    pub reconfig_interval_s: u64,
}

impl StarlinkModelConfig {
    /// Default configuration for a plan.
    pub fn for_plan(plan: DishPlan) -> Self {
        Self {
            plan,
            seed: 0x5eed_1ea0,
            peak_capacity_mbps: 305.0,
            uplink_ratio: 0.10,
            base_loss: 0.004,
            backhaul_rtt_ms: 34.0,
            reconfig_interval_s: 15,
        }
    }
}

/// The Starlink link model over a constellation and gateway set.
#[derive(Debug, Clone)]
pub struct StarlinkLinkModel {
    constellation: Constellation,
    gateways: GroundStationDb,
    config: StarlinkModelConfig,
}

impl StarlinkLinkModel {
    /// Creates a model with the Starlink constellation and Midwest gateways.
    pub fn new(config: StarlinkModelConfig) -> Self {
        Self {
            constellation: Constellation::starlink(),
            gateways: GroundStationDb::midwest_corridor(),
            config,
        }
    }

    /// Creates a model over explicit infrastructure.
    pub fn with_infrastructure(
        config: StarlinkModelConfig,
        constellation: Constellation,
        gateways: GroundStationDb,
    ) -> Self {
        Self {
            constellation,
            gateways,
            config,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &StarlinkModelConfig {
        &self.config
    }

    /// Generates aligned downlink and uplink traces for a drive.
    ///
    /// `areas[i]` must be the area type at `samples[i]` (use
    /// `leo_geo::AreaClassifier`); the two slices must have equal length.
    /// The result is deterministic in `(samples, areas, config)`.
    ///
    /// Satellite selection runs on the [`crate::fastpath`] searcher; set
    /// `LEO_ORBIT_NAIVE=1` to force the naive full-constellation scan
    /// instead (the traces are bit-identical either way — the toggle only
    /// exists so benchmarks can measure the before/after wall clock).
    pub fn trace_for_drive(
        &self,
        samples: &[EnvironmentSample],
        areas: &[AreaType],
    ) -> (LinkTrace, LinkTrace) {
        let naive = std::env::var_os("LEO_ORBIT_NAIVE").is_some_and(|v| v != "0");
        self.trace_for_drive_impl(samples, areas, naive)
    }

    /// [`trace_for_drive`](Self::trace_for_drive) forced onto the naive
    /// visibility scan (the fast path's oracle). Exposed for equivalence
    /// tests and the before/after benchmark; produces bit-identical traces.
    pub fn trace_for_drive_naive(
        &self,
        samples: &[EnvironmentSample],
        areas: &[AreaType],
    ) -> (LinkTrace, LinkTrace) {
        self.trace_for_drive_impl(samples, areas, true)
    }

    fn trace_for_drive_impl(
        &self,
        samples: &[EnvironmentSample],
        areas: &[AreaType],
        force_naive: bool,
    ) -> (LinkTrace, LinkTrace) {
        assert_eq!(samples.len(), areas.len(), "one area per sample");
        if force_naive {
            // The oracle path: either LEO_ORBIT_NAIVE or an equivalence
            // check deliberately bypassed the fast searcher.
            leo_obs::incr("orbit.oracle_fallbacks", 1);
        }
        let label = self.config.plan.label();
        let mut down = Vec::with_capacity(samples.len());
        let mut up = Vec::with_capacity(samples.len());
        let mut rng =
            SmallRng::seed_from_u64(self.config.seed ^ samples.first().map(|s| s.t_s).unwrap_or(0));
        let mut sky = ObstructionProcess::new();
        let mut searcher = (!force_naive).then(|| VisibilitySearcher::new(&self.constellation));
        let mut current_sat = None;
        let mut geo_rtt_ms = bent_pipe_floor_rtt_ms();
        let mut reacq_left = 0u32;

        for (sample, &area) in samples.iter().zip(areas) {
            // 1. Satellite (re)selection at each reconfiguration slot.
            if sample.t_s % self.config.reconfig_interval_s == 0 || current_sat.is_none() {
                let mask = self.config.plan.min_elevation_deg();
                let view = match searcher.as_mut() {
                    Some(s) => s.best(&sample.position, sample.t_s as f64, mask),
                    None => best_satellite(
                        &self.constellation,
                        &sample.position,
                        sample.t_s as f64,
                        mask,
                    ),
                };
                let new_sat = view.map(|v| v.sat);
                if new_sat != current_sat && current_sat.is_some() {
                    reacq_left = self.config.plan.reacquisition_s();
                }
                current_sat = new_sat;
                if let Some(v) = view {
                    let sat_pos = self.position_of(searcher.as_ref(), v.sat, sample.t_s as f64);
                    geo_rtt_ms = self
                        .gateways
                        .bent_pipe_one_way_ms_at(&sat_pos, &sample.position)
                        .map(|one_way| 2.0 * one_way)
                        .unwrap_or_else(bent_pipe_floor_rtt_ms);
                }
            }

            let Some(sat) = current_sat else {
                // No usable satellite in the plan's field of view.
                down.push(LinkCondition::OUTAGE);
                up.push(LinkCondition::OUTAGE);
                continue;
            };

            // 2. Elevation-driven beam quality (recomputed cheaply from the
            // last slot's satellite once per slot would drift; a per-second
            // smooth factor suffices at this fidelity).
            let sat_pos = self.position_of(searcher.as_ref(), sat, sample.t_s as f64);
            let beam_q = beam_quality_at(&sat_pos, sample);

            // 3. Slow sky-quality field per 1-km road segment.
            let segment = sample.travelled_km.floor() as u64;
            let quality = segment_sky_quality(self.config.seed, area, segment);

            // 4. Fast obstruction chain.
            let state = sky.step(area, &mut rng);

            // 5. Multiplicative fading.
            let fade = (1.0 + rng.gen_range(-0.14..0.14)) * (1.0 + rng.gen_range(-0.05..0.05));

            // 6. Plan factors.
            let speed_pen = 1.0
                - self.config.plan.speed_penalty_per_100kmh() * (sample.speed_kmh / 100.0).min(1.2);
            let reacq_factor = if reacq_left > 0 {
                reacq_left -= 1;
                0.25
            } else {
                1.0
            };

            let capacity_down = (self.config.peak_capacity_mbps
                * self.config.plan.priority_factor()
                * beam_q
                * quality
                * state.capacity_factor()
                * fade
                * speed_pen
                * reacq_factor
                * sample.weather.satellite_capacity_factor())
            .clamp(0.0, 400.0);

            let capacity_up =
                (capacity_down * self.config.uplink_ratio * (1.0 + rng.gen_range(-0.15..0.15)))
                    .clamp(0.0, 40.0);

            // 7. RTT: geometry + backhaul + scheduler jitter, inflated when
            // the sky is obstructed (retransmissions at the PHY layer).
            let jitter: f64 = rng.gen_range(4.0..26.0);
            let obstruct_extra = match state {
                crate::obstruction::SkyState::Clear => 0.0,
                crate::obstruction::SkyState::Partial => rng.gen_range(4.0..18.0),
                crate::obstruction::SkyState::Blocked => rng.gen_range(20.0..80.0),
            };
            let rtt = geo_rtt_ms + self.config.backhaul_rtt_ms + jitter + obstruct_extra;

            // 8. Loss: baseline + obstruction + handover spike.
            let handover_loss = if reacq_factor < 1.0 { 0.035 } else { 0.0 };
            let loss_down =
                (self.config.base_loss + state.extra_loss() + handover_loss).clamp(0.0, 1.0);
            let loss_up = (loss_down * 1.25).clamp(0.0, 1.0);

            down.push(LinkCondition::new(capacity_down, rtt, loss_down));
            up.push(LinkCondition::new(capacity_up, rtt, loss_up));
        }

        let start = samples.first().map(|s| s.t_s).unwrap_or(0);
        (
            LinkTrace::new(label, start, down),
            LinkTrace::new(format!("{label}-up"), start, up),
        )
    }

    /// Satellite position via the searcher's propagation table when the
    /// fast path is active, or direct propagation on the naive path. The
    /// two are bit-identical.
    fn position_of(&self, searcher: Option<&VisibilitySearcher>, sat: Satellite, t_s: f64) -> Ecef {
        match searcher {
            Some(s) => s.table().position_ecef(sat, t_s),
            None => self.constellation.position_ecef(sat, t_s),
        }
    }
}

/// Beam quality from the serving satellite's elevation, in `(0, 1]`.
fn beam_quality_at(sat_pos: &Ecef, sample: &EnvironmentSample) -> f64 {
    let gp = sample.position.to_ecef(0.0);
    let elev = gp.elevation_deg_to(sat_pos).max(5.0);
    elev.to_radians().sin().powf(0.35)
}

/// Deterministic per-segment sky quality in `[0, 1]`.
///
/// Urban segments are mostly poor (canyons); suburban and rural segments
/// are mostly clear with occasional shadowed corridors. Hash-based so that
/// repeated queries for the same segment agree and the whole campaign is
/// reproducible.
fn segment_sky_quality(seed: u64, area: AreaType, segment: u64) -> f64 {
    let h = splitmix64(seed ^ (segment.wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ area_salt(area));
    let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform [0,1)
    let v = (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64;
    match area {
        AreaType::Urban => 0.06 + 0.34 * u * u,
        AreaType::Suburban => {
            if u < 0.74 {
                0.88 + 0.12 * v
            } else {
                0.18 + 0.30 * v
            }
        }
        AreaType::Rural => {
            if u < 0.80 {
                0.90 + 0.10 * v
            } else {
                0.22 + 0.32 * v
            }
        }
    }
}

fn area_salt(area: AreaType) -> u64 {
    match area {
        AreaType::Urban => 0x1111_2222_3333_4444,
        AreaType::Suburban => 0x5555_6666_7777_8888,
        AreaType::Rural => 0x9999_aaaa_bbbb_cccc,
    }
}

/// SplitMix64 — the standard 64-bit finaliser, used for hash-based noise.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::drive::{DayPhase, Weather};
    use leo_geo::point::GeoPoint;

    /// A synthetic stationary-ish drive through one area type.
    fn drive(area: AreaType, len_s: u64) -> (Vec<EnvironmentSample>, Vec<AreaType>) {
        let samples: Vec<EnvironmentSample> = (0..len_s)
            .map(|t| EnvironmentSample {
                t_s: t,
                position: GeoPoint::new(44.5, -93.0).destination(90.0, t as f64 * 0.02),
                speed_kmh: 72.0,
                heading_deg: 90.0,
                day_phase: DayPhase::Day,
                weather: Weather::Clear,
                travelled_km: t as f64 * 0.02,
            })
            .collect();
        let areas = vec![area; samples.len()];
        (samples, areas)
    }

    fn model(plan: DishPlan) -> StarlinkLinkModel {
        StarlinkLinkModel::new(StarlinkModelConfig::for_plan(plan))
    }

    #[test]
    fn traces_have_one_sample_per_second() {
        let (s, a) = drive(AreaType::Rural, 120);
        let (down, up) = model(DishPlan::Mobility).trace_for_drive(&s, &a);
        assert_eq!(down.duration_s(), 120);
        assert_eq!(up.duration_s(), 120);
    }

    #[test]
    fn rural_mobility_is_fast() {
        let (s, a) = drive(AreaType::Rural, 600);
        let (down, _) = model(DishPlan::Mobility).trace_for_drive(&s, &a);
        let stats = down.stats().unwrap();
        assert!(
            stats.mean_mbps > 120.0,
            "rural MOB mean {} too low",
            stats.mean_mbps
        );
    }

    #[test]
    fn urban_is_much_slower_than_rural() {
        let m = model(DishPlan::Mobility);
        let (su, au) = drive(AreaType::Urban, 600);
        let (sr, ar) = drive(AreaType::Rural, 600);
        let urban = m.trace_for_drive(&su, &au).0.stats().unwrap().mean_mbps;
        let rural = m.trace_for_drive(&sr, &ar).0.stats().unwrap().mean_mbps;
        assert!(
            urban < rural * 0.5,
            "urban {urban} not ≪ rural {rural} (obstruction)"
        );
    }

    #[test]
    fn mobility_outperforms_roam_about_2x() {
        // §4.1: Mobility ≈ 2× Roam in median/mean throughput.
        let (s, a) = drive(AreaType::Rural, 900);
        let mob = model(DishPlan::Mobility)
            .trace_for_drive(&s, &a)
            .0
            .stats()
            .unwrap()
            .mean_mbps;
        let roam = model(DishPlan::Roam)
            .trace_for_drive(&s, &a)
            .0
            .stats()
            .unwrap()
            .mean_mbps;
        let ratio = mob / roam;
        assert!(
            (1.5..3.2).contains(&ratio),
            "MOB/RM ratio {ratio} (mob {mob}, roam {roam})"
        );
    }

    #[test]
    fn downlink_about_10x_uplink() {
        // §4.1: "the downlink throughput is around 10× higher than the
        // uplink" by FDD design.
        let (s, a) = drive(AreaType::Rural, 600);
        let (down, up) = model(DishPlan::Mobility).trace_for_drive(&s, &a);
        let ratio = down.stats().unwrap().mean_mbps / up.stats().unwrap().mean_mbps;
        assert!((7.0..13.0).contains(&ratio), "down/up ratio {ratio}");
    }

    #[test]
    fn rtt_mostly_between_50_and_100ms() {
        let (s, a) = drive(AreaType::Rural, 600);
        let (down, _) = model(DishPlan::Mobility).trace_for_drive(&s, &a);
        let rtts: Vec<f64> = down.samples().iter().map(|c| c.rtt_ms).collect();
        let in_band = rtts.iter().filter(|r| (40.0..=110.0).contains(*r)).count();
        assert!(
            in_band as f64 / rtts.len() as f64 > 0.85,
            "only {}/{} RTTs in band; mean {}",
            in_band,
            rtts.len(),
            rtts.iter().sum::<f64>() / rtts.len() as f64
        );
    }

    #[test]
    fn loss_in_paper_band() {
        // §4.1: Starlink TCP retransmissions 0.3–1.3 %; the underlying
        // channel loss driving them should average in the same order.
        let (s, a) = drive(AreaType::Rural, 900);
        let (down, up) = model(DishPlan::Mobility).trace_for_drive(&s, &a);
        let mean_loss = down.stats().unwrap().mean_loss;
        assert!(
            (0.002..0.05).contains(&mean_loss),
            "mean downlink loss {mean_loss}"
        );
        assert!(up.stats().unwrap().mean_loss >= mean_loss);
    }

    #[test]
    fn fast_path_and_naive_scan_produce_identical_traces() {
        // The orbit fast path is an optimisation, not a model change: the
        // full trace pipeline must be bit-identical under either scan.
        for area in AreaType::ALL {
            let (s, a) = drive(area, 300);
            for plan in [DishPlan::Mobility, DishPlan::Roam] {
                let m = model(plan);
                let (fast_d, fast_u) = m.trace_for_drive_impl(&s, &a, false);
                let (naive_d, naive_u) = m.trace_for_drive_naive(&s, &a);
                assert_eq!(fast_d, naive_d, "{area} {plan:?} downlink");
                assert_eq!(fast_u, naive_u, "{area} {plan:?} uplink");
            }
        }
    }

    #[test]
    fn geo_rtt_floor_is_pinned() {
        // The initial geometric RTT (before the first satellite lock) and
        // the no-gateway fallback are one and the same floor: 4 × Eq. 1.
        let floor = bent_pipe_floor_rtt_ms();
        assert!((floor - 7.338).abs() < 0.01, "got {floor}");
        // A model with no gateways must fall back to exactly that floor:
        // trace RTT = floor + backhaul + jitter(4..26) + obstruction extra.
        let cfg = StarlinkModelConfig::for_plan(DishPlan::Mobility);
        let backhaul = cfg.backhaul_rtt_ms;
        let m = StarlinkLinkModel::with_infrastructure(
            cfg,
            Constellation::starlink(),
            crate::ground::GroundStationDb::from_stations(vec![]),
        );
        let (s, a) = drive(AreaType::Rural, 60);
        let (down, _) = m.trace_for_drive(&s, &a);
        for c in down.samples().iter().filter(|c| c.capacity_mbps > 0.0) {
            assert!(
                c.rtt_ms >= floor + backhaul + 4.0 - 1e-9,
                "rtt {} below floor",
                c.rtt_ms
            );
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let (s, a) = drive(AreaType::Suburban, 300);
        let m = model(DishPlan::Roam);
        let (d1, u1) = m.trace_for_drive(&s, &a);
        let (d2, u2) = m.trace_for_drive(&s, &a);
        assert_eq!(d1, d2);
        assert_eq!(u1, u2);
    }

    #[test]
    fn different_seeds_differ() {
        let (s, a) = drive(AreaType::Suburban, 300);
        let mut cfg = StarlinkModelConfig::for_plan(DishPlan::Mobility);
        let d1 = StarlinkLinkModel::new(cfg.clone())
            .trace_for_drive(&s, &a)
            .0;
        cfg.seed ^= 0xdead_beef;
        let d2 = StarlinkLinkModel::new(cfg).trace_for_drive(&s, &a).0;
        assert_ne!(d1, d2);
    }

    #[test]
    fn segment_quality_is_deterministic_and_bounded() {
        for area in AreaType::ALL {
            for seg in 0..500 {
                let q = segment_sky_quality(42, area, seg);
                assert!((0.0..=1.0).contains(&q), "{area} seg {seg}: {q}");
                assert_eq!(q, segment_sky_quality(42, area, seg));
            }
        }
    }

    #[test]
    fn urban_segments_are_poor_on_average() {
        let mean = |area: AreaType| {
            (0..2000)
                .map(|s| segment_sky_quality(7, area, s))
                .sum::<f64>()
                / 2000.0
        };
        assert!(mean(AreaType::Urban) < 0.35);
        assert!(mean(AreaType::Suburban) > 0.65);
        assert!(mean(AreaType::Rural) > 0.70);
    }
}
