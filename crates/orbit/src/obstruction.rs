//! Line-of-sight obstruction as a three-state Markov process.
//!
//! §2: "Starlink requires Line-of-Sight between user dishes and satellites.
//! Obstructions such as tall buildings or trees can disrupt the satellite
//! connections." For a dish on a moving vehicle, obstruction arrives in
//! bursts — a downtown canyon, a tree-lined mile — which we model as a
//! per-second Markov chain over three sky states whose dynamics depend on
//! the area type being driven through.

use leo_geo::area::AreaType;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The dish's current view of the sky.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkyState {
    /// Unobstructed line of sight.
    Clear,
    /// Partially obstructed (edge of a building shadow, tree canopy):
    /// degraded capacity, elevated loss.
    Partial,
    /// Fully blocked: outage-level service.
    Blocked,
}

impl SkyState {
    /// Multiplier applied to clear-sky capacity in this state.
    pub fn capacity_factor(&self) -> f64 {
        match self {
            SkyState::Clear => 1.0,
            SkyState::Partial => 0.40,
            SkyState::Blocked => 0.03,
        }
    }

    /// Additional packet-loss probability contributed by this state.
    pub fn extra_loss(&self) -> f64 {
        match self {
            SkyState::Clear => 0.0,
            SkyState::Partial => 0.025,
            SkyState::Blocked => 0.35,
        }
    }
}

/// Per-second transition probabilities of the sky-state chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObstructionParams {
    pub clear_to_partial: f64,
    pub partial_to_blocked: f64,
    pub partial_to_clear: f64,
    pub blocked_to_partial: f64,
}

impl ObstructionParams {
    /// Parameters for an area type.
    ///
    /// Urban canyons keep the chain in Partial/Blocked much of the time;
    /// §5.1 notes suburban towns "have much fewer high buildings, leading
    /// to similar obstruction conditions to rural areas", so suburban and
    /// rural parameters are deliberately close.
    pub fn for_area(area: AreaType) -> Self {
        match area {
            AreaType::Urban => ObstructionParams {
                clear_to_partial: 0.120,
                partial_to_blocked: 0.110,
                partial_to_clear: 0.100,
                blocked_to_partial: 0.140,
            },
            AreaType::Suburban => ObstructionParams {
                clear_to_partial: 0.022,
                partial_to_blocked: 0.030,
                partial_to_clear: 0.250,
                blocked_to_partial: 0.300,
            },
            AreaType::Rural => ObstructionParams {
                clear_to_partial: 0.014,
                partial_to_blocked: 0.020,
                partial_to_clear: 0.300,
                blocked_to_partial: 0.350,
            },
        }
    }

    /// Stationary distribution `(clear, partial, blocked)` of the chain.
    pub fn stationary(&self) -> (f64, f64, f64) {
        // Balance equations for the birth-death chain
        // Clear <-> Partial <-> Blocked:
        //   π_c · c2p = π_p · p2c      → π_p = π_c · c2p / p2c
        //   π_p · p2b = π_b · b2p      → π_b = π_p · p2b / b2p
        let pc = 1.0;
        let pp = pc * self.clear_to_partial / self.partial_to_clear;
        let pb = pp * self.partial_to_blocked / self.blocked_to_partial;
        let z = pc + pp + pb;
        (pc / z, pp / z, pb / z)
    }
}

/// The running obstruction process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObstructionProcess {
    state: SkyState,
}

impl Default for ObstructionProcess {
    fn default() -> Self {
        Self::new()
    }
}

impl ObstructionProcess {
    /// Starts the process with a clear sky.
    pub fn new() -> Self {
        Self {
            state: SkyState::Clear,
        }
    }

    /// The current state.
    pub fn state(&self) -> SkyState {
        self.state
    }

    /// Advances one second through an area of the given type.
    pub fn step<R: Rng + ?Sized>(&mut self, area: AreaType, rng: &mut R) -> SkyState {
        let p = ObstructionParams::for_area(area);
        let u: f64 = rng.gen();
        self.state = match self.state {
            SkyState::Clear => {
                if u < p.clear_to_partial {
                    SkyState::Partial
                } else {
                    SkyState::Clear
                }
            }
            SkyState::Partial => {
                if u < p.partial_to_blocked {
                    SkyState::Blocked
                } else if u < p.partial_to_blocked + p.partial_to_clear {
                    SkyState::Clear
                } else {
                    SkyState::Partial
                }
            }
            SkyState::Blocked => {
                if u < p.blocked_to_partial {
                    SkyState::Partial
                } else {
                    SkyState::Blocked
                }
            }
        };
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empirical_clear_fraction(area: AreaType, seed: u64, n: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut proc = ObstructionProcess::new();
        let mut clear = 0usize;
        for _ in 0..n {
            if proc.step(area, &mut rng) == SkyState::Clear {
                clear += 1;
            }
        }
        clear as f64 / n as f64
    }

    #[test]
    fn stationary_distribution_sums_to_one() {
        for area in AreaType::ALL {
            let (c, p, b) = ObstructionParams::for_area(area).stationary();
            assert!((c + p + b - 1.0).abs() < 1e-12);
            assert!(c > 0.0 && p > 0.0 && b > 0.0);
        }
    }

    #[test]
    fn urban_is_much_more_obstructed_than_rural() {
        let (cu, ..) = ObstructionParams::for_area(AreaType::Urban).stationary();
        let (cr, ..) = ObstructionParams::for_area(AreaType::Rural).stationary();
        assert!(cu < 0.6, "urban clear fraction {cu}");
        assert!(cr > 0.9, "rural clear fraction {cr}");
    }

    #[test]
    fn suburban_and_rural_are_similar() {
        // §5.1's observation drives Figure 8's suburban≈rural Starlink
        // distributions; keep the stationary clear fractions within 6 pts.
        let (cs, ..) = ObstructionParams::for_area(AreaType::Suburban).stationary();
        let (cr, ..) = ObstructionParams::for_area(AreaType::Rural).stationary();
        assert!((cs - cr).abs() < 0.06, "suburban {cs} vs rural {cr}");
    }

    #[test]
    fn empirical_matches_stationary() {
        for area in AreaType::ALL {
            let (c, ..) = ObstructionParams::for_area(area).stationary();
            let emp = empirical_clear_fraction(area, 1234, 200_000);
            assert!(
                (emp - c).abs() < 0.02,
                "{area}: empirical {emp} vs stationary {c}"
            );
        }
    }

    #[test]
    fn empirical_three_state_frequencies_match_stationary() {
        // The Clear-fraction check above can pass with Partial and
        // Blocked swapped; pin the whole distribution per area type.
        for area in AreaType::ALL {
            let (c, p, b) = ObstructionParams::for_area(area).stationary();
            let mut rng = SmallRng::seed_from_u64(0x0b57);
            let mut proc = ObstructionProcess::new();
            let n = 300_000usize;
            let (mut nc, mut np, mut nb) = (0usize, 0usize, 0usize);
            for _ in 0..n {
                match proc.step(area, &mut rng) {
                    SkyState::Clear => nc += 1,
                    SkyState::Partial => np += 1,
                    SkyState::Blocked => nb += 1,
                }
            }
            for (label, emp, exp) in [
                ("clear", nc as f64 / n as f64, c),
                ("partial", np as f64 / n as f64, p),
                ("blocked", nb as f64 / n as f64, b),
            ] {
                assert!(
                    (emp - exp).abs() < 0.02,
                    "{area} {label}: empirical {emp} vs stationary {exp}"
                );
            }
        }
    }

    #[test]
    fn process_is_deterministic_per_seed() {
        let a = empirical_clear_fraction(AreaType::Urban, 7, 1000);
        let b = empirical_clear_fraction(AreaType::Urban, 7, 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn factors_are_ordered() {
        assert!(SkyState::Clear.capacity_factor() > SkyState::Partial.capacity_factor());
        assert!(SkyState::Partial.capacity_factor() > SkyState::Blocked.capacity_factor());
        assert!(SkyState::Clear.extra_loss() < SkyState::Partial.extra_loss());
        assert!(SkyState::Partial.extra_loss() < SkyState::Blocked.extra_loss());
    }
}
