//! Satellite pass prediction.
//!
//! Utilities for asking "when is a satellite usable from here": per-
//! satellite pass windows (AOS → LOS against an elevation mask) and the
//! gap structure of best-satellite coverage. These drive the dish-plan
//! comparison — Roam's narrower field of view sees shorter passes with
//! longer gaps, the geometric root of its §4.1 disadvantage — and are the
//! kind of tooling a Starlink measurement kit ships (cf. Hypatia,
//! StarPerf).

use crate::constellation::{Constellation, Satellite};
use crate::fastpath::{PropagationTable, VisibilitySearcher};
use leo_geo::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// One visibility pass of one satellite over a ground point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SatPass {
    pub sat: Satellite,
    /// Acquisition of signal, seconds since epoch.
    pub aos_s: f64,
    /// Loss of signal, seconds since epoch.
    pub los_s: f64,
    /// Peak elevation over the pass, degrees.
    pub max_elevation_deg: f64,
}

impl SatPass {
    /// Pass duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.los_s - self.aos_s
    }
}

/// Finds the passes of a single satellite over `[t0, t1]`, sampling at
/// `step_s` resolution.
pub fn passes_of(
    constellation: &Constellation,
    sat: Satellite,
    ground: &GeoPoint,
    min_elevation_deg: f64,
    t0: f64,
    t1: f64,
    step_s: f64,
) -> Vec<SatPass> {
    passes_of_with(
        &PropagationTable::new(constellation),
        sat,
        ground,
        min_elevation_deg,
        t0,
        t1,
        step_s,
    )
}

/// [`passes_of`] over a prebuilt [`PropagationTable`], amortising the
/// table across many satellites or windows. Results are identical.
pub fn passes_of_with(
    table: &PropagationTable,
    sat: Satellite,
    ground: &GeoPoint,
    min_elevation_deg: f64,
    t0: f64,
    t1: f64,
    step_s: f64,
) -> Vec<SatPass> {
    assert!(step_s > 0.0 && t1 > t0);
    let gp = ground.to_ecef(0.0);
    let mut passes = Vec::new();
    let mut current: Option<SatPass> = None;
    let mut t = t0;
    while t <= t1 {
        let elev = gp.elevation_deg_to(&table.position_ecef(sat, t));
        if elev >= min_elevation_deg {
            match &mut current {
                Some(p) => {
                    p.los_s = t;
                    p.max_elevation_deg = p.max_elevation_deg.max(elev);
                }
                None => {
                    current = Some(SatPass {
                        sat,
                        aos_s: t,
                        los_s: t,
                        max_elevation_deg: elev,
                    });
                }
            }
        } else if let Some(p) = current.take() {
            passes.push(p);
        }
        t += step_s;
    }
    if let Some(p) = current {
        passes.push(p);
    }
    passes
}

/// Coverage statistics of the *best available* satellite over a window:
/// what fraction of sampled instants had any satellite above the mask,
/// and the mean count of visible satellites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageStats {
    pub availability: f64,
    pub mean_visible: f64,
    /// Longest gap with no usable satellite, seconds.
    pub longest_gap_s: f64,
}

/// Sweeps `[t0, t1]` at `step_s` and summarises best-satellite coverage.
pub fn coverage_stats(
    constellation: &Constellation,
    ground: &GeoPoint,
    min_elevation_deg: f64,
    t0: f64,
    t1: f64,
    step_s: f64,
) -> CoverageStats {
    coverage_stats_with(
        &mut VisibilitySearcher::new(constellation),
        ground,
        min_elevation_deg,
        t0,
        t1,
        step_s,
    )
}

/// [`coverage_stats`] over a reusable [`VisibilitySearcher`], amortising
/// the propagation table across sweeps. Results are identical.
pub fn coverage_stats_with(
    searcher: &mut VisibilitySearcher,
    ground: &GeoPoint,
    min_elevation_deg: f64,
    t0: f64,
    t1: f64,
    step_s: f64,
) -> CoverageStats {
    assert!(step_s > 0.0 && t1 > t0);
    let mut samples = 0u64;
    let mut covered = 0u64;
    let mut visible_total = 0u64;
    let mut gap = 0.0;
    let mut longest_gap = 0.0f64;
    let mut vis = Vec::new();
    let mut t = t0;
    while t <= t1 {
        samples += 1;
        searcher.visible_into(ground, t, min_elevation_deg, &mut vis);
        visible_total += vis.len() as u64;
        if vis.is_empty() {
            gap += step_s;
            longest_gap = longest_gap.max(gap);
        } else {
            covered += 1;
            gap = 0.0;
        }
        t += step_s;
    }
    CoverageStats {
        availability: covered as f64 / samples as f64,
        mean_visible: visible_total as f64 / samples as f64,
        longest_gap_s: longest_gap,
    }
}

/// The serving-satellite timeline: which satellite a mask-limited dish
/// would track at each `step_s` instant, with handover count.
pub fn serving_timeline(
    constellation: &Constellation,
    ground: &GeoPoint,
    min_elevation_deg: f64,
    t0: f64,
    t1: f64,
    step_s: f64,
) -> (Vec<Option<Satellite>>, usize) {
    serving_timeline_with(
        &mut VisibilitySearcher::new(constellation),
        ground,
        min_elevation_deg,
        t0,
        t1,
        step_s,
    )
}

/// [`serving_timeline`] over a reusable [`VisibilitySearcher`]. Results
/// are identical.
pub fn serving_timeline_with(
    searcher: &mut VisibilitySearcher,
    ground: &GeoPoint,
    min_elevation_deg: f64,
    t0: f64,
    t1: f64,
    step_s: f64,
) -> (Vec<Option<Satellite>>, usize) {
    assert!(step_s > 0.0 && t1 > t0);
    let mut serving = Vec::new();
    let mut handovers = 0;
    let mut t = t0;
    while t <= t1 {
        let best = searcher.best(ground, t, min_elevation_deg).map(|v| v.sat);
        if let (Some(prev), Some(cur)) = (serving.last().copied().flatten(), best) {
            if prev != cur {
                handovers += 1;
            }
        }
        serving.push(best);
        t += step_s;
    }
    (serving, handovers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visibility::{best_satellite, visible_satellites};

    fn midwest() -> GeoPoint {
        GeoPoint::new(44.5, -93.0)
    }

    /// The pre-fast-path `passes_of`, kept verbatim as the port oracle.
    fn naive_passes_of(
        constellation: &Constellation,
        sat: Satellite,
        ground: &GeoPoint,
        min_elevation_deg: f64,
        t0: f64,
        t1: f64,
        step_s: f64,
    ) -> Vec<SatPass> {
        let gp = ground.to_ecef(0.0);
        let mut passes = Vec::new();
        let mut current: Option<SatPass> = None;
        let mut t = t0;
        while t <= t1 {
            let elev = gp.elevation_deg_to(&constellation.position_ecef(sat, t));
            if elev >= min_elevation_deg {
                match &mut current {
                    Some(p) => {
                        p.los_s = t;
                        p.max_elevation_deg = p.max_elevation_deg.max(elev);
                    }
                    None => {
                        current = Some(SatPass {
                            sat,
                            aos_s: t,
                            los_s: t,
                            max_elevation_deg: elev,
                        });
                    }
                }
            } else if let Some(p) = current.take() {
                passes.push(p);
            }
            t += step_s;
        }
        if let Some(p) = current {
            passes.push(p);
        }
        passes
    }

    /// The pre-fast-path `coverage_stats`, kept verbatim as the port oracle.
    fn naive_coverage_stats(
        constellation: &Constellation,
        ground: &GeoPoint,
        min_elevation_deg: f64,
        t0: f64,
        t1: f64,
        step_s: f64,
    ) -> CoverageStats {
        let mut samples = 0u64;
        let mut covered = 0u64;
        let mut visible_total = 0u64;
        let mut gap = 0.0;
        let mut longest_gap = 0.0f64;
        let mut t = t0;
        while t <= t1 {
            samples += 1;
            let vis = visible_satellites(constellation, ground, t, min_elevation_deg);
            visible_total += vis.len() as u64;
            if vis.is_empty() {
                gap += step_s;
                longest_gap = longest_gap.max(gap);
            } else {
                covered += 1;
                gap = 0.0;
            }
            t += step_s;
        }
        CoverageStats {
            availability: covered as f64 / samples as f64,
            mean_visible: visible_total as f64 / samples as f64,
            longest_gap_s: longest_gap,
        }
    }

    #[test]
    fn passes_of_unchanged_by_fast_path_port() {
        for c in [Constellation::starlink(), Constellation::starlink_full()] {
            let sat = best_satellite(&c, &midwest(), 0.0, 25.0).unwrap().sat;
            let ported = passes_of(&c, sat, &midwest(), 25.0, 0.0, 3600.0, 5.0);
            let naive = naive_passes_of(&c, sat, &midwest(), 25.0, 0.0, 3600.0, 5.0);
            assert_eq!(ported, naive);
        }
    }

    #[test]
    fn coverage_stats_unchanged_by_fast_path_port() {
        for c in [Constellation::starlink(), Constellation::starlink_full()] {
            for (ground, mask) in [(midwest(), 25.0), (GeoPoint::new(78.0, 15.0), 30.0)] {
                let ported = coverage_stats(&c, &ground, mask, 0.0, 900.0, 5.0);
                let naive = naive_coverage_stats(&c, &ground, mask, 0.0, 900.0, 5.0);
                assert_eq!(ported, naive);
            }
        }
    }

    #[test]
    fn serving_timeline_unchanged_by_fast_path_port() {
        let c = Constellation::starlink();
        let (ported, handovers) = serving_timeline(&c, &midwest(), 25.0, 0.0, 1800.0, 15.0);
        // The old implementation asked the naive best-satellite scan at
        // each step.
        let mut naive = Vec::new();
        let mut naive_handovers = 0;
        let mut t = 0.0;
        while t <= 1800.0 {
            let best = best_satellite(&c, &midwest(), t, 25.0).map(|v| v.sat);
            if let (Some(prev), Some(cur)) = (naive.last().copied().flatten(), best) {
                if prev != cur {
                    naive_handovers += 1;
                }
            }
            naive.push(best);
            t += 15.0;
        }
        assert_eq!(ported, naive);
        assert_eq!(handovers, naive_handovers);
    }

    #[test]
    fn passes_have_sane_structure() {
        let c = Constellation::starlink();
        // Find some satellite that is up at t=0 and follow it.
        let v = best_satellite(&c, &midwest(), 0.0, 25.0).expect("visible sat");
        let passes = passes_of(&c, v.sat, &midwest(), 25.0, 0.0, 3600.0, 5.0);
        assert!(!passes.is_empty());
        for p in &passes {
            assert!(p.los_s >= p.aos_s);
            assert!(p.max_elevation_deg >= 25.0);
            // A 550 km pass above a 25° mask lasts at most a few minutes.
            assert!(
                p.duration_s() < 600.0,
                "pass of {}s implausible",
                p.duration_s()
            );
        }
    }

    #[test]
    fn midlatitude_availability_is_total_with_wide_mask() {
        let c = Constellation::starlink();
        let stats = coverage_stats(&c, &midwest(), 25.0, 0.0, 900.0, 15.0);
        assert!(
            stats.availability > 0.99,
            "availability {}",
            stats.availability
        );
        assert!(stats.mean_visible >= 1.0);
        assert_eq!(stats.longest_gap_s, 0.0);
    }

    #[test]
    fn narrow_mask_reduces_coverage_quality() {
        // The Roam-vs-Mobility geometric story: a higher elevation mask
        // (narrower field of view) sees fewer satellites.
        let c = Constellation::starlink();
        let wide = coverage_stats(&c, &midwest(), 22.0, 0.0, 600.0, 30.0);
        let narrow = coverage_stats(&c, &midwest(), 55.0, 0.0, 600.0, 30.0);
        assert!(narrow.mean_visible < wide.mean_visible);
        assert!(narrow.availability <= wide.availability);
    }

    #[test]
    fn serving_timeline_hands_over() {
        let c = Constellation::starlink();
        let (serving, handovers) = serving_timeline(&c, &midwest(), 25.0, 0.0, 1800.0, 15.0);
        assert_eq!(serving.len(), 121);
        // LEO satellites cross the sky in minutes: half an hour of
        // tracking must hand over several times.
        assert!(handovers >= 3, "only {handovers} handovers in 30 min");
    }
}
