//! Satellite visibility from a ground point — the naive reference scan.
//!
//! The functions here propagate every satellite of the constellation per
//! query. They are kept as the easily-auditable **test oracle**; hot paths
//! (the link model, pass prediction, campaign generation) use the indexed
//! fast path in [`crate::fastpath`], which returns bit-identical results.

use crate::constellation::{Constellation, Satellite};
use leo_geo::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// A satellite as seen from a ground point: identity plus look geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SatView {
    pub sat: Satellite,
    /// Elevation above the local horizon, degrees.
    pub elevation_deg: f64,
    /// Slant range from the ground point, km.
    pub range_km: f64,
}

/// All satellites above `min_elevation_deg` as seen from `ground` at `t_s`.
///
/// A cheap z-band prefilter rejects satellites whose sub-satellite latitude
/// is too far from the observer to possibly clear the mask, keeping full
/// constellation sweeps fast enough for campaign-scale simulation.
pub fn visible_satellites(
    constellation: &Constellation,
    ground: &GeoPoint,
    t_s: f64,
    min_elevation_deg: f64,
) -> Vec<SatView> {
    let gp = ground.to_ecef(0.0);
    // Maximum great-circle angle between observer and sub-satellite point
    // for the satellite to be above `min_elevation_deg`, padded slightly.
    let max_central_angle_deg = max_central_angle_deg(constellation, min_elevation_deg) + 1.0;
    let mut views = Vec::new();
    for sat in constellation.satellites() {
        let sp = constellation.position_ecef(sat, t_s);
        // Prefilter on the dot-product bound: cos(central angle).
        let cosang = gp.dot(&sp) / (gp.norm_km() * sp.norm_km());
        if cosang < max_central_angle_deg.to_radians().cos() {
            continue;
        }
        let elevation = gp.elevation_deg_to(&sp);
        if elevation >= min_elevation_deg {
            views.push(SatView {
                sat,
                elevation_deg: elevation,
                range_km: gp.distance_km(&sp),
            });
        }
    }
    views
}

/// The visible satellite with the highest elevation, if any.
pub fn best_satellite(
    constellation: &Constellation,
    ground: &GeoPoint,
    t_s: f64,
    min_elevation_deg: f64,
) -> Option<SatView> {
    visible_satellites(constellation, ground, t_s, min_elevation_deg)
        .into_iter()
        .max_by(|a, b| a.elevation_deg.total_cmp(&b.elevation_deg))
}

/// Worst-case central angle (observer ↔ sub-satellite point) at which a
/// satellite of the constellation's highest shell still clears
/// `min_elevation_deg`. Used as a visibility prefilter bound.
fn max_central_angle_deg(constellation: &Constellation, min_elevation_deg: f64) -> f64 {
    let r_earth = leo_geo::point::EARTH_RADIUS_KM;
    constellation
        .shells()
        .iter()
        .map(|s| {
            let r_orbit = s.orbit_radius_km();
            // From the elevation geometry: the Earth-central angle ψ for
            // elevation ε satisfies ψ = acos(Re/Ro · cos ε) − ε.
            let e = min_elevation_deg.to_radians();
            let psi = ((r_earth / r_orbit) * e.cos()).acos() - e;
            psi.to_degrees()
        })
        .fold(0.0, f64::max)
}

/// Slant range (km) from a ground observer to a satellite at `altitude_km`
/// seen at `elevation_deg` — the textbook LEO geometry formula.
pub fn slant_range_km(altitude_km: f64, elevation_deg: f64) -> f64 {
    let re = leo_geo::point::EARTH_RADIUS_KM;
    let ro = re + altitude_km;
    let e = elevation_deg.to_radians();
    // Law of cosines in the Earth-centre / observer / satellite triangle:
    // d = sqrt(ro² − re²cos²ε) − re·sinε.
    (ro * ro - (re * e.cos()).powi(2)).sqrt() - re * e.sin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slant_range_at_zenith_is_altitude() {
        let d = slant_range_km(550.0, 90.0);
        assert!((d - 550.0).abs() < 1e-6, "got {d}");
    }

    #[test]
    fn slant_range_grows_towards_horizon() {
        let mut prev = 0.0;
        for elev in [90.0, 60.0, 40.0, 25.0, 10.0] {
            let d = slant_range_km(550.0, elev);
            assert!(d > prev, "range should grow as elevation falls");
            prev = d;
        }
        // At 25° the slant range is roughly 1100 km for a 550 km shell.
        let d25 = slant_range_km(550.0, 25.0);
        assert!((1000.0..1300.0).contains(&d25), "got {d25}");
    }

    #[test]
    fn mid_latitude_observer_sees_satellites() {
        // At 45°N — in the heart of the 53° shell's coverage — several
        // satellites are always above a 25° mask.
        let c = Constellation::starlink();
        let ground = GeoPoint::new(45.0, -93.0);
        for t in [0.0, 300.0, 900.0, 3333.0] {
            let views = visible_satellites(&c, &ground, t, 25.0);
            assert!(
                views.len() >= 2,
                "expected multiple visible sats at t={t}, got {}",
                views.len()
            );
        }
    }

    #[test]
    fn equatorial_observer_sees_fewer_high_sats_than_mid_latitude() {
        // The 53° shell's density peaks near ±53° latitude.
        let c = Constellation::starlink();
        let count_at = |lat: f64| {
            let g = GeoPoint::new(lat, -93.0);
            (0..20)
                .map(|i| visible_satellites(&c, &g, i as f64 * 311.0, 40.0).len())
                .sum::<usize>()
        };
        let mid = count_at(50.0);
        let eq = count_at(0.0);
        assert!(mid > eq, "mid-lat {mid} should exceed equatorial {eq}");
    }

    #[test]
    fn best_satellite_has_max_elevation() {
        let c = Constellation::starlink();
        let ground = GeoPoint::new(44.0, -90.0);
        let views = visible_satellites(&c, &ground, 123.0, 25.0);
        let best = best_satellite(&c, &ground, 123.0, 25.0).unwrap();
        for v in views {
            assert!(v.elevation_deg <= best.elevation_deg + 1e-9);
        }
    }

    #[test]
    fn raising_the_mask_reduces_visibility() {
        let c = Constellation::starlink();
        let ground = GeoPoint::new(43.0, -95.0);
        let lo = visible_satellites(&c, &ground, 777.0, 20.0).len();
        let hi = visible_satellites(&c, &ground, 777.0, 45.0).len();
        assert!(hi <= lo);
    }

    #[test]
    fn prefilter_does_not_drop_visible_sats() {
        // Brute-force (no prefilter) must agree with the fast path.
        let c = Constellation::starlink();
        let ground = GeoPoint::new(46.5, -100.0);
        let t = 411.0;
        let gp = ground.to_ecef(0.0);
        let brute: Vec<Satellite> = c
            .satellites()
            .filter(|&s| gp.elevation_deg_to(&c.position_ecef(s, t)) >= 30.0)
            .collect();
        let fast: Vec<Satellite> = visible_satellites(&c, &ground, t, 30.0)
            .into_iter()
            .map(|v| v.sat)
            .collect();
        assert_eq!(brute.len(), fast.len());
    }
}
