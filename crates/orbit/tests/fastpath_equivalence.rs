//! Property tests: the orbit fast path is bit-for-bit equivalent to the
//! naive full-constellation scan for arbitrary (ground point, time,
//! elevation mask) — including the 97.6° polar shell and high-latitude
//! observers — with and without temporal coherence.

use leo_geo::point::GeoPoint;
use leo_orbit::constellation::Constellation;
use leo_orbit::fastpath::{
    best_satellite_fast, visible_satellites_fast, PropagationTable, VisibilitySearcher,
};
use leo_orbit::visibility::{best_satellite, visible_satellites};
use proptest::prelude::*;

fn constellation_for(full: bool) -> Constellation {
    if full {
        Constellation::starlink_full()
    } else {
        Constellation::starlink()
    }
}

proptest! {
    /// One-shot fast queries equal the naive oracle everywhere, for both
    /// the single 53° shell and the full four-shell constellation (whose
    /// 97.6° near-polar shell exercises the retrograde pruning geometry).
    #[test]
    fn fast_path_equals_naive_scan(
        lat in -89.0..89.0f64,
        lon in -180.0..180.0f64,
        t_s in 0.0..100_000.0f64,
        mask in 5.0..60.0f64,
        full in 0u8..2,
    ) {
        let c = constellation_for(full == 1);
        let table = PropagationTable::new(&c);
        let ground = GeoPoint::new(lat, lon);
        let naive = visible_satellites(&c, &ground, t_s, mask);
        let fast = visible_satellites_fast(&table, &ground, t_s, mask);
        prop_assert_eq!(naive, fast);
        prop_assert_eq!(
            best_satellite(&c, &ground, t_s, mask),
            best_satellite_fast(&table, &ground, t_s, mask)
        );
    }

    /// High-latitude observers (including beyond the 53° shell's reach,
    /// where only the polar shell serves) agree exactly.
    #[test]
    fn fast_path_equals_naive_at_high_latitudes(
        lat_abs in 60.0..89.5f64,
        south in 0u8..2,
        lon in -180.0..180.0f64,
        t_s in 0.0..50_000.0f64,
        mask in 10.0..45.0f64,
    ) {
        let lat = if south == 1 { -lat_abs } else { lat_abs };
        let c = Constellation::starlink_full();
        let table = PropagationTable::new(&c);
        let ground = GeoPoint::new(lat, lon);
        prop_assert_eq!(
            visible_satellites(&c, &ground, t_s, mask),
            visible_satellites_fast(&table, &ground, t_s, mask)
        );
    }

    /// The stateful searcher stays equivalent across a coherent 1 Hz query
    /// sequence with a moving observer — the drive-trace access pattern,
    /// where cached pruning windows are reused between queries.
    #[test]
    fn coherent_searcher_equals_naive_scan(
        lat in -80.0..80.0f64,
        lon in -180.0..180.0f64,
        t0 in 0.0..100_000.0f64,
        mask in 10.0..50.0f64,
        heading in 0.0..360.0f64,
        speed_kmh in 0.0..200.0f64,
        steps in 5usize..40,
        full in 0u8..2,
    ) {
        let c = constellation_for(full == 1);
        let mut searcher = VisibilitySearcher::new(&c);
        let start = GeoPoint::new(lat, lon);
        for i in 0..steps {
            let t = t0 + i as f64;
            let ground = start.destination(heading, speed_kmh / 3600.0 * i as f64);
            let naive = visible_satellites(&c, &ground, t, mask);
            let fast = searcher.visible(&ground, t, mask);
            prop_assert_eq!(naive, fast, "step {} t {}", i, t);
        }
    }
}
