//! Graceful-degradation emulation: §6's MPTCP download with a path
//! yanked out from under it.
//!
//! The synergy argument's strongest form is not "two networks are faster
//! than one" but "losing one network mid-transfer costs only that
//! network's share". This module runs the packet-level check: an MPTCP
//! download over satellite+cellular where the cellular path is forced
//! into outage partway through must still deliver at least what the
//! surviving satellite path manages alone.

use leo_core::fig10;
use leo_core::mptcp_emu::{run_mptcp_faulted, run_single_path, BufferTuning};
use leo_dataset::campaign::Campaign;
use leo_dataset::record::NetworkId;
use leo_netsim::FaultSchedule;
use leo_transport::mptcp::SchedulerKind;
use serde::{Deserialize, Serialize};

/// Outcome of one graceful-degradation emulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Campaign second the emulation window starts at.
    pub window_t0_s: u64,
    /// Window length, seconds.
    pub window_s: u64,
    /// Second (within the window) the cellular path goes dark.
    pub outage_from_s: u64,
    /// The surviving satellite path alone, no faults.
    pub solo_surviving_mbps: f64,
    /// MPTCP over both paths with the cellular outage injected.
    pub mptcp_faulted_mbps: f64,
    /// MPTCP over both paths, fault-free (the ceiling).
    pub mptcp_clean_mbps: f64,
}

impl DegradationReport {
    /// The graceful-degradation property: the faulted MPTCP run keeps at
    /// least the surviving path's solo throughput.
    pub fn degrades_gracefully(&self) -> bool {
        self.mptcp_faulted_mbps >= self.solo_surviving_mbps
    }
}

/// Runs the graceful-degradation emulation on `campaign`.
///
/// The window is the campaign's best all-networks-alive segment (the
/// same selector Figure 10 uses); paths are Starlink Mobility (survivor)
/// and Verizon (killed from `window_s × outage_from_frac` onward). The
/// result is a pure function of the campaign and `seed`.
pub fn graceful_degradation(
    campaign: &Campaign,
    window_s: u64,
    outage_from_frac: f64,
    seed: u64,
) -> DegradationReport {
    let t0 = fig10::select_windows(campaign, 1, window_s)[0];
    let sat = campaign.traces[&NetworkId::Mobility]
        .0
        .window(t0, t0 + window_s);
    let cell = campaign.traces[&NetworkId::Verizon]
        .0
        .window(t0, t0 + window_s);
    let outage_from_s = (window_s as f64 * outage_from_frac.clamp(0.0, 1.0)).round() as u64;

    let none = FaultSchedule::new();
    let cell_dies = FaultSchedule::new().outage_s(outage_from_s, window_s);

    let solo = run_single_path(&sat, seed);
    let clean = run_mptcp_faulted(
        &sat,
        &cell,
        SchedulerKind::Blest,
        BufferTuning::Tuned,
        seed,
        &none,
        &none,
    );
    let faulted = run_mptcp_faulted(
        &sat,
        &cell,
        SchedulerKind::Blest,
        BufferTuning::Tuned,
        seed,
        &none,
        &cell_dies,
    );

    DegradationReport {
        window_t0_s: t0,
        window_s,
        outage_from_s,
        solo_surviving_mbps: solo.mean_mbps,
        mptcp_faulted_mbps: faulted.mean_mbps,
        mptcp_clean_mbps: clean.mean_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_dataset::campaign::CampaignConfig;

    #[test]
    fn degradation_report_holds_on_a_small_campaign() {
        let campaign = Campaign::generate_with_threads(
            CampaignConfig {
                scale: 0.01,
                seed: 0x00de_cade,
                ..CampaignConfig::default()
            },
            1,
        );
        let r = graceful_degradation(&campaign, 60, 0.4, 42);
        assert!(
            r.degrades_gracefully(),
            "MPTCP under outage {} < surviving solo {}",
            r.mptcp_faulted_mbps,
            r.solo_surviving_mbps
        );
        assert!(
            r.mptcp_faulted_mbps <= r.mptcp_clean_mbps + 1e-9,
            "outage cannot help: faulted {} > clean {}",
            r.mptcp_faulted_mbps,
            r.mptcp_clean_mbps
        );
        assert_eq!(r.outage_from_s, 24);
        // Deterministic: same campaign + seed, same report.
        let again = graceful_degradation(&campaign, 60, 0.4, 42);
        assert_eq!(r, again);
    }
}
