//! Declarative what-if campaigns for the leo-cell reproduction.
//!
//! The paper measures *one* world — the five-state drive that happened.
//! This crate asks the counterfactual questions its synergy argument
//! (§5, §7) implies: what if a thunderstorm front had parked over the
//! route, a carrier had a regional outage, the whole drive were urban
//! canyon, or satellite handovers stalled pathologically often? Three
//! layers answer them:
//!
//! * [`spec`] — serializable scenario descriptions: campaign
//!   re-parameterisation plus typed [`spec::Perturbation`]s on the
//!   per-second condition series; [`library`] ships eight built-ins.
//! * [`emu`] + [`leo_netsim::FaultPipe`] — scheduled faults composed
//!   onto emulated pipes, so the §6 MPTCP experiments run under injected
//!   degradation (the graceful-degradation check).
//! * [`runner`] — a parallel sweep runner with the workspace's
//!   determinism contract: the report is a pure function of (base
//!   config, specs), byte-identical at any thread count.

pub mod emu;
pub mod library;
pub mod perturb;
pub mod registry;
pub mod runner;
pub mod spec;

pub use emu::{graceful_degradation, DegradationReport};
pub use library::{builtin, builtin_scenarios, BASELINE};
pub use perturb::apply_all;
pub use registry::figure_entry;
pub use runner::{
    CoverageMetrics, NetworkMetrics, ScenarioOutcome, ScenarioReport, ScenarioRunner,
};
pub use spec::{CampaignOverrides, NetworkSelector, Perturbation, ScenarioSpec, Window};
