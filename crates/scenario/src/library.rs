//! The built-in scenario library.
//!
//! Eight ready-made what-if campaigns covering the paper's synergy
//! argument from both directions: weather and fault stress on each
//! network family, and the ablations (`leo-only` / `cell-only` /
//! `carrier-outage`) whose coverage must stay dominated by the combined
//! `baseline` deployment (§5's "complementary coverage" claim).

use crate::spec::{CampaignOverrides, NetworkSelector, Perturbation, ScenarioSpec, Window};
use leo_dataset::campaign::WeatherMix;
use leo_geo::area::AreaType;

/// The unperturbed reference campaign every report diffs against.
pub const BASELINE: &str = "baseline";

/// All built-in scenarios, in report order. `baseline` is always first.
pub fn builtin_scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::named(BASELINE, "unperturbed reference campaign"),
        thunderstorm_front(),
        urban_canyon(),
        carrier_outage(),
        handover_storm(),
        leo_only(),
        cell_only(),
        mptcp_combined(),
    ]
}

/// Looks up a built-in scenario by name.
pub fn builtin(name: &str) -> Option<ScenarioSpec> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

/// A slow-moving storm: mostly-rainy weather mix, plus a deep fade and a
/// loss burst while the front passes over the middle of the drive.
fn thunderstorm_front() -> ScenarioSpec {
    ScenarioSpec {
        overrides: CampaignOverrides {
            weather: Some(WeatherMix {
                rain_tenths: 7,
                snow_tenths: 1,
            }),
            ..Default::default()
        },
        ..ScenarioSpec::named(
            "thunderstorm-front",
            "rainy mix + deep mid-drive fade and satellite loss burst",
        )
    }
    .with(Perturbation::RainFade {
        window: Window::frac(0.30, 0.60),
        networks: NetworkSelector::All,
        capacity_factor: 0.55,
    })
    .with(Perturbation::LossBurst {
        window: Window::frac(0.30, 0.60),
        networks: NetworkSelector::Starlink,
        extra_loss: 0.015,
    })
}

/// Every second of the drive reclassified as urban — the satellite's
/// worst obstruction regime, the cellular networks' best deployment.
fn urban_canyon() -> ScenarioSpec {
    ScenarioSpec {
        overrides: CampaignOverrides {
            area: Some(AreaType::Urban),
            ..Default::default()
        },
        ..ScenarioSpec::named("urban-canyon", "whole drive forced to urban area type")
    }
}

/// A regional cellular blackout for 30 % of the drive: §5's argument that
/// satellite keeps the combined deployment alive where carriers fail.
fn carrier_outage() -> ScenarioSpec {
    ScenarioSpec::named(
        "carrier-outage",
        "all three carriers dark for 30% of the drive",
    )
    .with(Perturbation::Outage {
        window: Window::frac(0.25, 0.55),
        networks: NetworkSelector::Cellular,
    })
}

/// Densified satellite handover stalls: a 5 s collapse every 45 s, the
/// paper's 15 s-interval reconfiguration signature made pathological.
fn handover_storm() -> ScenarioSpec {
    ScenarioSpec::named(
        "handover-storm",
        "5s satellite stall every 45s across the whole drive",
    )
    .with(Perturbation::HandoverStorm {
        window: Window::ALL,
        networks: NetworkSelector::Starlink,
        period_s: 45,
        stall_s: 5,
    })
}

/// Ablation: cellular permanently dark, satellite carries everything.
fn leo_only() -> ScenarioSpec {
    ScenarioSpec::named("leo-only", "cellular permanently dark (satellite ablation)").with(
        Perturbation::Outage {
            window: Window::ALL,
            networks: NetworkSelector::Cellular,
        },
    )
}

/// Ablation: satellite permanently dark, carriers carry everything.
fn cell_only() -> ScenarioSpec {
    ScenarioSpec::named(
        "cell-only",
        "satellite permanently dark (cellular ablation)",
    )
    .with(Perturbation::Outage {
        window: Window::ALL,
        networks: NetworkSelector::Starlink,
    })
}

/// The §6 configuration: no condition faults, but the MPTCP
/// graceful-degradation emulation (mid-download single-path outage) runs.
fn mptcp_combined() -> ScenarioSpec {
    ScenarioSpec {
        emulate: true,
        ..ScenarioSpec::named(
            "mptcp-combined",
            "MPTCP over satellite+cellular with a mid-download path outage",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_well_formed() {
        let lib = builtin_scenarios();
        assert_eq!(lib.len(), 8, "the built-in library has eight scenarios");
        assert_eq!(lib[0].name, BASELINE, "baseline leads the report order");
        assert!(lib[0].perturbations.is_empty() && lib[0].overrides.is_empty());
        // Names are unique and resolvable through `builtin`.
        for s in &lib {
            assert_eq!(lib.iter().filter(|o| o.name == s.name).count(), 1);
            assert_eq!(builtin(&s.name).as_ref(), Some(s));
        }
        assert!(builtin("no-such-scenario").is_none());
    }

    #[test]
    fn every_builtin_round_trips_through_json() {
        for s in builtin_scenarios() {
            let back = ScenarioSpec::from_json(&s.to_json()).expect("round trip");
            assert_eq!(s, back);
        }
    }

    #[test]
    fn ablations_kill_the_right_family() {
        let leo = builtin("leo-only").unwrap();
        assert!(matches!(
            leo.perturbations[0],
            Perturbation::Outage {
                networks: NetworkSelector::Cellular,
                ..
            }
        ));
        let cell = builtin("cell-only").unwrap();
        assert!(matches!(
            cell.perturbations[0],
            Perturbation::Outage {
                networks: NetworkSelector::Starlink,
                ..
            }
        ));
    }
}
