//! Applying perturbations to a generated campaign.
//!
//! Faults rewrite the aligned per-second condition series of the
//! selected networks (both directions), then re-run the campaign's
//! scheduled tests against the degraded traces. Everything downstream —
//! figures, coverage, dataset summaries — observes the fault because it
//! lives in the same [`leo_link::trace::LinkTrace`]s they all read.

use crate::spec::Perturbation;
use leo_dataset::campaign::Campaign;
use leo_link::condition::LinkCondition;
use leo_link::trace::LinkTrace;

/// Applies `perturbations` in order to `campaign`'s traces and re-runs
/// the scheduled tests (single-threaded; the sweep parallelism lives
/// across scenarios, not inside one).
///
/// A campaign with no perturbations is returned untouched — in
/// particular its `records` stay byte-identical to generation.
pub fn apply_all(campaign: &mut Campaign, perturbations: &[Perturbation]) {
    if perturbations.is_empty() {
        return;
    }
    let timeline_s = campaign.samples.len() as u64;
    for p in perturbations {
        let (lo, hi) = p.window().bounds_s(timeline_s);
        let selector = p.networks();
        for (&network, (down, up)) in campaign.traces.iter_mut() {
            if !selector.matches(network) {
                continue;
            }
            *down = apply_one(down, p, lo, hi);
            *up = apply_one(up, p, lo, hi);
        }
    }
    campaign.rerun_tests(1);
}

/// One perturbation on one trace. `lo..hi` are absolute campaign
/// seconds, already resolved from the spec's fractional window.
fn apply_one(trace: &LinkTrace, p: &Perturbation, lo: u64, hi: u64) -> LinkTrace {
    match p {
        Perturbation::RainFade {
            capacity_factor, ..
        } => {
            let f = *capacity_factor;
            trace.map_window(lo, hi, move |_, c| c.scale_capacity(f))
        }
        Perturbation::Outage { .. } => trace.map_window(lo, hi, |_, _| LinkCondition::OUTAGE),
        Perturbation::LossBurst { extra_loss, .. } => {
            let extra = *extra_loss;
            trace.map_window(lo, hi, move |_, c| {
                LinkCondition::new(c.capacity_mbps, c.rtt_ms, c.loss + extra)
            })
        }
        Perturbation::RttSpike { extra_ms, .. } => {
            let extra = *extra_ms;
            trace.map_window(lo, hi, move |_, c| {
                LinkCondition::new(c.capacity_mbps, c.rtt_ms + extra, c.loss)
            })
        }
        Perturbation::HandoverStorm {
            period_s, stall_s, ..
        } => {
            let period = (*period_s).max(1);
            let stall = *stall_s;
            trace.map_window(lo, hi, move |t, c| {
                if (t - lo) % period < stall {
                    // A reconfiguration stall: the link all but dies for
                    // a few seconds, with heavy loss and inflated RTT.
                    LinkCondition::new(c.capacity_mbps * 0.05, c.rtt_ms + 150.0, c.loss + 0.25)
                } else {
                    *c
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{NetworkSelector, Window};
    use leo_dataset::campaign::CampaignConfig;
    use leo_dataset::record::NetworkId;

    fn tiny_campaign() -> Campaign {
        Campaign::generate_with_threads(
            CampaignConfig {
                scale: 0.01,
                seed: 0x5ce_a01,
                ..CampaignConfig::default()
            },
            1,
        )
    }

    #[test]
    fn outage_kills_only_selected_networks_inside_window() {
        let base = tiny_campaign();
        let mut hit = base.clone();
        apply_all(
            &mut hit,
            &[Perturbation::Outage {
                window: Window::frac(0.2, 0.4),
                networks: NetworkSelector::Cellular,
            }],
        );
        let timeline = base.samples.len() as u64;
        let (lo, hi) = Window::frac(0.2, 0.4).bounds_s(timeline);
        for (&n, (down, _)) in &hit.traces {
            let orig = &base.traces[&n].0;
            for t in lo..hi {
                if n.is_starlink() {
                    assert_eq!(down.at(t), orig.at(t), "{n:?} untouched");
                } else {
                    assert!(down.at(t).unwrap().is_outage(), "{n:?}@{t} dark");
                }
            }
            // Outside the window nothing changes for anyone.
            assert_eq!(down.at(lo.saturating_sub(1)), orig.at(lo.saturating_sub(1)));
            assert_eq!(down.at(hi), orig.at(hi));
        }
    }

    #[test]
    fn no_perturbations_leave_the_campaign_byte_identical() {
        let base = tiny_campaign();
        let mut copy = base.clone();
        apply_all(&mut copy, &[]);
        assert_eq!(copy.records, base.records);
        for (&n, (down, up)) in &copy.traces {
            assert_eq!(down.samples(), base.traces[&n].0.samples());
            assert_eq!(up.samples(), base.traces[&n].1.samples());
        }
    }

    #[test]
    fn faults_show_up_in_the_rerun_records() {
        let base = tiny_campaign();
        let mut hit = base.clone();
        apply_all(
            &mut hit,
            &[Perturbation::Outage {
                window: Window::ALL,
                networks: NetworkSelector::All,
            }],
        );
        // Every throughput test across a fully dark world delivers ~0.
        let max = hit
            .records
            .iter()
            .map(|r| r.mean_mbps)
            .fold(0.0f64, f64::max);
        assert!(max < 0.05, "dark world still delivered {max} Mbps");
        // And the baseline has real traffic, so the rerun really differs.
        assert!(base.records.iter().any(|r| r.mean_mbps > 1.0));
    }

    #[test]
    fn handover_storm_stalls_on_schedule() {
        let base = tiny_campaign();
        let mut hit = base.clone();
        apply_all(
            &mut hit,
            &[Perturbation::HandoverStorm {
                window: Window::ALL,
                networks: NetworkSelector::One(NetworkId::Mobility),
                period_s: 45,
                stall_s: 5,
            }],
        );
        let orig = &base.traces[&NetworkId::Mobility].0;
        let storm = &hit.traces[&NetworkId::Mobility].0;
        let timeline = base.samples.len() as u64;
        for t in 0..timeline.min(500) {
            let (o, s) = (orig.at(t).unwrap(), storm.at(t).unwrap());
            if t % 45 < 5 {
                assert!((s.capacity_mbps - o.capacity_mbps * 0.05).abs() < 1e-9);
                assert!(s.rtt_ms > o.rtt_ms + 100.0);
            } else {
                assert_eq!(o, s, "t={t} outside a stall");
            }
        }
    }

    #[test]
    fn loss_and_rtt_faults_stay_in_valid_ranges() {
        let base = tiny_campaign();
        let mut hit = base.clone();
        apply_all(
            &mut hit,
            &[
                Perturbation::LossBurst {
                    window: Window::ALL,
                    networks: NetworkSelector::All,
                    extra_loss: 0.9,
                },
                Perturbation::RttSpike {
                    window: Window::ALL,
                    networks: NetworkSelector::All,
                    extra_ms: 500.0,
                },
            ],
        );
        for (down, up) in hit.traces.values() {
            for c in down.samples().iter().chain(up.samples()) {
                assert!((0.0..=1.0).contains(&c.loss));
                assert!(c.rtt_ms >= 500.0);
            }
        }
    }
}
