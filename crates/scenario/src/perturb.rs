//! Applying perturbations to a generated campaign.
//!
//! Faults rewrite the aligned per-second condition series of the
//! selected networks (both directions), then re-run the campaign's
//! scheduled tests against the degraded traces. Everything downstream —
//! figures, coverage, dataset summaries — observes the fault because it
//! lives in the same [`leo_link::trace::LinkTrace`]s they all read.

use crate::spec::Perturbation;
use leo_dataset::campaign::Campaign;
use leo_link::condition::LinkCondition;
use leo_link::trace::LinkTrace;

/// Applies `perturbations` in order to `campaign`'s traces and re-runs
/// the scheduled tests (single-threaded; the sweep parallelism lives
/// across scenarios, not inside one).
///
/// A campaign with no perturbations is returned untouched — in
/// particular its `records` stay byte-identical to generation.
pub fn apply_all(campaign: &mut Campaign, perturbations: &[Perturbation]) {
    if perturbations.is_empty() {
        return;
    }
    let timeline_s = campaign.samples.len() as u64;
    for p in perturbations {
        let (lo, hi) = p.window().bounds_s(timeline_s);
        let selector = p.networks();
        for (&network, (down, up)) in campaign.traces.iter_mut() {
            if !selector.matches(network) {
                continue;
            }
            *down = apply_one(down, p, lo, hi);
            *up = apply_one(up, p, lo, hi);
        }
    }
    campaign.rerun_tests(1);
}

/// One perturbation on one trace. `lo..hi` are absolute campaign
/// seconds, already resolved from the spec's fractional window.
fn apply_one(trace: &LinkTrace, p: &Perturbation, lo: u64, hi: u64) -> LinkTrace {
    match p {
        Perturbation::RainFade {
            capacity_factor, ..
        } => {
            let f = *capacity_factor;
            trace.map_window(lo, hi, move |_, c| c.scale_capacity(f))
        }
        Perturbation::Outage { .. } => trace.map_window(lo, hi, |_, _| LinkCondition::OUTAGE),
        Perturbation::LossBurst { extra_loss, .. } => {
            let extra = *extra_loss;
            trace.map_window(lo, hi, move |_, c| {
                LinkCondition::new(c.capacity_mbps, c.rtt_ms, c.loss + extra)
            })
        }
        Perturbation::RttSpike { extra_ms, .. } => {
            let extra = *extra_ms;
            trace.map_window(lo, hi, move |_, c| {
                LinkCondition::new(c.capacity_mbps, c.rtt_ms + extra, c.loss)
            })
        }
        Perturbation::HandoverStorm {
            period_s, stall_s, ..
        } => {
            let period = (*period_s).max(1);
            let stall = *stall_s;
            trace.map_window(lo, hi, move |t, c| {
                if (t - lo) % period < stall {
                    // A reconfiguration stall: the link all but dies for
                    // a few seconds, with heavy loss and inflated RTT.
                    LinkCondition::new(c.capacity_mbps * 0.05, c.rtt_ms + 150.0, c.loss + 0.25)
                } else {
                    *c
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{NetworkSelector, Window};
    use leo_dataset::campaign::CampaignConfig;
    use leo_dataset::record::NetworkId;

    fn tiny_campaign() -> Campaign {
        Campaign::generate_with_threads(
            CampaignConfig {
                scale: 0.01,
                seed: 0x5ce_a01,
                ..CampaignConfig::default()
            },
            1,
        )
    }

    #[test]
    fn outage_kills_only_selected_networks_inside_window() {
        let base = tiny_campaign();
        let mut hit = base.clone();
        apply_all(
            &mut hit,
            &[Perturbation::Outage {
                window: Window::frac(0.2, 0.4),
                networks: NetworkSelector::Cellular,
            }],
        );
        let timeline = base.samples.len() as u64;
        let (lo, hi) = Window::frac(0.2, 0.4).bounds_s(timeline);
        for (&n, (down, _)) in &hit.traces {
            let orig = &base.traces[&n].0;
            for t in lo..hi {
                if n.is_starlink() {
                    assert_eq!(down.at(t), orig.at(t), "{n:?} untouched");
                } else {
                    assert!(down.at(t).unwrap().is_outage(), "{n:?}@{t} dark");
                }
            }
            // Outside the window nothing changes for anyone.
            assert_eq!(down.at(lo.saturating_sub(1)), orig.at(lo.saturating_sub(1)));
            assert_eq!(down.at(hi), orig.at(hi));
        }
    }

    #[test]
    fn no_perturbations_leave_the_campaign_byte_identical() {
        let base = tiny_campaign();
        let mut copy = base.clone();
        apply_all(&mut copy, &[]);
        assert_eq!(copy.records, base.records);
        for (&n, (down, up)) in &copy.traces {
            assert_eq!(down.samples(), base.traces[&n].0.samples());
            assert_eq!(up.samples(), base.traces[&n].1.samples());
        }
    }

    #[test]
    fn faults_show_up_in_the_rerun_records() {
        let base = tiny_campaign();
        let mut hit = base.clone();
        apply_all(
            &mut hit,
            &[Perturbation::Outage {
                window: Window::ALL,
                networks: NetworkSelector::All,
            }],
        );
        // Every throughput test across a fully dark world delivers ~0.
        let max = hit
            .records
            .iter()
            .map(|r| r.mean_mbps)
            .fold(0.0f64, f64::max);
        assert!(max < 0.05, "dark world still delivered {max} Mbps");
        // And the baseline has real traffic, so the rerun really differs.
        assert!(base.records.iter().any(|r| r.mean_mbps > 1.0));
    }

    #[test]
    fn handover_storm_stalls_on_schedule() {
        let base = tiny_campaign();
        let mut hit = base.clone();
        apply_all(
            &mut hit,
            &[Perturbation::HandoverStorm {
                window: Window::ALL,
                networks: NetworkSelector::One(NetworkId::Mobility),
                period_s: 45,
                stall_s: 5,
            }],
        );
        let orig = &base.traces[&NetworkId::Mobility].0;
        let storm = &hit.traces[&NetworkId::Mobility].0;
        let timeline = base.samples.len() as u64;
        for t in 0..timeline.min(500) {
            let (o, s) = (orig.at(t).unwrap(), storm.at(t).unwrap());
            if t % 45 < 5 {
                assert!((s.capacity_mbps - o.capacity_mbps * 0.05).abs() < 1e-9);
                assert!(s.rtt_ms > o.rtt_ms + 100.0);
            } else {
                assert_eq!(o, s, "t={t} outside a stall");
            }
        }
    }

    #[test]
    fn perturbations_compose_in_application_order() {
        // The contract: `apply_all` folds perturbations strictly in spec
        // order, each one reading the previous one's output. An Outage is
        // a *last-writer* (it overwrites the condition with
        // `LinkCondition::OUTAGE`), so ordering against an additive fault
        // like RttSpike is observable...
        let base = tiny_campaign();
        let w = Window::frac(0.3, 0.6);
        let all = NetworkSelector::All;
        let outage = Perturbation::Outage {
            window: w,
            networks: all,
        };
        let spike = Perturbation::RttSpike {
            window: w,
            networks: all,
            extra_ms: 200.0,
        };

        let mut outage_then_spike = base.clone();
        apply_all(&mut outage_then_spike, &[outage.clone(), spike.clone()]);
        let mut spike_then_outage = base.clone();
        apply_all(&mut spike_then_outage, &[spike, outage.clone()]);

        let timeline = base.samples.len() as u64;
        let (lo, hi) = w.bounds_s(timeline);
        let mid = (lo + hi) / 2;
        let ots = outage_then_spike.traces[&NetworkId::Mobility]
            .0
            .at(mid)
            .unwrap();
        let sto = spike_then_outage.traces[&NetworkId::Mobility]
            .0
            .at(mid)
            .unwrap();
        // Outage last: exactly the OUTAGE condition, spike overwritten.
        assert_eq!(*sto, LinkCondition::OUTAGE);
        // Spike last: it reads the outage's condition and adds its RTT.
        assert_eq!(ots.capacity_mbps, 0.0);
        assert_eq!(ots.rtt_ms, LinkCondition::OUTAGE.rtt_ms + 200.0);
        assert_ne!(ots, sto, "order must be observable");

        // ...while Outage vs LossBurst commutes: the burst's extra loss
        // saturates at the outage's loss = 1.0 cap either way.
        let burst = Perturbation::LossBurst {
            window: w,
            networks: all,
            extra_loss: 0.3,
        };
        let mut outage_then_burst = base.clone();
        apply_all(&mut outage_then_burst, &[outage.clone(), burst.clone()]);
        let mut burst_then_outage = base.clone();
        apply_all(&mut burst_then_outage, &[burst, outage]);
        for n in NetworkId::ALL {
            let a = &outage_then_burst.traces[&n];
            let b = &burst_then_outage.traces[&n];
            assert_eq!(a.0.samples(), b.0.samples(), "{n:?} down");
            assert_eq!(a.1.samples(), b.1.samples(), "{n:?} up");
        }
        assert_eq!(outage_then_burst.records, burst_then_outage.records);
    }

    #[test]
    fn overlapping_windows_compose_on_the_overlap() {
        // RainFade on [0.2, 0.5) and RttSpike on [0.35, 0.7): inside the
        // overlap both effects must be present; outside it exactly one.
        let base = tiny_campaign();
        let mut hit = base.clone();
        let fade_w = Window::frac(0.2, 0.5);
        let spike_w = Window::frac(0.35, 0.7);
        apply_all(
            &mut hit,
            &[
                Perturbation::RainFade {
                    window: fade_w,
                    networks: NetworkSelector::All,
                    capacity_factor: 0.5,
                },
                Perturbation::RttSpike {
                    window: spike_w,
                    networks: NetworkSelector::All,
                    extra_ms: 100.0,
                },
            ],
        );
        let timeline = base.samples.len() as u64;
        let (f_lo, f_hi) = fade_w.bounds_s(timeline);
        let (s_lo, s_hi) = spike_w.bounds_s(timeline);
        assert!(f_lo < s_lo && s_lo < f_hi && f_hi < s_hi, "windows overlap");
        let orig = &base.traces[&NetworkId::Mobility].0;
        let got = &hit.traces[&NetworkId::Mobility].0;
        let check = |t: u64, faded: bool, spiked: bool| {
            let (o, g) = (orig.at(t).unwrap(), got.at(t).unwrap());
            let want_cap = if faded {
                o.capacity_mbps * 0.5
            } else {
                o.capacity_mbps
            };
            let want_rtt = if spiked { o.rtt_ms + 100.0 } else { o.rtt_ms };
            assert!((g.capacity_mbps - want_cap).abs() < 1e-9, "cap@{t}");
            assert!((g.rtt_ms - want_rtt).abs() < 1e-9, "rtt@{t}");
        };
        check(f_lo, true, false); // fade only
        check(s_lo, true, true); // the overlap: both compose
        check(f_hi, false, true); // spike only
        check(s_hi, false, false); // past both: untouched
    }

    #[test]
    fn loss_and_rtt_faults_stay_in_valid_ranges() {
        let base = tiny_campaign();
        let mut hit = base.clone();
        apply_all(
            &mut hit,
            &[
                Perturbation::LossBurst {
                    window: Window::ALL,
                    networks: NetworkSelector::All,
                    extra_loss: 0.9,
                },
                Perturbation::RttSpike {
                    window: Window::ALL,
                    networks: NetworkSelector::All,
                    extra_ms: 500.0,
                },
            ],
        );
        for (down, up) in hit.traces.values() {
            for c in down.samples().iter().chain(up.samples()) {
                assert!((0.0..=1.0).contains(&c.loss));
                assert!(c.rtt_ms >= 500.0);
            }
        }
    }
}
