//! Figure-registry hook: the scenario sweep as an enumerable
//! "experiment" alongside the paper's figures.

use crate::library::builtin_scenarios;
use crate::runner::ScenarioRunner;
use leo_core::FigureEntry;
use leo_dataset::campaign::{Campaign, CampaignConfig};

/// Renders the built-in sweep for a campaign's configuration.
///
/// The sweep re-generates campaigns internally, so (unlike the paper
/// figures) it only borrows `campaign.config`, capped at 2 % scale to
/// stay interactive in `examples/figures.rs`.
fn render_sweep(campaign: &Campaign) -> String {
    let base = CampaignConfig {
        scale: campaign.config.scale.min(0.02),
        ..campaign.config.clone()
    };
    ScenarioRunner::new(base)
        .run(&builtin_scenarios())
        .render_table()
}

/// The sweep's registry entry, appended after the paper figures.
pub fn figure_entry() -> FigureEntry {
    FigureEntry {
        id: "scenarios",
        title: "What-if scenario sweep (built-in library)",
        render: render_sweep,
    }
}
