//! The scenario sweep runner.
//!
//! Takes a matrix of [`ScenarioSpec`]s, executes every scenario against
//! a shared base campaign, and collects a [`ScenarioReport`]. Scenarios
//! fan out over crossbeam scoped threads, but every outcome is a pure
//! function of `(base config, spec)` — the same determinism contract as
//! campaign generation: any thread count yields a byte-identical report.

use crate::emu::{graceful_degradation, DegradationReport};
use crate::library::BASELINE;
use crate::perturb::apply_all;
use crate::spec::ScenarioSpec;
use leo_core::fig9;
use leo_dataset::campaign::{campaign_threads, Campaign, CampaignConfig};
use leo_dataset::record::TestKind;
use leo_link::condition::Direction;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Per-network link health inside one scenario, measured on the
/// (possibly perturbed) downlink condition series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkMetrics {
    /// Network label ("MOB", "VZ", …).
    pub network: String,
    pub mean_capacity_mbps: f64,
    pub mean_rtt_ms: f64,
    /// Fraction of seconds in outage.
    pub outage_frac: f64,
}

/// Coverage shares inside one scenario (the Figure 9 bars that carry the
/// synergy claim).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageMetrics {
    /// High-performance share of Starlink Mobility alone.
    pub mob_high: f64,
    /// High-performance share of the best cellular carrier.
    pub best_cell_high: f64,
    /// High-performance share of the combined MOB+CL deployment.
    pub combined_high: f64,
    /// Very-low (poor) share of the combined deployment.
    pub combined_poor: f64,
}

/// Everything measured for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    pub name: String,
    pub description: String,
    /// Tests executed against the perturbed world.
    pub tests: u32,
    /// Mean of the UDP downlink test records, Mbps.
    pub udp_down_mean_mbps: f64,
    pub networks: Vec<NetworkMetrics>,
    pub coverage: CoverageMetrics,
    /// The §6 graceful-degradation emulation, when the spec asks for it.
    pub emulation: Option<DegradationReport>,
}

/// The collected sweep: one outcome per scenario, in spec order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Base campaign scale the sweep ran at.
    pub scale: f64,
    /// Base campaign seed.
    pub seed: u64,
    pub outcomes: Vec<ScenarioOutcome>,
}

impl ScenarioReport {
    /// Pretty JSON for files and diffing; byte-identical across runs and
    /// thread counts.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a report back from [`Self::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The baseline outcome, when the sweep included one.
    pub fn baseline(&self) -> Option<&ScenarioOutcome> {
        self.outcomes.iter().find(|o| o.name == BASELINE)
    }

    /// Renders the sweep as a comparison table: absolute values plus
    /// deltas against the baseline scenario (computed at render time, so
    /// the stored JSON stays free of derived numbers).
    pub fn render_table(&self) -> String {
        let base = self.baseline();
        let mut out = String::new();
        out.push_str(&format!(
            "Scenario sweep @ scale {:.3}, seed {:#x}\n",
            self.scale, self.seed
        ));
        out.push_str(&format!(
            "{:<20} {:>6} {:>18} {:>9} {:>9} {:>9} {:>8}\n",
            "scenario", "tests", "udp Mbps", "MOB hi", "cell hi", "comb hi", "comb pr"
        ));
        for o in &self.outcomes {
            let delta = |v: f64, b: Option<f64>| match b {
                Some(b) if o.name != BASELINE => format!("{v:.2} ({:+.2})", v - b),
                _ => format!("{v:.2}"),
            };
            out.push_str(&format!(
                "{:<20} {:>6} {:>18} {:>9} {:>9} {:>9} {:>8}\n",
                o.name,
                o.tests,
                delta(o.udp_down_mean_mbps, base.map(|b| b.udp_down_mean_mbps)),
                format!("{:.1}%", o.coverage.mob_high * 100.0),
                format!("{:.1}%", o.coverage.best_cell_high * 100.0),
                format!("{:.1}%", o.coverage.combined_high * 100.0),
                format!("{:.1}%", o.coverage.combined_poor * 100.0),
            ));
            if let Some(e) = &o.emulation {
                out.push_str(&format!(
                    "{:<20} mptcp faulted {:.1} / solo surviving {:.1} / clean {:.1} Mbps\n",
                    "", e.mptcp_faulted_mbps, e.solo_surviving_mbps, e.mptcp_clean_mbps
                ));
            }
        }
        out
    }
}

/// Executes scenario matrices against one base configuration.
pub struct ScenarioRunner {
    base: CampaignConfig,
    threads: usize,
}

impl ScenarioRunner {
    /// A runner over `base`, with [`campaign_threads`] workers.
    pub fn new(base: CampaignConfig) -> Self {
        Self {
            base,
            threads: campaign_threads(),
        }
    }

    /// Overrides the worker count (the report never depends on it).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs every scenario and collects the report, in spec order.
    ///
    /// The base campaign is generated once and shared; scenarios without
    /// overrides clone it, scenarios with overrides regenerate. Each
    /// outcome is a pure function of `(base config, spec)`, so the
    /// round-robin assignment of scenarios to workers is invisible in
    /// the output — `scenario_engine` integration tests pin the 1-vs-N
    /// byte-identity of the JSON report.
    pub fn run(&self, specs: &[ScenarioSpec]) -> ScenarioReport {
        // The shared base is generated single-threaded *inside* this
        // call so the sweep's outcome can never depend on how the
        // caller's campaign was produced.
        let base_campaign = Campaign::generate_with_threads(self.base.clone(), 1);
        let slots: Mutex<Vec<Option<ScenarioOutcome>>> = Mutex::new(vec![None; specs.len()]);
        let workers = self.threads.min(specs.len()).max(1);
        leo_obs::incr("scenario.sweeps", 1);
        leo_obs::gauge_max("scenario.workers", workers as f64);
        let sweep_span = leo_obs::span("scenario.sweep_s");
        crossbeam::thread::scope(|s| {
            for w in 0..workers {
                let base_campaign = &base_campaign;
                let slots = &slots;
                let base = &self.base;
                s.spawn(move |_| {
                    // Worker busy time vs. `scenario.sweep_s` gives the
                    // sweep's per-worker utilisation in the run report.
                    let _busy = leo_obs::span("scenario.worker.busy_s");
                    for (i, spec) in specs.iter().enumerate().skip(w).step_by(workers) {
                        leo_obs::incr("scenario.runs", 1);
                        let _run = leo_obs::span("scenario.run_s");
                        let _named = leo_obs::span(&format!("scenario.{}.run_s", spec.name));
                        let outcome = run_one(spec, base, base_campaign);
                        slots.lock().expect("slots poisoned")[i] = Some(outcome);
                    }
                });
            }
        })
        .expect("scenario scope panicked");
        drop(sweep_span);
        let outcomes = slots
            .into_inner()
            .expect("slots poisoned")
            .into_iter()
            .map(|o| o.expect("every scenario ran"))
            .collect();
        ScenarioReport {
            scale: self.base.scale,
            seed: self.base.seed,
            outcomes,
        }
    }
}

/// Materialises one scenario: campaign, perturbations, metrics.
fn run_one(
    spec: &ScenarioSpec,
    base: &CampaignConfig,
    base_campaign: &Campaign,
) -> ScenarioOutcome {
    let mut campaign = if spec.overrides.is_empty() {
        base_campaign.clone()
    } else {
        Campaign::generate_with_threads(spec.overrides.apply(base), 1)
    };
    apply_all(&mut campaign, &spec.perturbations);

    let networks = campaign
        .traces
        .iter()
        .map(|(&n, (down, _))| {
            let s = down.stats();
            NetworkMetrics {
                network: n.label().to_string(),
                mean_capacity_mbps: s.as_ref().map(|s| s.mean_mbps).unwrap_or(0.0),
                mean_rtt_ms: s.as_ref().map(|s| s.mean_rtt_ms).unwrap_or(0.0),
                outage_frac: s.as_ref().map(|s| s.outage_frac).unwrap_or(1.0),
            }
        })
        .collect();

    let f9 = fig9::run(&campaign);
    let share = |f: fn(&fig9::Fig9Data, &str) -> Option<f64>, l: &str| f(&f9, l).unwrap_or(0.0);
    let coverage = CoverageMetrics {
        mob_high: share(fig9::high_share, "MOB"),
        best_cell_high: share(fig9::high_share, "BestCL"),
        combined_high: share(fig9::high_share, "MOB+CL"),
        combined_poor: share(fig9::poor_share, "MOB+CL"),
    };

    let udp_down: Vec<f64> = campaign
        .records
        .iter()
        .filter(|r| r.kind == TestKind::Udp && r.direction == Direction::Down)
        .map(|r| r.mean_mbps)
        .collect();
    let udp_down_mean_mbps = if udp_down.is_empty() {
        0.0
    } else {
        udp_down.iter().sum::<f64>() / udp_down.len() as f64
    };

    let emulation = spec
        .emulate
        .then(|| graceful_degradation(&campaign, 60, 0.4, campaign.config.seed));

    let outcome = ScenarioOutcome {
        name: spec.name.clone(),
        description: spec.description.clone(),
        tests: campaign.records.len() as u32,
        udp_down_mean_mbps,
        networks,
        coverage,
        emulation,
    };
    if leo_netsim::strict_checks() {
        audit_outcome(&outcome);
    }
    outcome
}

/// Strict-mode self-audit: every scenario outcome must stay inside its
/// physical ranges regardless of how hard the perturbations bite.
fn audit_outcome(o: &ScenarioOutcome) {
    let frac = |v: f64, what: &str| {
        assert!(
            (0.0..=1.0).contains(&v),
            "scenario '{}': {what} = {v} outside [0, 1]",
            o.name
        );
    };
    frac(o.coverage.mob_high, "mob_high");
    frac(o.coverage.best_cell_high, "best_cell_high");
    frac(o.coverage.combined_high, "combined_high");
    frac(o.coverage.combined_poor, "combined_poor");
    assert!(
        o.udp_down_mean_mbps.is_finite() && o.udp_down_mean_mbps >= 0.0,
        "scenario '{}': udp mean {} not a finite non-negative rate",
        o.name,
        o.udp_down_mean_mbps
    );
    for n in &o.networks {
        assert!(
            n.mean_capacity_mbps.is_finite() && n.mean_capacity_mbps >= 0.0,
            "scenario '{}' network {}: capacity {}",
            o.name,
            n.network,
            n.mean_capacity_mbps
        );
        assert!(
            n.mean_rtt_ms.is_finite() && n.mean_rtt_ms >= 0.0,
            "scenario '{}' network {}: rtt {}",
            o.name,
            n.network,
            n.mean_rtt_ms
        );
        frac(n.outage_frac, "outage_frac");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::builtin;
    use crate::spec::{NetworkSelector, Perturbation, Window};

    fn tiny_base() -> CampaignConfig {
        CampaignConfig {
            scale: 0.01,
            seed: 0x5eed,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let specs = vec![
            builtin(BASELINE).unwrap(),
            ScenarioSpec::named("dark", "cellular dark mid-drive").with(Perturbation::Outage {
                window: Window::frac(0.3, 0.7),
                networks: NetworkSelector::Cellular,
            }),
        ];
        let report = ScenarioRunner::new(tiny_base()).with_threads(2).run(&specs);
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.outcomes[0].name, BASELINE);
        let back = ScenarioReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(report, back);
        let table = report.render_table();
        assert!(table.contains("baseline") && table.contains("dark"));
    }

    #[test]
    fn perturbed_outcome_differs_from_baseline_in_the_expected_direction() {
        let specs = vec![
            builtin(BASELINE).unwrap(),
            ScenarioSpec::named("half-dark", "everything dark half the time").with(
                Perturbation::Outage {
                    window: Window::frac(0.0, 0.5),
                    networks: NetworkSelector::All,
                },
            ),
        ];
        let report = ScenarioRunner::new(tiny_base()).with_threads(2).run(&specs);
        let base = &report.outcomes[0];
        let dark = &report.outcomes[1];
        assert!(dark.udp_down_mean_mbps < base.udp_down_mean_mbps);
        for (b, d) in base.networks.iter().zip(&dark.networks) {
            assert_eq!(b.network, d.network);
            assert!(d.outage_frac > b.outage_frac);
        }
    }
}
