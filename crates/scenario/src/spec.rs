//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] is a serializable description of one what-if
//! experiment: how the base campaign is re-parameterised
//! ([`CampaignOverrides`]) and which faults are injected into the
//! per-second condition series ([`Perturbation`]). Specs are plain data —
//! JSON in, JSON out — so campaigns can be version-controlled, diffed,
//! and shared; the [`crate::runner::ScenarioRunner`] turns them into
//! measured outcomes.

use leo_dataset::campaign::{CampaignConfig, WeatherMix};
use leo_dataset::record::NetworkId;
use leo_geo::area::AreaType;
use serde::{Deserialize, Serialize};

/// A time window expressed as fractions of the campaign timeline, so one
/// spec works unchanged at every `--scale`.
///
/// `start_frac`/`end_frac` are clamped to `[0, 1]` and the window is
/// empty when inverted; [`Window::bounds_s`] resolves the fractions
/// against a concrete timeline length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Window {
    pub start_frac: f64,
    pub end_frac: f64,
}

impl Window {
    /// The whole campaign.
    pub const ALL: Window = Window {
        start_frac: 0.0,
        end_frac: 1.0,
    };

    /// A window from `start_frac` to `end_frac` of the timeline.
    pub fn frac(start_frac: f64, end_frac: f64) -> Self {
        Self {
            start_frac,
            end_frac,
        }
    }

    /// Resolves the window against a timeline of `timeline_s` seconds,
    /// returning half-open second bounds `[start, end)`.
    ///
    /// A fractionally non-empty window (`end_frac > start_frac` after
    /// clamping) always resolves to at least one second on a non-empty
    /// timeline: rounding both endpoints to the same second widens the
    /// result to a single sample instead of silently no-opping the
    /// perturbation (e.g. `frac(0.2, 0.4)` on a 1-second timeline).
    /// Inverted windows stay empty.
    pub fn bounds_s(&self, timeline_s: u64) -> (u64, u64) {
        let clamp = |f: f64| (f.clamp(0.0, 1.0) * timeline_s as f64).round() as u64;
        let mut start = clamp(self.start_frac).min(timeline_s);
        let mut end = clamp(self.end_frac).max(start).min(timeline_s);
        let nonempty_frac = self.end_frac.clamp(0.0, 1.0) > self.start_frac.clamp(0.0, 1.0);
        if end == start && nonempty_frac && timeline_s > 0 {
            if start < timeline_s {
                end = start + 1;
            } else {
                start = timeline_s - 1;
            }
        }
        (start, end)
    }
}

/// Which networks a perturbation hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkSelector {
    /// Every network in the campaign.
    All,
    /// Both Starlink service plans (Roam and Mobility).
    Starlink,
    /// The three cellular carriers.
    Cellular,
    /// Exactly one network.
    One(NetworkId),
}

impl NetworkSelector {
    /// Does the selector cover `network`?
    pub fn matches(&self, network: NetworkId) -> bool {
        match self {
            NetworkSelector::All => true,
            NetworkSelector::Starlink => network.is_starlink(),
            NetworkSelector::Cellular => !network.is_starlink(),
            NetworkSelector::One(n) => *n == network,
        }
    }
}

/// One scheduled fault on the per-second condition series.
///
/// Perturbations rewrite the aligned [`leo_link::trace::LinkTrace`]s of
/// the selected networks inside their window; the campaign's tests are
/// then re-run against the degraded world, so every downstream figure
/// and metric observes the fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Perturbation {
    /// Rain fade: link capacity scaled by `capacity_factor` (§3.3 found
    /// both Starlink plans visibly weather-sensitive).
    RainFade {
        window: Window,
        networks: NetworkSelector,
        capacity_factor: f64,
    },
    /// Hard outage: the selected networks deliver nothing in the window.
    Outage {
        window: Window,
        networks: NetworkSelector,
    },
    /// Additive random-loss burst (interference, congested backhaul).
    LossBurst {
        window: Window,
        networks: NetworkSelector,
        extra_loss: f64,
    },
    /// Latency spike: `extra_ms` added to every RTT in the window.
    RttSpike {
        window: Window,
        networks: NetworkSelector,
        extra_ms: f64,
    },
    /// A train of short handover stalls: every `period_s` seconds the
    /// link collapses for `stall_s` seconds (capacity ×0.05, +25 % loss,
    /// +150 ms RTT) — the §4/§5 satellite-handover signature, densified.
    HandoverStorm {
        window: Window,
        networks: NetworkSelector,
        period_s: u64,
        stall_s: u64,
    },
}

impl Perturbation {
    /// The perturbation's window.
    pub fn window(&self) -> Window {
        match self {
            Perturbation::RainFade { window, .. }
            | Perturbation::Outage { window, .. }
            | Perturbation::LossBurst { window, .. }
            | Perturbation::RttSpike { window, .. }
            | Perturbation::HandoverStorm { window, .. } => *window,
        }
    }

    /// The perturbation's network selector.
    pub fn networks(&self) -> NetworkSelector {
        match self {
            Perturbation::RainFade { networks, .. }
            | Perturbation::Outage { networks, .. }
            | Perturbation::LossBurst { networks, .. }
            | Perturbation::RttSpike { networks, .. }
            | Perturbation::HandoverStorm { networks, .. } => *networks,
        }
    }
}

/// Re-parameterisation of the base campaign before perturbations apply.
///
/// `None` fields inherit from the runner's base configuration, so most
/// scenarios override nothing and share one generated campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignOverrides {
    pub seed: Option<u64>,
    pub scale: Option<f64>,
    pub weather: Option<WeatherMix>,
    pub area: Option<AreaType>,
}

impl CampaignOverrides {
    /// Does this override require regenerating the campaign (vs. reusing
    /// the runner's shared base)?
    pub fn is_empty(&self) -> bool {
        *self == CampaignOverrides::default()
    }

    /// The concrete configuration: `base` with the overrides applied.
    pub fn apply(&self, base: &CampaignConfig) -> CampaignConfig {
        CampaignConfig {
            seed: self.seed.unwrap_or(base.seed),
            scale: self.scale.unwrap_or(base.scale),
            weather: self.weather.unwrap_or(base.weather),
            area_override: self.area.or(base.area_override),
            ..base.clone()
        }
    }
}

/// One named what-if experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Unique name, used in reports and `--only` filters.
    pub name: String,
    /// One-line description for the report table.
    pub description: String,
    /// Campaign re-parameterisation (empty = reuse the shared base).
    pub overrides: CampaignOverrides,
    /// Faults injected into the condition series, applied in order.
    pub perturbations: Vec<Perturbation>,
    /// Also run the §6 MPTCP graceful-degradation emulation for this
    /// scenario (packet-level, so opt-in per scenario).
    pub emulate: bool,
}

impl ScenarioSpec {
    /// A no-fault scenario with the given name.
    pub fn named(name: impl Into<String>, description: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            description: description.into(),
            overrides: CampaignOverrides::default(),
            perturbations: Vec::new(),
            emulate: false,
        }
    }

    /// Adds a perturbation (builder style).
    pub fn with(mut self, p: Perturbation) -> Self {
        self.perturbations.push(p);
        self
    }

    /// Serializes the spec to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parses a spec from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_bounds_clamp_and_order() {
        assert_eq!(Window::ALL.bounds_s(100), (0, 100));
        assert_eq!(Window::frac(0.25, 0.55).bounds_s(1000), (250, 550));
        // Inverted and out-of-range windows degrade to empty / clamped.
        assert_eq!(Window::frac(0.8, 0.2).bounds_s(100), (80, 80));
        assert_eq!(Window::frac(-3.0, 7.0).bounds_s(100), (0, 100));
    }

    #[test]
    fn nonempty_fractional_window_never_rounds_to_empty() {
        // Pre-fix, both endpoints rounded to the same second and the
        // perturbation silently no-opped: frac(0.2, 0.4) on a 1 s timeline
        // gave (0, 0).
        assert_eq!(Window::frac(0.2, 0.4).bounds_s(1), (0, 1));
        // Both endpoints round to 1 on a 2 s timeline (0.9 and 1.1).
        assert_eq!(Window::frac(0.45, 0.55).bounds_s(2), (1, 2));
        // Both endpoints round to the timeline end: widen backwards.
        assert_eq!(Window::frac(0.9, 1.0).bounds_s(1), (0, 1));
        // Inverted windows remain empty — widening is only for windows
        // that are non-degenerate in fraction space...
        assert_eq!(Window::frac(0.4, 0.2).bounds_s(1), (0, 0));
        // ...as are zero-width ones and empty timelines.
        assert_eq!(Window::frac(0.3, 0.3).bounds_s(100), (30, 30));
        assert_eq!(Window::frac(0.2, 0.4).bounds_s(0), (0, 0));
    }

    #[test]
    fn selector_matches_the_right_networks() {
        use NetworkId::*;
        for n in NetworkId::ALL {
            assert!(NetworkSelector::All.matches(n));
            assert_eq!(NetworkSelector::Starlink.matches(n), n.is_starlink());
            assert_eq!(NetworkSelector::Cellular.matches(n), !n.is_starlink());
        }
        assert!(NetworkSelector::One(Verizon).matches(Verizon));
        assert!(!NetworkSelector::One(Verizon).matches(Att));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ScenarioSpec {
            name: "storm".into(),
            description: "a storm".into(),
            overrides: CampaignOverrides {
                seed: Some(7),
                scale: None,
                weather: Some(WeatherMix {
                    rain_tenths: 7,
                    snow_tenths: 1,
                }),
                area: Some(AreaType::Urban),
            },
            perturbations: vec![
                Perturbation::RainFade {
                    window: Window::frac(0.3, 0.6),
                    networks: NetworkSelector::Starlink,
                    capacity_factor: 0.55,
                },
                Perturbation::Outage {
                    window: Window::ALL,
                    networks: NetworkSelector::One(NetworkId::TMobile),
                },
                Perturbation::HandoverStorm {
                    window: Window::ALL,
                    networks: NetworkSelector::Starlink,
                    period_s: 45,
                    stall_s: 5,
                },
            ],
            emulate: true,
        };
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).expect("round trip");
        assert_eq!(spec, back);
    }

    #[test]
    fn empty_overrides_reuse_the_base_config() {
        let base = CampaignConfig::small();
        let o = CampaignOverrides::default();
        assert!(o.is_empty());
        let applied = o.apply(&base);
        assert_eq!(applied.seed, base.seed);
        assert_eq!(applied.scale, base.scale);
        let o2 = CampaignOverrides {
            scale: Some(0.5),
            ..Default::default()
        };
        assert!(!o2.is_empty());
        assert_eq!(o2.apply(&base).scale, 0.5);
        assert_eq!(o2.apply(&base).seed, base.seed);
    }
}
