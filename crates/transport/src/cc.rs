//! Pluggable congestion control: Reno and CUBIC.
//!
//! Windows are measured in packets (MSS units). The controllers are
//! event-driven: the TCP machinery reports ACKed packets, loss events
//! (fast retransmit), and timeouts; the controller answers with the
//! current congestion window.

use serde::{Deserialize, Serialize};

/// Which congestion controller a connection uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CcAlgorithm {
    Reno,
    Cubic,
    /// A BBR-style model-based controller: paces to a windowed-max
    /// delivery-rate estimate instead of reacting to individual losses —
    /// the "congestion control tailored for such characteristics" the
    /// paper calls for over Starlink's bursty-loss channel.
    BbrLite,
}

impl CcAlgorithm {
    /// Instantiates the controller.
    pub fn build(&self) -> Box<dyn CongestionControl> {
        match self {
            CcAlgorithm::Reno => Box::new(Reno::new()),
            CcAlgorithm::Cubic => Box::new(Cubic::new()),
            CcAlgorithm::BbrLite => Box::new(BbrLite::new()),
        }
    }
}

/// The congestion-control interface.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Current congestion window in packets (≥ 1).
    fn cwnd(&self) -> f64;

    /// Slow-start threshold in packets.
    fn ssthresh(&self) -> f64;

    /// `n` new packets were cumulatively ACKed at time `now_s`, with the
    /// connection's smoothed RTT `srtt_s`.
    fn on_ack(&mut self, n: u64, now_s: f64, srtt_s: f64);

    /// A loss event was detected by fast retransmit (triple-dupack) at
    /// `now_s`.
    fn on_loss_event(&mut self, now_s: f64);

    /// The retransmission timer fired.
    fn on_timeout(&mut self, now_s: f64);

    /// True while in slow start.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }

    /// Externally scale the additive-increase aggressiveness; used by
    /// MPTCP's LIA coupling (1.0 = uncoupled).
    fn set_increase_scale(&mut self, scale: f64);
}

/// TCP Reno (NewReno-style reaction, AIMD 1/2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
    increase_scale: f64,
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl Reno {
    /// Initial window of 10 packets (RFC 6928).
    pub fn new() -> Self {
        Self {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            increase_scale: 1.0,
        }
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, n: u64, _now_s: f64, _srtt_s: f64) {
        for _ in 0..n {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0; // slow start: +1 per ACKed packet
            } else {
                // Congestion avoidance: +1/cwnd per ACK, LIA-scalable.
                self.cwnd += self.increase_scale / self.cwnd;
            }
        }
    }

    fn on_loss_event(&mut self, _now_s: f64) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now_s: f64) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }

    fn set_increase_scale(&mut self, scale: f64) {
        self.increase_scale = scale.clamp(0.0, 1.0);
    }
}

/// CUBIC (RFC 8312): cubic window growth with a TCP-friendly region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window size just before the last reduction.
    w_max: f64,
    /// Time of the last reduction, seconds.
    epoch_start_s: Option<f64>,
    /// Reno-emulation window for the TCP-friendly region.
    w_est: f64,
    increase_scale: f64,
    /// Smallest smoothed RTT seen, for the HyStart delay-increase exit.
    min_srtt_s: f64,
}

/// CUBIC scaling constant (RFC 8312).
const CUBIC_C: f64 = 0.4;
/// Multiplicative decrease factor (RFC 8312: β = 0.7).
const CUBIC_BETA: f64 = 0.7;

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl Cubic {
    /// Initial window of 10 packets.
    pub fn new() -> Self {
        Self {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start_s: None,
            w_est: 10.0,
            increase_scale: 1.0,
            min_srtt_s: f64::INFINITY,
        }
    }

    fn w_cubic(&self, t_s: f64) -> f64 {
        let k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        CUBIC_C * (t_s - k).powi(3) + self.w_max
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, n: u64, now_s: f64, srtt_s: f64) {
        self.min_srtt_s = self.min_srtt_s.min(srtt_s);
        for _ in 0..n {
            if self.cwnd < self.ssthresh {
                // HyStart-style delay-increase exit: once queueing inflates
                // the RTT well past its floor, stop doubling — Linux CUBIC
                // does the same to avoid catastrophic slow-start overshoot.
                if srtt_s > self.min_srtt_s * 1.4 && self.cwnd >= 32.0 {
                    self.ssthresh = self.cwnd;
                } else {
                    self.cwnd += 1.0;
                    continue;
                }
            }
            let epoch = *self.epoch_start_s.get_or_insert(now_s);
            let t = now_s - epoch;
            // Target one RTT ahead.
            let target = self.w_cubic(t + srtt_s.max(1e-3));
            // TCP-friendly (Reno-emulation) window.
            self.w_est += self.increase_scale / self.cwnd;
            let target = target.max(self.w_est);
            if target > self.cwnd {
                // Approach the target over one window of ACKs.
                self.cwnd += (target - self.cwnd) / self.cwnd;
            } else {
                self.cwnd += 0.01 / self.cwnd; // minimal growth at plateau
            }
        }
    }

    fn on_loss_event(&mut self, now_s: f64) {
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * CUBIC_BETA).max(2.0);
        self.ssthresh = self.cwnd;
        self.w_est = self.cwnd;
        self.epoch_start_s = Some(now_s);
    }

    fn on_timeout(&mut self, now_s: f64) {
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0);
        self.cwnd = 1.0;
        self.w_est = 1.0;
        self.epoch_start_s = Some(now_s);
    }

    fn set_increase_scale(&mut self, scale: f64) {
        self.increase_scale = scale.clamp(0.0, 1.0);
    }
}

/// BBR-lite: a model-based controller in the BBR family.
///
/// It estimates the bottleneck bandwidth as a windowed maximum of measured
/// delivery rate and the path's propagation delay as a windowed minimum of
/// the smoothed RTT, then sets `cwnd ≈ gain × BtlBw × RTprop`. Random loss
/// does not shrink the model, which is precisely why this family of
/// controllers survives Starlink's obstruction loss where CUBIC collapses
/// (§4.1's "calls for better congestion control"). Timeouts still reset
/// conservatively.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BbrLite {
    cwnd: f64,
    /// Total packets delivered (ACKed).
    delivered: f64,
    /// Start of the current rate sample.
    sample_t_s: f64,
    sample_delivered: f64,
    /// Windowed max delivery rate, packets/s: (measured_at_s, rate).
    bw_samples: Vec<(f64, f64)>,
    /// Windowed min smoothed RTT, seconds.
    min_rtt_s: f64,
    min_rtt_at_s: f64,
}

/// How long a bandwidth sample stays in the max filter, seconds.
const BBR_BW_WINDOW_S: f64 = 10.0;
/// How long before the RTprop estimate is allowed to rise again, seconds.
const BBR_RTT_WINDOW_S: f64 = 10.0;
/// Steady-state cwnd gain over the estimated BDP.
const BBR_CWND_GAIN: f64 = 2.0;

impl Default for BbrLite {
    fn default() -> Self {
        Self::new()
    }
}

impl BbrLite {
    /// Initial window of 10 packets, empty model.
    pub fn new() -> Self {
        Self {
            cwnd: 10.0,
            delivered: 0.0,
            sample_t_s: 0.0,
            sample_delivered: 0.0,
            bw_samples: Vec::new(),
            min_rtt_s: f64::INFINITY,
            min_rtt_at_s: 0.0,
        }
    }

    /// Current bottleneck-bandwidth estimate, packets/s.
    pub fn btl_bw(&self) -> f64 {
        self.bw_samples.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }
}

impl CongestionControl for BbrLite {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        // BBR has no slow-start threshold; report infinity so
        // `in_slow_start` stays true only while the model is empty.
        if self.bw_samples.is_empty() {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn on_ack(&mut self, n: u64, now_s: f64, srtt_s: f64) {
        self.delivered += n as f64;

        // RTprop: windowed min of the smoothed RTT.
        if srtt_s < self.min_rtt_s || now_s - self.min_rtt_at_s > BBR_RTT_WINDOW_S {
            self.min_rtt_s = srtt_s;
            self.min_rtt_at_s = now_s;
        }

        // Delivery-rate sample roughly once per RTT.
        let elapsed = now_s - self.sample_t_s;
        if elapsed >= srtt_s.max(0.01) {
            let rate = (self.delivered - self.sample_delivered) / elapsed;
            self.bw_samples.push((now_s, rate));
            self.bw_samples
                .retain(|&(t, _)| now_s - t <= BBR_BW_WINDOW_S);
            self.sample_t_s = now_s;
            self.sample_delivered = self.delivered;
        }

        let bdp = self.btl_bw() * self.min_rtt_s.min(10.0);
        if bdp > 0.0 {
            self.cwnd = (BBR_CWND_GAIN * bdp).max(4.0);
        } else {
            // Model still empty: grow like slow start to feed it.
            self.cwnd += n as f64;
        }
    }

    fn on_loss_event(&mut self, _now_s: f64) {
        // Random loss does not change the path model; trim marginally so
        // persistent congestion loss still registers through the rate
        // samples it depresses.
        self.cwnd = (self.cwnd * 0.95).max(4.0);
    }

    fn on_timeout(&mut self, _now_s: f64) {
        self.cwnd = 4.0;
        self.bw_samples.clear();
    }

    fn set_increase_scale(&mut self, _scale: f64) {
        // Coupling is a loss-based AIMD concept; BBR-lite ignores it.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut cc = Reno::new();
        // One RTT: every in-flight packet ACKed → cwnd doubles.
        let w0 = cc.cwnd();
        cc.on_ack(w0 as u64, 0.0, 0.05);
        assert!((cc.cwnd() - 2.0 * w0).abs() < 1e-9);
    }

    #[test]
    fn reno_congestion_avoidance_is_linear() {
        let mut cc = Reno::new();
        cc.on_loss_event(0.0); // leave slow start (ssthresh = 5, cwnd = 5)
        let w = cc.cwnd();
        cc.on_ack(w as u64, 0.0, 0.05); // one RTT of ACKs
        assert!(
            (cc.cwnd() - (w + 1.0)).abs() < 0.1,
            "cwnd {} vs {}",
            cc.cwnd(),
            w + 1.0
        );
    }

    #[test]
    fn reno_halves_on_loss() {
        let mut cc = Reno::new();
        cc.on_ack(90, 0.0, 0.05); // grow to 100 in slow start
        let before = cc.cwnd();
        cc.on_loss_event(0.0);
        assert!((cc.cwnd() - before / 2.0).abs() < 1e-9);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn timeout_resets_to_one() {
        for algo in [CcAlgorithm::Reno, CcAlgorithm::Cubic] {
            let mut cc = algo.build();
            cc.on_ack(50, 0.0, 0.05);
            cc.on_timeout(1.0);
            assert_eq!(cc.cwnd(), 1.0, "{algo:?}");
            assert!(cc.in_slow_start(), "{algo:?} should re-enter slow start");
        }
    }

    #[test]
    fn bbr_builds_a_model_and_sizes_cwnd_to_bdp() {
        let mut cc = BbrLite::new();
        // Feed 1 RTT-spaced ACK batches: 100 packets per 50 ms = 2000 pps.
        let mut t = 0.0;
        for _ in 0..40 {
            t += 0.05;
            cc.on_ack(100, t, 0.05);
        }
        let bw = cc.btl_bw();
        assert!((1500.0..2500.0).contains(&bw), "BtlBw {bw} pps");
        // cwnd ≈ 2 × BDP = 2 × 2000 × 0.05 = 200.
        assert!((150.0..260.0).contains(&cc.cwnd()), "cwnd {}", cc.cwnd());
    }

    #[test]
    fn bbr_ignores_random_loss() {
        let mut cc = BbrLite::new();
        let mut t = 0.0;
        for _ in 0..40 {
            t += 0.05;
            cc.on_ack(100, t, 0.05);
        }
        let before = cc.cwnd();
        for i in 0..10 {
            cc.on_loss_event(t + i as f64 * 0.01);
        }
        assert!(
            cc.cwnd() > before * 0.5,
            "BBR-lite should shrug off loss events: {} → {}",
            before,
            cc.cwnd()
        );
        // While CUBIC would have collapsed by ≥ 0.7^10.
        let mut cubic = Cubic::new();
        cubic.on_ack(190, 0.0, 0.05);
        for i in 0..10 {
            cubic.on_loss_event(i as f64 * 0.01);
        }
        assert!(cubic.cwnd() < cc.cwnd());
    }

    #[test]
    fn bbr_timeout_is_conservative() {
        let mut cc = BbrLite::new();
        let mut t = 0.0;
        for _ in 0..20 {
            t += 0.05;
            cc.on_ack(50, t, 0.05);
        }
        cc.on_timeout(t + 1.0);
        assert_eq!(cc.cwnd(), 4.0);
    }

    #[test]
    fn cubic_recovers_towards_wmax() {
        let mut cc = Cubic::new();
        cc.on_ack(190, 0.0, 0.05); // slow start to 200
        let w_before = cc.cwnd();
        cc.on_loss_event(10.0);
        assert!((cc.cwnd() - w_before * 0.7).abs() < 1.0);
        // Feed ACKs over simulated time; window should climb back towards
        // w_max within ~K seconds.
        let mut t = 10.0;
        for _ in 0..400 {
            t += 0.05;
            cc.on_ack(cc.cwnd() as u64, t, 0.05);
            if cc.cwnd() >= w_before * 0.95 {
                break;
            }
        }
        assert!(
            cc.cwnd() >= w_before * 0.95,
            "cwnd {} never re-approached w_max {}",
            cc.cwnd(),
            w_before
        );
    }

    #[test]
    fn cubic_beats_reno_recovery_speed_at_scale() {
        // After a loss at a large window, CUBIC regains window faster than
        // Reno over the same ACK stream — its raison d'être on LFNs.
        let mut cubic = Cubic::new();
        let mut reno = Reno::new();
        cubic.on_ack(490, 0.0, 0.1);
        reno.on_ack(490, 0.0, 0.1);
        cubic.on_loss_event(10.0);
        reno.on_loss_event(10.0);
        let mut t = 10.0;
        for _ in 0..40 {
            t += 0.1;
            cubic.on_ack(cubic.cwnd() as u64, t, 0.1);
            reno.on_ack(reno.cwnd() as u64, t, 0.1);
        }
        assert!(
            cubic.cwnd() > reno.cwnd(),
            "cubic {} ≤ reno {}",
            cubic.cwnd(),
            reno.cwnd()
        );
    }

    #[test]
    fn increase_scale_throttles_growth() {
        let mut a = Reno::new();
        let mut b = Reno::new();
        a.on_loss_event(0.0);
        b.on_loss_event(0.0);
        b.set_increase_scale(0.25);
        for _ in 0..100 {
            a.on_ack(5, 0.0, 0.05);
            b.on_ack(5, 0.0, 0.05);
        }
        assert!(a.cwnd() > b.cwnd());
    }

    #[test]
    fn cwnd_never_below_one() {
        for algo in [CcAlgorithm::Reno, CcAlgorithm::Cubic] {
            let mut cc = algo.build();
            for i in 0..10 {
                cc.on_timeout(i as f64);
                cc.on_loss_event(i as f64 + 0.5);
                assert!(cc.cwnd() >= 1.0, "{algo:?} cwnd {}", cc.cwnd());
            }
        }
    }
}
