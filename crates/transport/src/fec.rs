//! Forward error correction over UDP — the paper's suggested remedy,
//! realised.
//!
//! §1: Starlink's elevated packet loss "calls for better congestion
//! control or Forward Error Correction (FEC) algorithms tailored for such
//! characteristics." This module implements systematic XOR-parity FEC:
//! every `k` data packets are followed by one parity packet that can
//! repair any single loss within the group. A group with more than one
//! loss is unrepairable (XOR parity is a 1-erasure code), which makes the
//! scheme cheap but sensitive to loss burstiness — exactly the trade-off
//! an evaluation over Starlink-like bursty loss should expose.
//!
//! Packet encoding: data packets carry their group in `aux_a`; parity
//! packets additionally set `aux_b = 1`.

use crate::throughput::ThroughputMeter;
use leo_netsim::{Agent, Context, LinkId, Packet, SimTime};
use std::collections::BTreeMap;

/// Marks a packet as parity in `aux_b`.
const PARITY_FLAG: u64 = 1;

/// A paced UDP sender inserting one parity packet per `group_size` data
/// packets.
pub struct FecBlaster {
    flow: u32,
    out: LinkId,
    gap: SimTime,
    until: SimTime,
    group_size: u64,
    next_seq: u64,
    /// Data packets emitted in the current group so far.
    in_group: u64,
    pub data_sent: u64,
    pub parity_sent: u64,
    started: bool,
}

impl FecBlaster {
    /// Blasts at `rate_mbps` *of data* (parity overhead rides on top)
    /// until `until`.
    pub fn new(flow: u32, out: LinkId, rate_mbps: f64, group_size: u64, until: SimTime) -> Self {
        assert!(group_size >= 2, "parity per packet makes no sense");
        let pps = (rate_mbps.max(0.001) * 1e6 / 8.0) / 1500.0;
        Self {
            flow,
            out,
            gap: SimTime::from_secs_f64(1.0 / pps),
            until,
            group_size,
            next_seq: 0,
            in_group: 0,
            data_sent: 0,
            parity_sent: 0,
            started: false,
        }
    }

    /// Starts the blast.
    pub fn start(&mut self, ctx: &mut Context) {
        if !self.started {
            self.started = true;
            self.tick(ctx);
        }
    }

    fn tick(&mut self, ctx: &mut Context) {
        if ctx.now() >= self.until {
            return;
        }
        if self.in_group == self.group_size {
            // Emit the group's parity packet.
            let group = (self.next_seq - 1) / self.group_size;
            let pkt = Packet::data(u64::MAX - group, self.flow, self.next_seq, ctx.now())
                .with_aux(group, PARITY_FLAG);
            ctx.send(self.out, pkt);
            self.parity_sent += 1;
            self.in_group = 0;
        } else {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.in_group += 1;
            let group = seq / self.group_size;
            ctx.send(
                self.out,
                Packet::data(seq, self.flow, seq, ctx.now()).with_aux(group, 0),
            );
            self.data_sent += 1;
        }
        ctx.set_timer(self.gap, 0);
    }
}

impl Agent for FecBlaster {
    fn on_packet(&mut self, _ctx: &mut Context, _link: LinkId, _packet: Packet) {}

    fn on_timer(&mut self, ctx: &mut Context, _timer_id: u64) {
        self.tick(ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Per-group reception state at the sink.
#[derive(Debug, Default)]
struct GroupState {
    data_received: u64,
    parity_received: bool,
    /// Whether this group already credited a repair.
    repaired: bool,
}

/// The receiving side: counts direct deliveries plus single-loss repairs.
pub struct FecSink {
    flow: u32,
    group_size: u64,
    groups: BTreeMap<u64, GroupState>,
    /// Goodput including repaired packets.
    pub meter: ThroughputMeter,
    pub data_received: u64,
    pub parity_received: u64,
    pub repaired: u64,
    pub max_seq_seen: u64,
}

impl FecSink {
    /// Creates a sink expecting groups of `group_size`.
    pub fn new(flow: u32, group_size: u64) -> Self {
        Self {
            flow,
            group_size,
            groups: BTreeMap::new(),
            meter: ThroughputMeter::new(),
            data_received: 0,
            parity_received: 0,
            repaired: 0,
            max_seq_seen: 0,
        }
    }

    /// Effective delivery rate: (direct + repaired) / data sent estimate.
    pub fn effective_delivery_rate(&self) -> f64 {
        let expected = self.max_seq_seen + 1;
        if expected == 0 {
            return 0.0;
        }
        ((self.data_received + self.repaired) as f64 / expected as f64).min(1.0)
    }

    fn try_repair(&mut self, group: u64, now: SimTime, size: u64, meter_credit: bool) -> bool {
        let gs = self.groups.entry(group).or_default();
        if !gs.repaired && gs.parity_received && gs.data_received == self.group_size - 1 {
            gs.repaired = true;
            self.repaired += 1;
            if meter_credit {
                self.meter.record(now, size);
            }
            return true;
        }
        false
    }
}

impl Agent for FecSink {
    fn on_packet(&mut self, ctx: &mut Context, _link: LinkId, packet: Packet) {
        if packet.flow != self.flow {
            return;
        }
        let group = packet.aux_a;
        let size = packet.size_bytes as u64;
        if packet.aux_b == PARITY_FLAG {
            self.parity_received += 1;
            self.groups.entry(group).or_default().parity_received = true;
        } else {
            self.data_received += 1;
            self.max_seq_seen = self.max_seq_seen.max(packet.seq);
            self.meter.record(ctx.now(), size);
            self.groups.entry(group).or_default().data_received += 1;
        }
        // A repair fires when the parity plus k−1 data packets are in.
        self.try_repair(group, ctx.now(), size, true);
    }

    fn on_timer(&mut self, _ctx: &mut Context, _timer_id: u64) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_netsim::{ConstPipe, Simulator};

    /// Runs an FEC blast over a lossy pipe; returns (effective delivery
    /// rate, raw data delivery rate, repairs).
    fn run_fec(loss: f64, group_size: u64, secs: u64, seed: u64) -> (f64, f64, u64) {
        let mut sim = Simulator::new(seed);
        let sink = sim.add_node(Box::new(FecSink::new(1, group_size)));
        let blaster = sim.add_node(Box::new(FecBlaster::new(
            1,
            LinkId(0),
            20.0,
            group_size,
            SimTime::from_secs(secs),
        )));
        sim.add_link(
            Box::new(ConstPipe::new(
                100.0,
                SimTime::from_millis(25),
                loss,
                1 << 20,
            )),
            sink,
        );
        sim.with_agent(blaster, |a, ctx| {
            a.as_any_mut()
                .downcast_mut::<FecBlaster>()
                .unwrap()
                .start(ctx)
        });
        sim.run_until(SimTime::from_secs(secs + 1));
        let s = sim.agent_as::<FecSink>(sink);
        let raw = s.data_received as f64 / (s.max_seq_seen + 1) as f64;
        (s.effective_delivery_rate(), raw, s.repaired)
    }

    #[test]
    fn lossless_link_needs_no_repairs() {
        let (eff, raw, repaired) = run_fec(0.0, 10, 5, 1);
        assert!((eff - 1.0).abs() < 0.01, "eff {eff}");
        assert!((raw - 1.0).abs() < 0.01);
        assert_eq!(repaired, 0);
    }

    #[test]
    fn fec_recovers_most_random_loss() {
        // 3 % i.i.d. loss, groups of 10: most groups lose ≤1 packet, so
        // effective loss collapses well below raw loss.
        let (eff, raw, repaired) = run_fec(0.03, 10, 20, 2);
        assert!(raw < 0.99, "raw {raw} should show the loss");
        assert!(repaired > 0, "repairs should happen");
        let eff_loss = 1.0 - eff;
        let raw_loss = 1.0 - raw;
        assert!(
            eff_loss < raw_loss * 0.5,
            "FEC: effective loss {eff_loss:.4} vs raw {raw_loss:.4}"
        );
    }

    #[test]
    fn heavy_loss_defeats_single_parity() {
        // At 25 % loss, most groups lose several packets: XOR parity
        // cannot keep up, matching the known FEC-vs-burstiness trade-off.
        let (eff, raw, _) = run_fec(0.25, 10, 20, 3);
        let gain = (1.0 - raw) - (1.0 - eff);
        assert!(
            gain < 0.12,
            "single-parity FEC should not fix heavy loss (gain {gain:.3})"
        );
    }

    #[test]
    fn parity_overhead_is_one_over_k() {
        let mut sim = Simulator::new(5);
        let sink = sim.add_node(Box::new(FecSink::new(1, 5)));
        let blaster = sim.add_node(Box::new(FecBlaster::new(
            1,
            LinkId(0),
            10.0,
            5,
            SimTime::from_secs(10),
        )));
        sim.add_link(
            Box::new(ConstPipe::new(100.0, SimTime::ZERO, 0.0, 1 << 20)),
            sink,
        );
        sim.with_agent(blaster, |a, ctx| {
            a.as_any_mut()
                .downcast_mut::<FecBlaster>()
                .unwrap()
                .start(ctx)
        });
        sim.run_until(SimTime::from_secs(11));
        let b = sim.agent_as::<FecBlaster>(blaster);
        let ratio = b.parity_sent as f64 / b.data_sent as f64;
        assert!((ratio - 0.2).abs() < 0.01, "overhead {ratio}");
    }

    #[test]
    #[should_panic(expected = "parity per packet")]
    fn group_size_one_rejected() {
        let _ = FecBlaster::new(1, LinkId(0), 10.0, 1, SimTime::from_secs(1));
    }
}
