//! The shared reliable-flow state machine.
//!
//! Both single-path TCP and each MPTCP subflow run the same machinery:
//! a sliding window, SACK scoreboard, fast retransmit, recovery with
//! SACK-driven hole filling, and an RTO with exponential backoff. This
//! module owns that machine as a pure (network-free) state object; the
//! agents in [`crate::tcp`] and [`crate::mptcp`] translate its decisions
//! into packets.
//!
//! Sequence numbers count MSS-sized segments. Each transmitted segment
//! carries an opaque `aux` word (the MPTCP data sequence number; unused by
//! plain TCP) that the core hands back whenever it asks for a
//! retransmission.

use crate::cc::{CcAlgorithm, CongestionControl};
use crate::rtt::RttEstimator;
use leo_netsim::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Per-segment transmission record.
#[derive(Debug, Clone, Copy)]
struct TxInfo {
    aux: u64,
    rexmit: bool,
    /// Recovery epoch in which this segment was last retransmitted (so each
    /// hole is filled at most once per recovery).
    rexmit_epoch: u64,
}

/// What the core wants done after an input event.
#[derive(Debug, Default)]
pub struct FlowActions {
    /// Segments to retransmit now: `(seq, aux)`.
    pub retransmits: Vec<(u64, u64)>,
    /// Aux words of segments presumed stranded after a timeout (MPTCP
    /// reinjects these on sibling subflows; TCP ignores them).
    pub stranded_aux: Vec<u64>,
    /// The cumulative ACK point advanced.
    pub advanced: bool,
    /// Number of newly acknowledged segments.
    pub newly_acked: u64,
}

/// SACK reordering threshold (RFC 6675's DupThresh).
const DUP_THRESH: usize = 3;

/// The reliable-flow sender core.
#[derive(Debug)]
pub struct FlowCore {
    pub cc: Box<dyn CongestionControl>,
    pub rtt: RttEstimator,
    next_seq: u64,
    snd_una: u64,
    inflight: BTreeMap<u64, TxInfo>,
    sacked: BTreeSet<u64>,
    dup_acks: u32,
    /// `Some(high_seq)` while in fast recovery.
    recovery: Option<u64>,
    recovery_epoch: u64,
    /// Timer epoch for lazy cancellation.
    pub rto_epoch: u64,
    pub current_rto: SimTime,
    pub packets_sent: u64,
    pub retransmissions: u64,
    pub timeouts: u64,
    /// Timeouts since the last cumulative-ACK advance.
    consec_timeouts: u32,
}

impl FlowCore {
    /// A fresh flow with the given congestion controller.
    pub fn new(cc: CcAlgorithm) -> Self {
        Self {
            cc: cc.build(),
            rtt: RttEstimator::new(),
            next_seq: 0,
            snd_una: 0,
            inflight: BTreeMap::new(),
            sacked: BTreeSet::new(),
            dup_acks: 0,
            recovery: None,
            recovery_epoch: 0,
            rto_epoch: 0,
            current_rto: SimTime::from_secs(1),
            packets_sent: 0,
            retransmissions: 0,
            timeouts: 0,
            consec_timeouts: 0,
        }
    }

    /// Next fresh sequence number (allocated by [`Self::alloc_seq`]).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Cumulative acknowledgement point.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Segments in the network, excluding those the scoreboard knows
    /// arrived (SACKed) — the RFC 6675 "pipe" estimate.
    pub fn outstanding(&self) -> u64 {
        (self.inflight.len() - self.sacked.len()) as u64
    }

    /// True while anything is unacknowledged.
    pub fn has_outstanding(&self) -> bool {
        self.snd_una < self.next_seq
    }

    /// Room for one more segment under the congestion window.
    pub fn window_space(&self) -> bool {
        (self.outstanding() as f64) < self.cc.cwnd()
    }

    /// Smoothed RTT (1 s before any sample, per RFC 6298).
    pub fn srtt_s(&self) -> f64 {
        self.rtt.srtt_or_default_s()
    }

    /// Allocates the next fresh sequence number. The caller must follow up
    /// with [`Self::register_transmit`].
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Records that `seq` (carrying `aux`) was put on the wire.
    pub fn register_transmit(&mut self, seq: u64, aux: u64, rexmit: bool) {
        self.inflight.insert(
            seq,
            TxInfo {
                aux,
                rexmit,
                rexmit_epoch: if rexmit { self.recovery_epoch } else { 0 },
            },
        );
        self.packets_sent += 1;
        if rexmit {
            self.retransmissions += 1;
        }
    }

    /// Retransmission rate over all transmissions.
    pub fn retransmission_rate(&self) -> f64 {
        if self.packets_sent == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.packets_sent as f64
        }
    }

    /// Processes an incoming cumulative ACK (`ack`), SACK hint (`sack` =
    /// sequence of the segment that triggered it), and echoed send
    /// timestamp (`echo_ns`, 0 = absent).
    pub fn handle_ack(&mut self, ack: u64, sack: u64, echo_ns: u64, now: SimTime) -> FlowActions {
        let mut out = FlowActions::default();

        // Scoreboard: record out-of-order arrivals above the ACK point.
        if sack > ack && sack < self.next_seq {
            self.sacked.insert(sack);
        }

        if ack > self.snd_una {
            out.advanced = true;
            out.newly_acked = ack - self.snd_una;
            let acked_seq = ack - 1;
            let clean = self
                .inflight
                .get(&acked_seq)
                .map(|i| !i.rexmit)
                .unwrap_or(false);
            if clean && echo_ns > 0 {
                self.rtt
                    .on_sample(now.saturating_since(SimTime::from_nanos(echo_ns)));
            }
            self.snd_una = ack;
            self.inflight = self.inflight.split_off(&ack);
            self.sacked = self.sacked.split_off(&ack);
            self.dup_acks = 0;
            self.current_rto = self.rtt.rto();
            self.consec_timeouts = 0;

            let now_s = now.as_secs_f64();
            let srtt = self.srtt_s();
            match self.recovery {
                Some(high) if ack >= high => {
                    self.recovery = None;
                    self.cc.on_ack(out.newly_acked, now_s, srtt);
                }
                Some(_) => {
                    // Still recovering: fill more holes. Window growth is
                    // frozen in congestion avoidance (classic NewReno), but
                    // slow-start growth is allowed — after an RTO the window
                    // must rebuild from 1 even while old holes drain, or a
                    // deep overshoot turns into a one-packet-per-RTT crawl.
                    if self.cc.in_slow_start() {
                        self.cc.on_ack(out.newly_acked, now_s, srtt);
                    }
                    self.collect_retransmits(&mut out);
                    if out.retransmits.is_empty() {
                        // NewReno-style partial-ACK fallback: the new head
                        // hole is retransmitted even without SACK evidence.
                        let head = self.snd_una;
                        let fresh = self
                            .inflight
                            .get(&head)
                            .map(|i| i.rexmit_epoch < self.recovery_epoch)
                            .unwrap_or(false);
                        if fresh {
                            self.force_retransmit(head, &mut out);
                        }
                    }
                }
                None => {
                    self.cc.on_ack(out.newly_acked, now_s, srtt);
                }
            }
        } else if ack == self.snd_una && self.has_outstanding() {
            self.dup_acks += 1;
            let enough_sacks = self.sacked.len() >= DUP_THRESH;
            if (self.dup_acks as usize >= DUP_THRESH || enough_sacks) && self.recovery.is_none() {
                // Enter fast recovery.
                self.cc.on_loss_event(now.as_secs_f64());
                self.recovery = Some(self.next_seq);
                self.recovery_epoch += 1;
                self.collect_retransmits(&mut out);
                if out.retransmits.is_empty() {
                    // Always at least retransmit the head hole.
                    self.force_retransmit(self.snd_una, &mut out);
                }
            } else if self.recovery.is_some() {
                self.collect_retransmits(&mut out);
            }
        }
        out
    }

    /// SACK-driven loss detection: a hole is deemed lost once `DUP_THRESH`
    /// segments above it have been SACKed; each lost hole is retransmitted
    /// at most once per recovery epoch, bounded by the pipe estimate.
    fn collect_retransmits(&mut self, out: &mut FlowActions) {
        let Some(high) = self.recovery else {
            return;
        };
        let budget = (self.cc.cwnd() - self.outstanding() as f64).max(1.0) as usize;
        let mut picked = Vec::new();
        {
            let sacked = &self.sacked;
            let epoch = self.recovery_epoch;
            let mut sacks_above = sacked.len();
            // Walk holes in order; count SACKs above each hole.
            for (&seq, info) in self.inflight.range(self.snd_una..high) {
                if sacked.contains(&seq) {
                    sacks_above -= 1;
                    continue;
                }
                if sacks_above < DUP_THRESH {
                    break; // holes beyond this lack SACK evidence
                }
                if info.rexmit_epoch < epoch {
                    picked.push((seq, info.aux));
                    if picked.len() >= budget {
                        break;
                    }
                }
            }
        }
        for &(seq, aux) in &picked {
            if let Some(i) = self.inflight.get_mut(&seq) {
                i.rexmit = true;
                i.rexmit_epoch = self.recovery_epoch;
            }
            self.retransmissions += 1;
            self.packets_sent += 1;
            out.retransmits.push((seq, aux));
        }
    }

    fn force_retransmit(&mut self, seq: u64, out: &mut FlowActions) {
        if let Some(i) = self.inflight.get_mut(&seq) {
            let aux = i.aux;
            i.rexmit = true;
            i.rexmit_epoch = self.recovery_epoch;
            self.retransmissions += 1;
            self.packets_sent += 1;
            out.retransmits.push((seq, aux));
        }
    }

    /// Handles an RTO timer firing with `epoch`; returns `None` for stale
    /// timers or an idle flow.
    pub fn handle_timeout(&mut self, epoch: u64, now: SimTime) -> Option<FlowActions> {
        if epoch != self.rto_epoch || !self.has_outstanding() {
            return None;
        }
        let mut out = FlowActions::default();
        self.timeouts += 1;
        self.consec_timeouts += 1;
        self.cc.on_timeout(now.as_secs_f64());
        self.dup_acks = 0;
        self.recovery = None;
        self.recovery_epoch += 1;
        // Report un-SACKed in-flight aux words for possible reinjection
        // elsewhere — but only once the path looks genuinely dead (a second
        // consecutive timeout): a single RTO is often just a deep queue,
        // and duplicating a whole window elsewhere wastes the good path.
        if self.consec_timeouts >= 2 {
            out.stranded_aux = self
                .inflight
                .iter()
                .filter(|(seq, _)| !self.sacked.contains(seq))
                .map(|(_, i)| i.aux)
                .collect();
        }
        // RFC 2018: forget SACK state on RTO (the receiver may renege).
        self.sacked.clear();
        self.current_rto = RttEstimator::backoff(self.current_rto);
        self.force_retransmit(self.snd_una, &mut out);
        Some(out)
    }

    /// Bumps the RTO epoch; the caller arms a timer for `current_rto` with
    /// the returned epoch as its id component.
    pub fn arm_rto(&mut self) -> u64 {
        self.rto_epoch += 1;
        self.rto_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> FlowCore {
        FlowCore::new(CcAlgorithm::Reno)
    }

    fn send_n(c: &mut FlowCore, n: u64) {
        for _ in 0..n {
            let s = c.alloc_seq();
            c.register_transmit(s, s * 10, false);
        }
    }

    #[test]
    fn cumulative_ack_advances_and_grows_window() {
        let mut c = core();
        send_n(&mut c, 10);
        let w0 = c.cc.cwnd();
        let a = c.handle_ack(10, 9, 0, SimTime::from_millis(50));
        assert!(a.advanced);
        assert_eq!(a.newly_acked, 10);
        assert_eq!(c.snd_una(), 10);
        assert_eq!(c.outstanding(), 0);
        assert!(c.cc.cwnd() > w0);
    }

    #[test]
    fn triple_dupack_enters_recovery_and_retransmits_head() {
        let mut c = core();
        send_n(&mut c, 10);
        // Packet 0 lost: ACKs for 1,2,3 arriving as dupacks of 0 with SACKs.
        for s in [1u64, 2, 3] {
            let a = c.handle_ack(0, s, 0, SimTime::from_millis(10));
            if s == 3 {
                assert_eq!(a.retransmits, vec![(0, 0)], "head hole retransmitted");
            } else {
                assert!(a.retransmits.is_empty());
            }
        }
        assert_eq!(c.retransmissions, 1);
    }

    #[test]
    fn sack_recovery_fills_many_holes_fast() {
        let mut c = core();
        send_n(&mut c, 100);
        // Segments 0..50 lost; 50..100 arrive and are SACKed.
        let mut total_rexmit = 0;
        for s in 50..100u64 {
            let a = c.handle_ack(0, s, 0, SimTime::from_millis(10));
            total_rexmit += a.retransmits.len();
        }
        // All 50 holes should be queued for retransmission within the
        // 50 dupacks (not one per RTT as cumulative-ACK NewReno would).
        assert!(
            total_rexmit >= 40,
            "only {total_rexmit} holes retransmitted during recovery"
        );
        // And each hole only once.
        assert!(total_rexmit <= 50);
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let mut c = core();
        send_n(&mut c, 10);
        for s in [1u64, 2, 3] {
            c.handle_ack(0, s, 0, SimTime::from_millis(10));
        }
        assert!(c.recovery.is_some());
        let a = c.handle_ack(10, 9, 0, SimTime::from_millis(30));
        assert!(a.advanced);
        assert!(c.recovery.is_none());
    }

    #[test]
    fn timeout_strands_aux_and_backs_off() {
        let mut c = core();
        send_n(&mut c, 5);
        let e = c.arm_rto();
        let rto0 = c.current_rto;
        // First timeout: conservative — retransmit locally, no reinjection.
        let a = c.handle_timeout(e, SimTime::from_secs(1)).unwrap();
        assert!(a.stranded_aux.is_empty(), "no reinjection on first RTO");
        assert_eq!(a.retransmits.len(), 1);
        assert!(c.current_rto > rto0);
        assert_eq!(c.cc.cwnd(), 1.0);
        // Second consecutive timeout: the path looks dead — everything
        // un-SACKed is offered for reinjection.
        let e2 = c.arm_rto();
        let a2 = c.handle_timeout(e2, SimTime::from_secs(3)).unwrap();
        assert_eq!(a2.stranded_aux, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn stale_timeout_ignored() {
        let mut c = core();
        send_n(&mut c, 5);
        let e = c.arm_rto();
        let _ = c.arm_rto(); // newer epoch supersedes
        assert!(c.handle_timeout(e, SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn timeout_on_idle_flow_ignored() {
        let mut c = core();
        send_n(&mut c, 3);
        c.handle_ack(3, 2, 0, SimTime::from_millis(40));
        let e = c.arm_rto();
        assert!(c.handle_timeout(e, SimTime::from_secs(2)).is_none());
    }

    #[test]
    fn karn_skips_retransmitted_samples() {
        let mut c = core();
        send_n(&mut c, 2);
        // Force a retransmit of seq 0, then ACK it with a timestamp.
        for s in [1u64, 1, 1] {
            c.handle_ack(0, s, 0, SimTime::from_millis(5));
        }
        assert!(c.retransmissions >= 1);
        let before = c.rtt.srtt();
        c.handle_ack(1, 0, 123_456, SimTime::from_millis(100));
        assert_eq!(c.rtt.srtt(), before, "no RTT sample from a rexmitted seq");
    }

    #[test]
    fn outstanding_excludes_sacked() {
        let mut c = core();
        send_n(&mut c, 10);
        assert_eq!(c.outstanding(), 10);
        c.handle_ack(0, 5, 0, SimTime::from_millis(5));
        c.handle_ack(0, 6, 0, SimTime::from_millis(5));
        assert_eq!(c.outstanding(), 8);
    }

    #[test]
    fn window_space_respects_cwnd() {
        let mut c = core();
        // Initial cwnd 10: the 11th packet must not fit.
        for _ in 0..10 {
            assert!(c.window_space());
            let s = c.alloc_seq();
            c.register_transmit(s, 0, false);
        }
        assert!(!c.window_space());
    }
}
