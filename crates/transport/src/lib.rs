//! Packet-level transport protocols over the `leo-netsim` emulator.
//!
//! The paper's findings are transport-layer findings: TCP collapsing under
//! Starlink's bursty loss (§4.1), parallel TCP recovering much of the gap
//! (§4.2), and MPTCP pooling Starlink with cellular once buffers are tuned
//! (§6). This crate implements the machinery those findings rest on:
//!
//! * [`rtt`] — RFC 6298 RTT estimation,
//! * [`cc`] — pluggable congestion control: Reno and CUBIC,
//! * [`tcp`] — a sliding-window TCP sender/receiver pair with fast
//!   retransmit, RTO, and per-second goodput accounting,
//! * [`udp`] — a paced UDP blaster and counting sink (the iPerf-UDP
//!   equivalent used to probe available bandwidth),
//! * [`parallel`] — N parallel TCP connections with aggregate accounting,
//! * [`mptcp`] — multipath TCP: per-subflow CC (optionally LIA-coupled),
//!   data-level sequencing, a bounded connection-level receive buffer that
//!   reproduces the paper's untuned-buffer head-of-line collapse, the
//!   RoundRobin / MinRtt / BLEST / ECF schedulers, and the paper's
//!   future-work **LEO-aware** scheduler (reconfiguration-clock guard),
//! * [`fec`] — the XOR-parity forward-error-correction layer the paper
//!   calls for over Starlink's lossy channel.
//!
//! All endpoints are [`leo_netsim::Agent`]s; wire them into a
//! [`leo_netsim::Simulator`] with pipes of your choosing.

pub mod cc;
pub mod fec;
pub mod flowcore;
pub mod mptcp;
pub mod parallel;
pub mod rtt;
pub mod tcp;
pub mod throughput;
pub mod udp;

pub use cc::{CcAlgorithm, CongestionControl, Cubic, Reno};
pub use fec::{FecBlaster, FecSink};
pub use mptcp::{LeoGuard, MptcpConfig, MptcpReceiver, MptcpSender, SchedulerKind};
pub use parallel::ParallelTcp;
pub use rtt::RttEstimator;
pub use tcp::{TcpConfig, TcpReceiver, TcpSender};
pub use throughput::ThroughputMeter;
pub use udp::{UdpBlaster, UdpSink};

/// Maximum segment size used throughout: one MTU-sized packet.
pub const MSS_BYTES: u64 = 1500;
