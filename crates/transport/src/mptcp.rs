//! Multipath TCP: subflows, data-level sequencing, coupled congestion
//! control, and pluggable packet schedulers.
//!
//! Implements the machinery behind §6 of the paper:
//!
//! * **Subflows** — each path runs a full [`crate::flowcore::FlowCore`]:
//!   its own sequence space, congestion window, SACK scoreboard, RTT
//!   estimator, fast retransmit, and RTO.
//! * **Data-level sequencing** — every data packet carries a data sequence
//!   number (DSN, in `aux_a`); the receiver reorders across subflows into
//!   one stream.
//! * **Connection-level receive buffer** — out-of-order data is held in a
//!   bounded buffer; the advertised window shrinks as it fills. With the
//!   OS-default (small) buffer, a slow subflow's in-flight data blocks the
//!   fast subflow — the head-of-line collapse the paper observed until it
//!   raised the buffer to >10× the bandwidth-delay product (§6).
//! * **LIA coupling** — the RFC 6356 linked-increase algorithm bounds the
//!   aggregate's aggressiveness across subflows.
//! * **Schedulers** — RoundRobin, MinRtt, BLEST (the kernel 5.19 default
//!   the paper cites), and ECF.
//! * **Reinjection** — on a subflow RTO, its un-ACKed DSNs are queued for
//!   retransmission on any subflow, so a dead path cannot permanently
//!   strand data.

use crate::cc::CcAlgorithm;
use crate::flowcore::FlowCore;
use crate::throughput::ThroughputMeter;
use leo_netsim::{Agent, Context, LinkId, Packet};
use std::collections::{BTreeSet, VecDeque};

/// Which packet scheduler the sender uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Alternate over subflows with window space.
    RoundRobin,
    /// Always the lowest-SRTT subflow with window space.
    MinRtt,
    /// MinRtt, but skip the slow subflow when using it would block the
    /// connection-level send window (Ferlin et al., IFIP Networking '16).
    Blest,
    /// MinRtt, but use the slow subflow only when waiting for the fast one
    /// would take longer (Lim et al., CoNEXT '17).
    Ecf,
    /// The paper's future-work scheduler, realised: BLEST, plus awareness
    /// of the LEO path's 15-second reconfiguration clock. Data is steered
    /// off the satellite subflow in a guard window around each
    /// reconfiguration instant, so segments never straddle the handover
    /// outage that would otherwise strand them (and head-of-line-block
    /// the cellular subflow).
    LeoAware,
}

impl SchedulerKind {
    /// All schedulers, for sweeps and benches.
    pub const ALL: [SchedulerKind; 5] = [
        SchedulerKind::RoundRobin,
        SchedulerKind::MinRtt,
        SchedulerKind::Blest,
        SchedulerKind::Ecf,
        SchedulerKind::LeoAware,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "RoundRobin",
            SchedulerKind::MinRtt => "MinRTT",
            SchedulerKind::Blest => "BLEST",
            SchedulerKind::Ecf => "ECF",
            SchedulerKind::LeoAware => "LEO-aware",
        }
    }
}

/// MPTCP connection parameters.
#[derive(Debug, Clone)]
pub struct MptcpConfig {
    /// Base flow id; subflow `i` uses `flow + i`.
    pub flow: u32,
    pub cc: CcAlgorithm,
    /// Couple the subflows' congestion avoidance with LIA (RFC 6356).
    pub coupled: bool,
    pub scheduler: SchedulerKind,
    /// Connection-level receive buffer, packets — §6's tuning knob.
    pub recv_buffer_packets: u64,
    /// One data link per subflow.
    pub subflow_links: Vec<LinkId>,
    /// Total data packets to transfer; `None` for unbounded.
    pub limit_packets: Option<u64>,
    /// LEO guard for [`SchedulerKind::LeoAware`]: which subflow rides the
    /// satellite, the reconfiguration period, and the guard window to
    /// keep clear on each side of a reconfiguration instant.
    pub leo_guard: Option<LeoGuard>,
}

/// LEO reconfiguration-clock parameters for the LEO-aware scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeoGuard {
    /// Index of the satellite subflow in `subflow_links`.
    pub satellite_subflow: usize,
    /// Reconfiguration period, milliseconds (Starlink: 15,000).
    pub interval_ms: u64,
    /// Guard window half-width, milliseconds.
    pub guard_ms: u64,
}

impl LeoGuard {
    /// The Starlink default: subflow 0, 15 s clock, 600 ms guard.
    pub fn starlink_default() -> Self {
        Self {
            satellite_subflow: 0,
            interval_ms: 15_000,
            guard_ms: 600,
        }
    }

    /// True when `now_ms` is inside the guard window around a
    /// reconfiguration instant.
    pub fn in_guard(&self, now_ms: u64) -> bool {
        let phase = now_ms % self.interval_ms;
        phase < self.guard_ms || phase + self.guard_ms >= self.interval_ms
    }
}

impl MptcpConfig {
    /// Bulk transfer over the given subflow links with BLEST and a tuned
    /// (large) receive buffer.
    pub fn bulk(flow: u32, subflow_links: Vec<LinkId>) -> Self {
        Self {
            flow,
            cc: CcAlgorithm::Cubic,
            coupled: true,
            scheduler: SchedulerKind::Blest,
            recv_buffer_packets: 16_384,
            subflow_links,
            limit_packets: None,
            leo_guard: None,
        }
    }
}

/// Per-subflow sender state: a [`FlowCore`] plus its link.
struct Subflow {
    link: LinkId,
    core: FlowCore,
}

/// The MPTCP sending endpoint.
pub struct MptcpSender {
    cfg: MptcpConfig,
    subflows: Vec<Subflow>,
    /// Next fresh data sequence number.
    next_dsn: u64,
    /// Lowest data sequence not yet data-ACKed.
    data_una: u64,
    /// Receiver's advertised connection-level window, packets.
    adv_rwnd: u64,
    /// DSNs awaiting reinjection after a subflow timeout.
    reinject: VecDeque<u64>,
    reinject_set: BTreeSet<u64>,
    /// Round-robin pointer.
    rr_next: usize,
    next_pkt_id: u64,
    started: bool,
}

impl MptcpSender {
    /// Creates a sender; start it via `Simulator::with_agent`.
    pub fn new(cfg: MptcpConfig) -> Self {
        assert!(
            !cfg.subflow_links.is_empty(),
            "MPTCP needs at least one subflow"
        );
        let subflows = cfg
            .subflow_links
            .iter()
            .map(|&l| Subflow {
                link: l,
                core: FlowCore::new(cfg.cc),
            })
            .collect();
        let adv_rwnd = cfg.recv_buffer_packets;
        Self {
            cfg,
            subflows,
            next_dsn: 0,
            data_una: 0,
            adv_rwnd,
            reinject: VecDeque::new(),
            reinject_set: BTreeSet::new(),
            rr_next: 0,
            next_pkt_id: 0,
            started: false,
        }
    }

    /// Kicks off the transfer.
    pub fn start(&mut self, ctx: &mut Context) {
        if !self.started {
            self.started = true;
            self.try_send(ctx);
            for i in 0..self.subflows.len() {
                self.arm_rto(ctx, i);
            }
        }
    }

    /// True once a bounded transfer is fully data-ACKed.
    pub fn finished(&self) -> bool {
        match self.cfg.limit_packets {
            Some(n) => self.data_una >= n,
            None => false,
        }
    }

    /// Per-subflow (sent, retransmitted) counts.
    pub fn subflow_counters(&self) -> Vec<(u64, u64)> {
        self.subflows
            .iter()
            .map(|s| (s.core.packets_sent, s.core.retransmissions))
            .collect()
    }

    /// Per-subflow RTO-timeout counts.
    pub fn subflow_timeouts(&self) -> Vec<u64> {
        self.subflows.iter().map(|s| s.core.timeouts).collect()
    }

    /// Per-subflow smoothed RTTs, seconds.
    pub fn subflow_srtts(&self) -> Vec<f64> {
        self.subflows.iter().map(|s| s.core.srtt_s()).collect()
    }

    /// Aggregate retransmission rate.
    pub fn retransmission_rate(&self) -> f64 {
        let sent: u64 = self.subflows.iter().map(|s| s.core.packets_sent).sum();
        let retx: u64 = self.subflows.iter().map(|s| s.core.retransmissions).sum();
        if sent == 0 {
            0.0
        } else {
            retx as f64 / sent as f64
        }
    }

    /// Connection-level send window remaining, packets.
    fn send_window_remaining(&self) -> u64 {
        let inflight_conn = self.next_dsn - self.data_una;
        self.adv_rwnd.saturating_sub(inflight_conn)
    }

    /// LIA (RFC 6356): per-subflow increase scaling.
    fn apply_lia(&mut self) {
        if !self.cfg.coupled || self.subflows.len() < 2 {
            return;
        }
        let total: f64 = self.subflows.iter().map(|s| s.core.cc.cwnd()).sum();
        let best = self
            .subflows
            .iter()
            .map(|s| s.core.cc.cwnd() / s.core.srtt_s().powi(2))
            .fold(0.0, f64::max);
        let denom: f64 = self
            .subflows
            .iter()
            .map(|s| s.core.cc.cwnd() / s.core.srtt_s())
            .sum::<f64>()
            .powi(2);
        if denom <= 0.0 || total <= 0.0 {
            return;
        }
        let alpha = total * best / denom;
        for s in &mut self.subflows {
            // Per-ACK increase = min(α/total, 1/cwnd_i); our controllers
            // add `scale / cwnd_i`, so scale_i = min(α·cwnd_i/total, 1).
            let scale = (alpha * s.core.cc.cwnd() / total).min(1.0);
            s.core.cc.set_increase_scale(scale);
        }
    }

    /// Picks the next DSN to transmit: reinjections first, then new data.
    fn next_dsn_to_send(&mut self) -> Option<(u64, bool)> {
        while let Some(&d) = self.reinject.front() {
            if d >= self.data_una {
                return Some((d, true));
            }
            self.reinject.pop_front();
            self.reinject_set.remove(&d);
        }
        let limit = self.cfg.limit_packets.unwrap_or(u64::MAX);
        if self.next_dsn < limit && self.send_window_remaining() > 0 {
            return Some((self.next_dsn, false));
        }
        None
    }

    fn fastest_subflow(&self) -> usize {
        // total_cmp instead of partial_cmp().expect(): a NaN smuggled in
        // through a degenerate RTT sample must not panic the scheduler
        // (NaN orders above every finite RTT, so it simply never wins).
        (0..self.subflows.len())
            .min_by(|&a, &b| {
                self.subflows[a]
                    .core
                    .srtt_s()
                    .total_cmp(&self.subflows[b].core.srtt_s())
            })
            .expect("at least one subflow")
    }

    /// Scheduler: choose a subflow for the next packet, or `None` to wait.
    fn pick_subflow(&self, now_ms: u64) -> Option<usize> {
        let mut avail: Vec<usize> = (0..self.subflows.len())
            .filter(|&i| self.subflows[i].core.window_space())
            .collect();
        // LEO-aware guard: keep the satellite subflow idle around its
        // reconfiguration instants.
        if self.cfg.scheduler == SchedulerKind::LeoAware {
            if let Some(g) = self.cfg.leo_guard {
                if g.in_guard(now_ms) && avail.len() > 1 {
                    avail.retain(|&i| i != g.satellite_subflow);
                }
            }
        }
        if avail.is_empty() {
            return None;
        }
        match self.cfg.scheduler {
            SchedulerKind::RoundRobin => {
                let n = self.subflows.len();
                (0..n)
                    .map(|k| (self.rr_next + k) % n)
                    .find(|i| avail.contains(i))
            }
            SchedulerKind::MinRtt => avail.into_iter().min_by(|&a, &b| {
                self.subflows[a]
                    .core
                    .srtt_s()
                    .total_cmp(&self.subflows[b].core.srtt_s())
            }),
            SchedulerKind::Blest | SchedulerKind::Ecf | SchedulerKind::LeoAware => {
                let fastest = self.fastest_subflow();
                if avail.contains(&fastest) {
                    return Some(fastest);
                }
                // Only slower subflows have space.
                let slow = avail
                    .into_iter()
                    .min_by(|&a, &b| {
                        self.subflows[a]
                            .core
                            .srtt_s()
                            .total_cmp(&self.subflows[b].core.srtt_s())
                    })
                    .expect("non-empty");
                let fast_core = &self.subflows[fastest].core;
                let rtt_f = fast_core.srtt_s();
                let rtt_s = self.subflows[slow].core.srtt_s();
                match self.cfg.scheduler {
                    SchedulerKind::Blest | SchedulerKind::LeoAware => {
                        // Packets the fast subflow could move during one
                        // slow RTT, padded by the BLEST δ; if that exceeds
                        // the remaining send window, sending on the slow
                        // subflow would block the connection — wait.
                        let x = fast_core.cc.cwnd() * (rtt_s / rtt_f.max(1e-6)) * 1.2;
                        if x >= self.send_window_remaining() as f64 {
                            None
                        } else {
                            Some(slow)
                        }
                    }
                    SchedulerKind::Ecf => {
                        // Waiting time for the fast subflow to drain the
                        // remaining window vs. one slow RTT.
                        let remaining = self.send_window_remaining() as f64;
                        let wait_fast = (remaining / fast_core.cc.cwnd().max(1.0)) * rtt_f + rtt_f;
                        if wait_fast <= rtt_s {
                            None
                        } else {
                            Some(slow)
                        }
                    }
                    _ => unreachable!("outer match restricts to Blest|Ecf"),
                }
            }
        }
    }

    /// Puts one segment (ssn already allocated & registered) on the wire.
    fn emit(&mut self, ctx: &mut Context, sf_idx: usize, ssn: u64, dsn: u64) {
        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        let pkt = Packet::data(id, self.cfg.flow + sf_idx as u32, ssn, ctx.now())
            .with_aux(dsn, ctx.now().as_nanos());
        ctx.send(self.subflows[sf_idx].link, pkt);
    }

    fn try_send(&mut self, ctx: &mut Context) {
        let now_ms = ctx.now().as_millis();
        while let Some((dsn, is_reinject)) = self.next_dsn_to_send() {
            let Some(sf_idx) = self.pick_subflow(now_ms) else {
                break;
            };
            if is_reinject {
                self.reinject.pop_front();
                self.reinject_set.remove(&dsn);
            } else {
                self.next_dsn += 1;
            }
            self.rr_next = (sf_idx + 1) % self.subflows.len();
            let ssn = self.subflows[sf_idx].core.alloc_seq();
            self.subflows[sf_idx]
                .core
                .register_transmit(ssn, dsn, false);
            self.emit(ctx, sf_idx, ssn, dsn);
        }
    }

    fn arm_rto(&mut self, ctx: &mut Context, sf_idx: usize) {
        let sf = &mut self.subflows[sf_idx];
        let epoch = sf.core.arm_rto();
        let timer_id = ((sf_idx as u64) << 48) | epoch;
        ctx.set_timer(sf.core.current_rto, timer_id);
    }
}

impl Agent for MptcpSender {
    fn on_packet(&mut self, ctx: &mut Context, _link: LinkId, packet: Packet) {
        if !packet.is_ack {
            return;
        }
        let Some(sf_idx) = packet.flow.checked_sub(self.cfg.flow).map(|i| i as usize) else {
            return;
        };
        if sf_idx >= self.subflows.len() {
            return;
        }

        // Connection-level bookkeeping: data ACK + advertised window.
        self.data_una = self.data_una.max(packet.aux_a);
        self.adv_rwnd = packet.seq; // receiver advertises in `seq`

        let actions = self.subflows[sf_idx].core.handle_ack(
            packet.ack,
            packet.aux_c,
            packet.aux_b,
            ctx.now(),
        );
        for &(ssn, dsn) in &actions.retransmits {
            self.emit(ctx, sf_idx, ssn, dsn);
        }
        if actions.advanced {
            self.apply_lia();
        }
        // Restart the subflow's timer on progress or retransmission
        // (RFC 6298 §5), so a long recovery cannot be cut short spuriously.
        if (actions.advanced || !actions.retransmits.is_empty())
            && self.subflows[sf_idx].core.has_outstanding()
        {
            self.arm_rto(ctx, sf_idx);
        }
        self.try_send(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context, timer_id: u64) {
        let sf_idx = (timer_id >> 48) as usize;
        let epoch = timer_id & ((1 << 48) - 1);
        if sf_idx >= self.subflows.len() {
            return;
        }
        let Some(actions) = self.subflows[sf_idx].core.handle_timeout(epoch, ctx.now()) else {
            return;
        };
        // Queue the stranded DSNs for rescue on sibling subflows.
        for d in actions.stranded_aux.iter().copied() {
            if d >= self.data_una && self.reinject_set.insert(d) {
                self.reinject.push_back(d);
            }
        }
        for &(ssn, dsn) in &actions.retransmits {
            self.emit(ctx, sf_idx, ssn, dsn);
        }
        self.arm_rto(ctx, sf_idx);
        self.try_send(ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Per-subflow receiver state.
struct SubRx {
    rcv_nxt: u64,
    ooo: BTreeSet<u64>,
}

/// The MPTCP receiving endpoint.
pub struct MptcpReceiver {
    base_flow: u32,
    /// ACK links, one per subflow (index = subflow index).
    ack_links: Vec<LinkId>,
    subrx: Vec<SubRx>,
    data_rcv_nxt: u64,
    data_ooo: BTreeSet<u64>,
    buffer_packets: u64,
    /// Goodput of the reassembled stream.
    pub meter: ThroughputMeter,
    /// Packets refused because the connection buffer was full.
    pub buffer_drops: u64,
    next_pkt_id: u64,
}

impl MptcpReceiver {
    /// Creates a receiver; `ack_links[i]` carries subflow `i`'s ACKs.
    pub fn new(base_flow: u32, ack_links: Vec<LinkId>, buffer_packets: u64) -> Self {
        let subrx = ack_links
            .iter()
            .map(|_| SubRx {
                rcv_nxt: 0,
                ooo: BTreeSet::new(),
            })
            .collect();
        Self {
            base_flow,
            ack_links,
            subrx,
            data_rcv_nxt: 0,
            data_ooo: BTreeSet::new(),
            buffer_packets,
            meter: ThroughputMeter::new(),
            buffer_drops: 0,
            next_pkt_id: 1 << 41,
        }
    }

    /// Reassembled in-order data sequence.
    pub fn data_rcv_nxt(&self) -> u64 {
        self.data_rcv_nxt
    }

    /// Current advertised connection-level window, packets.
    pub fn advertised_window(&self) -> u64 {
        self.buffer_packets
            .saturating_sub(self.data_ooo.len() as u64)
    }
}

impl Agent for MptcpReceiver {
    fn on_packet(&mut self, ctx: &mut Context, _link: LinkId, packet: Packet) {
        if packet.is_ack {
            return;
        }
        let Some(sf_idx) = packet.flow.checked_sub(self.base_flow).map(|i| i as usize) else {
            return;
        };
        if sf_idx >= self.subrx.len() {
            return;
        }
        let dsn = packet.aux_a;

        // Connection-level buffer admission: a new out-of-order DSN that
        // does not fit is refused before any subflow processing, exactly
        // as a zero window would have prevented its transmission.
        if dsn > self.data_rcv_nxt
            && !self.data_ooo.contains(&dsn)
            && self.data_ooo.len() as u64 + 1 >= self.buffer_packets
        {
            self.buffer_drops += 1;
            return;
        }

        // Subflow-level reassembly (drives cumulative subflow ACKs).
        let srx = &mut self.subrx[sf_idx];
        if packet.seq == srx.rcv_nxt {
            srx.rcv_nxt += 1;
            while srx.ooo.remove(&srx.rcv_nxt) {
                srx.rcv_nxt += 1;
            }
        } else if packet.seq > srx.rcv_nxt {
            srx.ooo.insert(packet.seq);
        }

        // Data-level reassembly.
        let before = self.data_rcv_nxt;
        if dsn == self.data_rcv_nxt {
            self.data_rcv_nxt += 1;
            while self.data_ooo.remove(&self.data_rcv_nxt) {
                self.data_rcv_nxt += 1;
            }
        } else if dsn > self.data_rcv_nxt {
            self.data_ooo.insert(dsn);
        }
        let delivered = self.data_rcv_nxt - before;
        if delivered > 0 {
            self.meter
                .record(ctx.now(), delivered * packet.size_bytes as u64);
        }

        // ACK on the same subflow: subflow cumulative ack, data ack in
        // aux_a, SACK hint in aux_c, advertised window in seq, timestamp
        // echo in aux_b.
        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        let mut ack = Packet::ack(
            id,
            self.base_flow + sf_idx as u32,
            self.subrx[sf_idx].rcv_nxt,
            ctx.now(),
        )
        .with_aux(self.data_rcv_nxt, packet.aux_b)
        .with_aux_c(packet.seq);
        ack.seq = self.advertised_window();
        ctx.send(self.ack_links[sf_idx], ack);
    }

    fn on_timer(&mut self, _ctx: &mut Context, _timer_id: u64) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_netsim::{ConstPipe, NodeId, SimTime, Simulator};

    /// One emulated path's parameters.
    struct Path {
        rate: f64,
        delay_ms: u64,
        loss: f64,
    }

    /// Two-path topology: subflow 0 over `p0`, subflow 1 over `p1`.
    fn run_mptcp(
        p0: Path,
        p1: Path,
        scheduler: SchedulerKind,
        buffer: u64,
        secs: u64,
    ) -> (f64, Simulator, NodeId, NodeId) {
        let (r0, d0, loss0) = (p0.rate, p0.delay_ms, p0.loss);
        let (r1, d1, loss1) = (p1.rate, p1.delay_ms, p1.loss);
        let mut sim = Simulator::new(77);
        let sender = sim.add_node(Box::new(MptcpSender::new(MptcpConfig {
            flow: 10,
            cc: CcAlgorithm::Cubic,
            coupled: true,
            scheduler,
            recv_buffer_packets: buffer,
            subflow_links: vec![LinkId(0), LinkId(1)],
            limit_packets: None,
            leo_guard: None,
        })));
        let receiver = sim.add_node(Box::new(MptcpReceiver::new(
            10,
            vec![LinkId(2), LinkId(3)],
            buffer,
        )));
        let q0 = ((r0 * 1e6 / 8.0) * (2.0 * d0 as f64 / 1e3)) as u64 + 50_000;
        let q1 = ((r1 * 1e6 / 8.0) * (2.0 * d1 as f64 / 1e3)) as u64 + 50_000;
        sim.add_link(
            Box::new(ConstPipe::new(r0, SimTime::from_millis(d0), loss0, q0)),
            receiver,
        );
        sim.add_link(
            Box::new(ConstPipe::new(r1, SimTime::from_millis(d1), loss1, q1)),
            receiver,
        );
        sim.add_link(
            Box::new(ConstPipe::new(r0, SimTime::from_millis(d0), 0.0, q0)),
            sender,
        );
        sim.add_link(
            Box::new(ConstPipe::new(r1, SimTime::from_millis(d1), 0.0, q1)),
            sender,
        );
        sim.with_agent(sender, |a, ctx| {
            a.as_any_mut()
                .downcast_mut::<MptcpSender>()
                .unwrap()
                .start(ctx)
        });
        sim.run_until(SimTime::from_secs(secs));
        let goodput = sim
            .agent_as::<MptcpReceiver>(receiver)
            .meter
            .mean_mbps_over(SimTime::from_secs(secs));
        (goodput, sim, sender, receiver)
    }

    #[test]
    fn pools_two_clean_paths() {
        // 40 + 60 Mbps paths should aggregate well beyond either alone.
        for sched in SchedulerKind::ALL {
            let (goodput, ..) = run_mptcp(
                Path {
                    rate: 40.0,
                    delay_ms: 20,
                    loss: 0.0,
                },
                Path {
                    rate: 60.0,
                    delay_ms: 35,
                    loss: 0.0,
                },
                sched,
                16_384,
                12,
            );
            assert!(
                goodput > 70.0,
                "{sched:?}: pooled goodput {goodput} Mbps < 70"
            );
        }
    }

    #[test]
    fn round_robin_alternates_across_equal_subflows() {
        // Regression: `pick_subflow` reads `rr_next` from `&self`; the
        // cursor is advanced by `try_send` after every pick. With two
        // identical paths a broken cursor degenerates to one subflow,
        // so require both subflows to carry a fair share of the data.
        let (goodput, sim, sender, _) = run_mptcp(
            Path {
                rate: 50.0,
                delay_ms: 20,
                loss: 0.0,
            },
            Path {
                rate: 50.0,
                delay_ms: 20,
                loss: 0.0,
            },
            SchedulerKind::RoundRobin,
            16_384,
            10,
        );
        let counters = sim.agent_as::<MptcpSender>(sender).subflow_counters();
        let sent: Vec<u64> = counters.iter().map(|&(s, _)| s).collect();
        let total: u64 = sent.iter().sum();
        assert!(total > 0, "round-robin sent nothing");
        for (i, &s) in sent.iter().enumerate() {
            let share = s as f64 / total as f64;
            assert!(
                (0.40..=0.60).contains(&share),
                "subflow {i} carried {share:.2} of packets ({sent:?}); \
                 round-robin should alternate across equal subflows"
            );
        }
        assert!(goodput > 70.0, "equal-path round-robin goodput {goodput}");
    }

    #[test]
    fn beats_the_better_single_path() {
        let (mp, ..) = run_mptcp(
            Path {
                rate: 50.0,
                delay_ms: 25,
                loss: 0.0,
            },
            Path {
                rate: 80.0,
                delay_ms: 45,
                loss: 0.0,
            },
            SchedulerKind::Blest,
            16_384,
            12,
        );
        // The better path alone is 80 Mbps.
        assert!(mp > 88.0, "MPTCP {mp} Mbps should beat the better path");
    }

    #[test]
    fn small_buffer_collapses_on_asymmetric_paths() {
        // §6: with OS-default buffers, data in flight on the slow path
        // head-of-line-blocks the fast one. A scheduler that actually uses
        // both paths (RoundRobin here; on the paper's variable real traces
        // every scheduler ends up using the slow path) stalls the whole
        // connection on the 200 ms path whenever the tiny window fills.
        let (small, ..) = run_mptcp(
            Path {
                rate: 100.0,
                delay_ms: 5,
                loss: 0.0,
            },
            Path {
                rate: 20.0,
                delay_ms: 100,
                loss: 0.0,
            },
            SchedulerKind::RoundRobin,
            64,
            12,
        );
        let (large, ..) = run_mptcp(
            Path {
                rate: 100.0,
                delay_ms: 5,
                loss: 0.0,
            },
            Path {
                rate: 20.0,
                delay_ms: 100,
                loss: 0.0,
            },
            SchedulerKind::RoundRobin,
            16_384,
            12,
        );
        assert!(
            small < large * 0.55,
            "small-buffer {small} vs tuned {large} Mbps — collapse missing"
        );
        // And the tiny buffer also caps MinRtt below the fast path's own
        // capacity (the "marginal improvement" regime of §6).
        let (minrtt_small, ..) = run_mptcp(
            Path {
                rate: 100.0,
                delay_ms: 5,
                loss: 0.0,
            },
            Path {
                rate: 20.0,
                delay_ms: 100,
                loss: 0.0,
            },
            SchedulerKind::MinRtt,
            64,
            12,
        );
        assert!(
            minrtt_small < 85.0,
            "MinRtt with a 64-packet buffer should stay below path-0 capacity, got {minrtt_small}"
        );
    }

    #[test]
    fn blest_handles_asymmetry_better_than_roundrobin_with_small_buffer() {
        let (rr, ..) = run_mptcp(
            Path {
                rate: 100.0,
                delay_ms: 5,
                loss: 0.0,
            },
            Path {
                rate: 10.0,
                delay_ms: 150,
                loss: 0.0,
            },
            SchedulerKind::RoundRobin,
            256,
            12,
        );
        let (blest, ..) = run_mptcp(
            Path {
                rate: 100.0,
                delay_ms: 5,
                loss: 0.0,
            },
            Path {
                rate: 10.0,
                delay_ms: 150,
                loss: 0.0,
            },
            SchedulerKind::Blest,
            256,
            12,
        );
        assert!(
            blest > rr,
            "BLEST {blest} should beat RoundRobin {rr} under asymmetry"
        );
    }

    #[test]
    fn survives_one_path_dying() {
        // Path 1 is a black hole: reinjection must rescue its data through
        // path 0; the transfer completes.
        let mut sim = Simulator::new(3);
        let sender = sim.add_node(Box::new(MptcpSender::new(MptcpConfig {
            flow: 10,
            cc: CcAlgorithm::Cubic,
            coupled: false,
            scheduler: SchedulerKind::RoundRobin,
            recv_buffer_packets: 4096,
            subflow_links: vec![LinkId(0), LinkId(1)],
            limit_packets: Some(300),
            leo_guard: None,
        })));
        let receiver = sim.add_node(Box::new(MptcpReceiver::new(
            10,
            vec![LinkId(2), LinkId(3)],
            4096,
        )));
        sim.add_link(
            Box::new(ConstPipe::new(20.0, SimTime::from_millis(20), 0.0, 1 << 20)),
            receiver,
        );
        sim.add_link(
            Box::new(ConstPipe::new(20.0, SimTime::from_millis(20), 1.0, 1 << 20)),
            receiver,
        ); // dead
        sim.add_link(
            Box::new(ConstPipe::new(20.0, SimTime::from_millis(20), 0.0, 1 << 20)),
            sender,
        );
        sim.add_link(
            Box::new(ConstPipe::new(20.0, SimTime::from_millis(20), 0.0, 1 << 20)),
            sender,
        );
        sim.with_agent(sender, |a, ctx| {
            a.as_any_mut()
                .downcast_mut::<MptcpSender>()
                .unwrap()
                .start(ctx)
        });
        sim.run_until(SimTime::from_secs(120));
        let rx = sim.agent_as::<MptcpReceiver>(receiver);
        assert_eq!(
            rx.data_rcv_nxt(),
            300,
            "all data must arrive despite the dead subflow"
        );
        assert!(sim.agent_as::<MptcpSender>(sender).finished());
    }

    #[test]
    fn receiver_buffer_never_overfills() {
        let (_, sim, _, receiver) = run_mptcp(
            Path {
                rate: 200.0,
                delay_ms: 5,
                loss: 0.0,
            },
            Path {
                rate: 10.0,
                delay_ms: 150,
                loss: 0.0,
            },
            SchedulerKind::RoundRobin,
            32,
            8,
        );
        let rx = sim.agent_as::<MptcpReceiver>(receiver);
        assert!(
            rx.advertised_window() <= 32,
            "window {} exceeds the buffer",
            rx.advertised_window()
        );
    }

    #[test]
    fn lia_is_less_aggressive_than_uncoupled() {
        // Two identical paths: coupled total transfer ≤ uncoupled.
        let run = |coupled: bool| {
            let mut sim = Simulator::new(9);
            let sender = sim.add_node(Box::new(MptcpSender::new(MptcpConfig {
                flow: 10,
                cc: CcAlgorithm::Reno,
                coupled,
                scheduler: SchedulerKind::RoundRobin,
                recv_buffer_packets: 16_384,
                subflow_links: vec![LinkId(0), LinkId(1)],
                limit_packets: None,
                leo_guard: None,
            })));
            let receiver = sim.add_node(Box::new(MptcpReceiver::new(
                10,
                vec![LinkId(2), LinkId(3)],
                16_384,
            )));
            for dst in [receiver, receiver, sender, sender] {
                sim.add_link(
                    Box::new(ConstPipe::new(
                        30.0,
                        SimTime::from_millis(40),
                        0.003,
                        1 << 19,
                    )),
                    dst,
                );
            }
            sim.with_agent(sender, |a, ctx| {
                a.as_any_mut()
                    .downcast_mut::<MptcpSender>()
                    .unwrap()
                    .start(ctx)
            });
            sim.run_until(SimTime::from_secs(20));
            sim.agent_as::<MptcpReceiver>(receiver).meter.total_bytes()
        };
        let coupled = run(true);
        let uncoupled = run(false);
        assert!(
            coupled <= uncoupled,
            "LIA ({coupled}) should not out-transfer uncoupled ({uncoupled})"
        );
    }

    #[test]
    fn reassembles_interleaved_dsns() {
        // Unit-level: feed the receiver DSNs out of order across subflows.
        let mut sim = Simulator::new(1);
        let receiver = sim.add_node(Box::new(MptcpReceiver::new(
            5,
            vec![LinkId(0), LinkId(1)],
            64,
        )));
        let sink = sim.add_node(Box::new(NullAgent));
        sim.add_link(
            Box::new(ConstPipe::new(1e9, SimTime::ZERO, 0.0, u64::MAX)),
            sink,
        );
        sim.add_link(
            Box::new(ConstPipe::new(1e9, SimTime::ZERO, 0.0, u64::MAX)),
            sink,
        );
        sim.with_agent(receiver, |a, ctx| {
            let r = a.as_any_mut().downcast_mut::<MptcpReceiver>().unwrap();
            // Subflow 0 carries DSN 0 and 2; subflow 1 carries DSN 1.
            r.on_packet(
                ctx,
                LinkId(9),
                Packet::data(1, 5, 0, ctx.now()).with_aux(0, 0),
            );
            r.on_packet(
                ctx,
                LinkId(9),
                Packet::data(2, 5, 1, ctx.now()).with_aux(2, 0),
            );
            assert_eq!(r.data_rcv_nxt(), 1, "DSN 2 buffered, waiting for 1");
            r.on_packet(
                ctx,
                LinkId(9),
                Packet::data(3, 6, 0, ctx.now()).with_aux(1, 0),
            );
            assert_eq!(r.data_rcv_nxt(), 3, "stream complete across subflows");
        });
    }

    #[test]
    fn leo_guard_window_arithmetic() {
        let g = LeoGuard {
            satellite_subflow: 0,
            interval_ms: 15_000,
            guard_ms: 500,
        };
        assert!(g.in_guard(0));
        assert!(g.in_guard(499));
        assert!(!g.in_guard(500));
        assert!(!g.in_guard(14_499));
        assert!(g.in_guard(14_500));
        assert!(g.in_guard(15_000));
        assert!(g.in_guard(29_800));
    }

    #[test]
    fn leo_aware_beats_blest_under_periodic_satellite_outages() {
        // The satellite path dies for ~1 s around every 15 s boundary
        // (handover reconfiguration). The LEO-aware scheduler, knowing the
        // clock, parks the satellite subflow during the guard window; BLEST
        // keeps scheduling into the outage and strands data behind it.
        use leo_link::mahimahi::MahimahiTrace;
        use leo_netsim::TracePipe;

        let secs = 46u64;
        let run = |sched: SchedulerKind| {
            let mut sim = Simulator::new(21);
            let buffer = 600; // modest buffer: stranding hurts
            let sender = sim.add_node(Box::new(MptcpSender::new(MptcpConfig {
                flow: 10,
                cc: CcAlgorithm::Cubic,
                coupled: true,
                scheduler: sched,
                recv_buffer_packets: buffer,
                subflow_links: vec![LinkId(0), LinkId(1)],
                limit_packets: None,
                leo_guard: (sched == SchedulerKind::LeoAware).then_some(LeoGuard {
                    satellite_subflow: 0,
                    interval_ms: 15_000,
                    guard_ms: 700,
                }),
            })));
            let receiver = sim.add_node(Box::new(MptcpReceiver::new(
                10,
                vec![LinkId(2), LinkId(3)],
                buffer,
            )));
            // Satellite path: 80 Mbps with total loss for one second at
            // every 15 s mark.
            let sat_loss: Vec<f64> = (0..secs)
                .map(|t| if t % 15 == 0 { 1.0 } else { 0.002 })
                .collect();
            let sat_trace = MahimahiTrace::from_capacity_series(&vec![80.0; secs as usize]);
            sim.add_link(
                Box::new(
                    TracePipe::new(sat_trace, SimTime::from_millis(30), 1 << 20)
                        .with_loss_series(sat_loss),
                ),
                receiver,
            );
            // Cellular path: steady 30 Mbps.
            sim.add_link(
                Box::new(ConstPipe::new(30.0, SimTime::from_millis(25), 0.0, 1 << 20)),
                receiver,
            );
            sim.add_link(
                Box::new(ConstPipe::new(80.0, SimTime::from_millis(30), 0.0, 1 << 20)),
                sender,
            );
            sim.add_link(
                Box::new(ConstPipe::new(30.0, SimTime::from_millis(25), 0.0, 1 << 20)),
                sender,
            );
            sim.with_agent(sender, |a, ctx| {
                a.as_any_mut()
                    .downcast_mut::<MptcpSender>()
                    .unwrap()
                    .start(ctx)
            });
            sim.run_until(SimTime::from_secs(secs));
            sim.agent_as::<MptcpReceiver>(receiver)
                .meter
                .mean_mbps_over(SimTime::from_secs(secs))
        };
        let blest = run(SchedulerKind::Blest);
        let leo = run(SchedulerKind::LeoAware);
        assert!(
            leo > blest,
            "LEO-aware {leo} Mbps should beat BLEST {blest} Mbps under periodic outages"
        );
    }

    struct NullAgent;
    impl Agent for NullAgent {
        fn on_packet(&mut self, _: &mut Context, _: LinkId, _: Packet) {}
        fn on_timer(&mut self, _: &mut Context, _: u64) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
}
