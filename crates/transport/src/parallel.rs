//! Parallel TCP: N independent connections treated as one transfer.
//!
//! §4.2's TCP-parallelism experiment (`iPerf -P`): several TCP connections
//! share the same path; the aggregate recovers much of the capacity a
//! single loss-throttled connection leaves on the table, because loss in
//! one connection does not stall the others.
//!
//! This module is a thin orchestration layer: it builds `n`
//! sender/receiver pairs over a shared pair of links and aggregates their
//! results.

use crate::cc::CcAlgorithm;
use crate::tcp::{TcpConfig, TcpReceiver, TcpSender};
use leo_netsim::{LinkId, NodeId, SimTime, Simulator};

/// Handles to a parallel-TCP experiment inside a simulator.
pub struct ParallelTcp {
    pub senders: Vec<NodeId>,
    pub receivers: Vec<NodeId>,
}

impl ParallelTcp {
    /// Installs `n` connections into `sim`, all sending over `data_link`
    /// and ACKing over `ack_link`. Flow ids start at `base_flow`.
    ///
    /// The links must already exist and route data packets to all
    /// receivers and ACKs to all senders — in practice both ends are
    /// attached to a [`Demux`] node; see
    /// [`install_with_demux`] for the turnkey
    /// version.
    pub fn install(
        sim: &mut Simulator,
        n: usize,
        base_flow: u32,
        cc: CcAlgorithm,
        rwnd_packets: u64,
        data_link: LinkId,
        ack_link: LinkId,
    ) -> Self {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for i in 0..n {
            let flow = base_flow + i as u32;
            senders.push(sim.add_node(Box::new(TcpSender::new(TcpConfig {
                flow,
                cc,
                rwnd_packets,
                data_link,
                limit_packets: None,
            }))));
            receivers.push(sim.add_node(Box::new(TcpReceiver::new(flow, ack_link))));
        }
        Self { senders, receivers }
    }

    /// Starts every connection.
    pub fn start_all(&self, sim: &mut Simulator) {
        for &s in &self.senders {
            sim.with_agent(s, |a, ctx| {
                a.as_any_mut()
                    .downcast_mut::<TcpSender>()
                    .expect("sender node")
                    .start(ctx)
            });
        }
    }

    /// Aggregate goodput across connections over `duration`, Mbps.
    pub fn aggregate_goodput_mbps(&self, sim: &Simulator, duration: SimTime) -> f64 {
        self.receivers
            .iter()
            .map(|&r| {
                sim.agent_as::<TcpReceiver>(r)
                    .meter
                    .mean_mbps_over(duration)
            })
            .sum()
    }

    /// Aggregate retransmission rate across connections.
    pub fn aggregate_retransmission_rate(&self, sim: &Simulator) -> f64 {
        let (mut retx, mut sent) = (0u64, 0u64);
        for &s in &self.senders {
            let snd = sim.agent_as::<TcpSender>(s);
            retx += snd.retransmissions();
            sent += snd.packets_sent();
        }
        if sent == 0 {
            0.0
        } else {
            retx as f64 / sent as f64
        }
    }
}

/// Fans packets out to per-flow endpoints: data packets to receivers,
/// ACKs to senders, matched on `Packet::flow`.
///
/// A `Demux` sits at each end of the shared pipe pair, so many flows can
/// share one bottleneck (exactly iPerf `-P` through one interface).
pub struct Demux {
    /// (flow, node) routing table; nodes receive via direct dispatch links.
    routes: Vec<(u32, LinkId)>,
}

impl Demux {
    /// Creates a demux with a routing table mapping flows to the loopback
    /// links that reach each endpoint node.
    pub fn new(routes: Vec<(u32, LinkId)>) -> Self {
        Self { routes }
    }
}

impl leo_netsim::Agent for Demux {
    fn on_packet(
        &mut self,
        ctx: &mut leo_netsim::Context,
        _link: LinkId,
        packet: leo_netsim::Packet,
    ) {
        if let Some(&(_, out)) = self.routes.iter().find(|&&(f, _)| f == packet.flow) {
            ctx.send(out, packet);
        }
    }

    fn on_timer(&mut self, _ctx: &mut leo_netsim::Context, _timer_id: u64) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Builds the full iPerf `-P n` topology over one bottleneck:
/// `senders → demux_in → [bottleneck pipe] → demux_out → receivers`, with
/// ACKs returning over a reverse pipe. Returns the handles.
///
/// `mk_data_pipe` / `mk_ack_pipe` create the shared pipes (called once
/// each).
pub fn install_with_demux(
    sim: &mut Simulator,
    n: usize,
    cc: CcAlgorithm,
    rwnd_packets: u64,
    mk_data_pipe: impl FnOnce() -> Box<dyn leo_netsim::Pipe>,
    mk_ack_pipe: impl FnOnce() -> Box<dyn leo_netsim::Pipe>,
) -> ParallelTcp {
    // Nodes are created first with placeholder link ids, then links are
    // wired in a fixed order so ids are predictable:
    //   link 0: senders → receiver-side demux (the data bottleneck)
    //   link 1: receivers → sender-side demux (the ACK path)
    //   links 2..2+n: receiver-side demux → receiver i (instant)
    //   links 2+n..2+2n: sender-side demux → sender i (instant)
    let base_flow = 1;
    let handles = ParallelTcp::install(sim, n, base_flow, cc, rwnd_packets, LinkId(0), LinkId(1));

    let rx_routes: Vec<(u32, LinkId)> = (0..n)
        .map(|i| (base_flow + i as u32, LinkId(2 + i)))
        .collect();
    let tx_routes: Vec<(u32, LinkId)> = (0..n)
        .map(|i| (base_flow + i as u32, LinkId(2 + n + i)))
        .collect();
    let demux_rx = sim.add_node(Box::new(Demux::new(rx_routes)));
    let demux_tx = sim.add_node(Box::new(Demux::new(tx_routes)));

    let data = sim.add_link(mk_data_pipe(), demux_rx);
    assert_eq!(data, LinkId(0));
    let ack = sim.add_link(mk_ack_pipe(), demux_tx);
    assert_eq!(ack, LinkId(1));
    for i in 0..n {
        let l = sim.add_link(instant_pipe(), handles.receivers[i]);
        assert_eq!(l, LinkId(2 + i));
    }
    for i in 0..n {
        let l = sim.add_link(instant_pipe(), handles.senders[i]);
        assert_eq!(l, LinkId(2 + n + i));
    }
    handles
}

/// An effectively-transparent pipe for demux-to-endpoint dispatch.
fn instant_pipe() -> Box<dyn leo_netsim::Pipe> {
    Box::new(leo_netsim::ConstPipe::new(
        1e9,
        SimTime::ZERO,
        0.0,
        u64::MAX,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_netsim::ConstPipe;

    fn run_parallel(n: usize, loss: f64, secs: u64) -> f64 {
        let mut sim = Simulator::new(5);
        let handles = install_with_demux(
            &mut sim,
            n,
            CcAlgorithm::Cubic,
            4096,
            || {
                Box::new(ConstPipe::new(
                    100.0,
                    SimTime::from_millis(30),
                    loss,
                    400_000,
                ))
            },
            || {
                Box::new(ConstPipe::new(
                    100.0,
                    SimTime::from_millis(30),
                    0.0,
                    400_000,
                ))
            },
        );
        handles.start_all(&mut sim);
        sim.run_until(SimTime::from_secs(secs));
        handles.aggregate_goodput_mbps(&sim, SimTime::from_secs(secs))
    }

    #[test]
    fn parallelism_recovers_lossy_link_throughput() {
        // The Figure 7 mechanism: on a lossy link, 4 connections beat 1.
        let one = run_parallel(1, 0.01, 12);
        let four = run_parallel(4, 0.01, 12);
        assert!(
            four > one * 1.4,
            "4P {four} Mbps should clearly beat 1P {one} Mbps"
        );
    }

    #[test]
    fn parallelism_gains_little_on_clean_link() {
        let one = run_parallel(1, 0.0, 12);
        let four = run_parallel(4, 0.0, 12);
        assert!(
            four < one * 1.35,
            "clean link: 4P {four} vs 1P {one} should be comparable"
        );
    }

    #[test]
    fn flows_share_reasonably_fairly() {
        let mut sim = Simulator::new(5);
        let handles = install_with_demux(
            &mut sim,
            3,
            CcAlgorithm::Reno,
            4096,
            || Box::new(ConstPipe::new(60.0, SimTime::from_millis(20), 0.0, 300_000)),
            || Box::new(ConstPipe::new(60.0, SimTime::from_millis(20), 0.0, 300_000)),
        );
        handles.start_all(&mut sim);
        sim.run_until(SimTime::from_secs(15));
        let rates: Vec<f64> = handles
            .receivers
            .iter()
            .map(|&r| {
                sim.agent_as::<crate::tcp::TcpReceiver>(r)
                    .meter
                    .mean_mbps_over(SimTime::from_secs(15))
            })
            .collect();
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min.max(0.1) < 4.0, "unfair shares: {rates:?}");
    }

    #[test]
    fn aggregate_retransmissions_counted() {
        let mut sim = Simulator::new(5);
        let handles = install_with_demux(
            &mut sim,
            2,
            CcAlgorithm::Cubic,
            4096,
            || {
                Box::new(ConstPipe::new(
                    50.0,
                    SimTime::from_millis(25),
                    0.02,
                    200_000,
                ))
            },
            || Box::new(ConstPipe::new(50.0, SimTime::from_millis(25), 0.0, 200_000)),
        );
        handles.start_all(&mut sim);
        sim.run_until(SimTime::from_secs(10));
        let retx = handles.aggregate_retransmission_rate(&sim);
        assert!(retx > 0.01, "retx {retx}");
    }
}
