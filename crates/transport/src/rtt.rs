//! RFC 6298 round-trip-time estimation.

use leo_netsim::SimTime;
use serde::{Deserialize, Serialize};

/// The classic SRTT/RTTVAR estimator with RFC 6298 constants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    /// Lower bound on the computed RTO.
    min_rto: f64,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RttEstimator {
    /// Creates an estimator with the Linux-like 200 ms minimum RTO.
    pub fn new() -> Self {
        Self {
            srtt: None,
            rttvar: 0.0,
            min_rto: 0.200,
        }
    }

    /// Feeds one RTT sample.
    pub fn on_sample(&mut self, rtt: SimTime) {
        let r = rtt.as_secs_f64();
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                // RFC 6298: β=1/4, α=1/8.
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
    }

    /// Smoothed RTT; `None` before the first sample.
    pub fn srtt(&self) -> Option<SimTime> {
        self.srtt.map(SimTime::from_secs_f64)
    }

    /// Smoothed RTT in seconds, defaulting to 1 s before the first sample
    /// (RFC 6298's initial RTO).
    pub fn srtt_or_default_s(&self) -> f64 {
        self.srtt.unwrap_or(1.0)
    }

    /// Retransmission timeout: `SRTT + 4·RTTVAR`, floored at the minimum.
    pub fn rto(&self) -> SimTime {
        let rto = match self.srtt {
            None => 1.0,
            Some(srtt) => srtt + (4.0 * self.rttvar).max(0.010),
        };
        SimTime::from_secs_f64(rto.max(self.min_rto))
    }

    /// Back-off: doubles an RTO value, capped at 60 s.
    pub fn backoff(rto: SimTime) -> SimTime {
        SimTime::from_secs_f64((rto.as_secs_f64() * 2.0).min(60.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initialises() {
        let mut e = RttEstimator::new();
        assert!(e.srtt().is_none());
        assert_eq!(e.rto(), SimTime::from_secs(1));
        e.on_sample(SimTime::from_millis(100));
        assert_eq!(e.srtt().unwrap().as_millis(), 100);
        // RTO = 100 ms + 4·50 ms = 300 ms.
        assert_eq!(e.rto().as_millis(), 300);
    }

    #[test]
    fn converges_to_constant_rtt() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.on_sample(SimTime::from_millis(60));
        }
        let srtt = e.srtt().unwrap().as_millis();
        assert!((59..=61).contains(&srtt), "srtt {srtt}");
        // Variance decays; RTO approaches the 200 ms floor.
        assert_eq!(e.rto().as_millis(), 200);
    }

    #[test]
    fn jittery_samples_raise_rto() {
        let mut e = RttEstimator::new();
        for i in 0..50 {
            let ms = if i % 2 == 0 { 40 } else { 160 };
            e.on_sample(SimTime::from_millis(ms));
        }
        assert!(e.rto().as_millis() > 250, "rto {}", e.rto().as_millis());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = SimTime::from_secs(1);
        assert_eq!(RttEstimator::backoff(r).as_millis(), 2000);
        let big = SimTime::from_secs(50);
        assert_eq!(RttEstimator::backoff(big).as_millis(), 60_000);
    }
}
