//! Single-path TCP: sliding-window sender and in-order receiver.
//!
//! Packet-granularity TCP (sequence numbers count MSS-sized segments, not
//! bytes) built on [`crate::flowcore::FlowCore`]: pluggable congestion
//! control (Reno/CUBIC), SACK scoreboard with fast retransmit and
//! hole-filling recovery, RTO with exponential backoff, per-packet
//! timestamp echo for RTT sampling (Karn-safe), and retransmission
//! accounting (Figure 5's metric).

use crate::cc::CcAlgorithm;
use crate::flowcore::{FlowActions, FlowCore};
use crate::throughput::ThroughputMeter;
use leo_netsim::{Agent, Context, LinkId, Packet, SimTime};
use std::collections::BTreeSet;

/// TCP connection parameters.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Flow id stamped on every packet.
    pub flow: u32,
    /// Congestion controller.
    pub cc: CcAlgorithm,
    /// Receive-window limit, packets (the OS buffer the paper tunes in §6).
    pub rwnd_packets: u64,
    /// Link the sender transmits data into.
    pub data_link: LinkId,
    /// Total packets to send; `None` for an unbounded bulk transfer.
    pub limit_packets: Option<u64>,
}

impl TcpConfig {
    /// A bulk-transfer config with CUBIC and a large receive window.
    pub fn bulk(flow: u32, data_link: LinkId) -> Self {
        Self {
            flow,
            cc: CcAlgorithm::Cubic,
            rwnd_packets: 4096,
            data_link,
            limit_packets: None,
        }
    }
}

/// The sending endpoint. Receives ACKs, emits data.
pub struct TcpSender {
    cfg: TcpConfig,
    core: FlowCore,
    next_pkt_id: u64,
    started: bool,
}

impl TcpSender {
    /// Creates a sender; call [`start`](Self::start) (via
    /// `Simulator::with_agent`) to begin transmitting.
    pub fn new(cfg: TcpConfig) -> Self {
        let core = FlowCore::new(cfg.cc);
        Self {
            cfg,
            core,
            next_pkt_id: 0,
            started: false,
        }
    }

    /// Kicks off the transfer.
    pub fn start(&mut self, ctx: &mut Context) {
        if !self.started {
            self.started = true;
            self.fill_window(ctx);
            self.arm_rto(ctx);
        }
    }

    /// True once a bounded transfer is fully acknowledged.
    pub fn finished(&self) -> bool {
        match self.cfg.limit_packets {
            Some(n) => self.core.snd_una() >= n,
            None => false,
        }
    }

    /// Retransmission rate: retransmitted / total transmissions.
    pub fn retransmission_rate(&self) -> f64 {
        self.core.retransmission_rate()
    }

    /// Total packets put on the wire.
    pub fn packets_sent(&self) -> u64 {
        self.core.packets_sent
    }

    /// Total retransmissions.
    pub fn retransmissions(&self) -> u64 {
        self.core.retransmissions
    }

    /// RTO events so far.
    pub fn timeouts(&self) -> u64 {
        self.core.timeouts
    }

    /// Smoothed RTT estimate, if sampled yet.
    pub fn srtt(&self) -> Option<SimTime> {
        self.core.rtt.srtt()
    }

    /// Current congestion window, packets.
    pub fn cwnd(&self) -> f64 {
        self.core.cc.cwnd()
    }

    fn send_segment(&mut self, ctx: &mut Context, seq: u64) {
        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        let pkt = Packet::data(id, self.cfg.flow, seq, ctx.now()).with_aux(0, ctx.now().as_nanos());
        ctx.send(self.cfg.data_link, pkt);
    }

    fn perform(&mut self, ctx: &mut Context, actions: &FlowActions) {
        for &(seq, _aux) in &actions.retransmits {
            self.send_segment(ctx, seq);
        }
    }

    fn fill_window(&mut self, ctx: &mut Context) {
        let limit = self.cfg.limit_packets.unwrap_or(u64::MAX);
        while self.core.window_space()
            && self.core.outstanding() < self.cfg.rwnd_packets
            && self.core.next_seq() < limit
        {
            let seq = self.core.alloc_seq();
            self.core.register_transmit(seq, 0, false);
            self.send_segment(ctx, seq);
        }
    }

    fn arm_rto(&mut self, ctx: &mut Context) {
        let epoch = self.core.arm_rto();
        ctx.set_timer(self.core.current_rto, epoch);
    }
}

impl Agent for TcpSender {
    fn on_packet(&mut self, ctx: &mut Context, _link: LinkId, packet: Packet) {
        if !packet.is_ack || packet.flow != self.cfg.flow {
            return;
        }
        let actions = self
            .core
            .handle_ack(packet.ack, packet.aux_c, packet.aux_b, ctx.now());
        self.perform(ctx, &actions);
        self.fill_window(ctx);
        // RFC 6298 §5: restart the timer when new data is ACKed *or* when
        // a retransmission goes out, so recovery never outlives the timer.
        if (actions.advanced || !actions.retransmits.is_empty()) && self.core.has_outstanding() {
            self.arm_rto(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, timer_id: u64) {
        if let Some(actions) = self.core.handle_timeout(timer_id, ctx.now()) {
            self.perform(ctx, &actions);
            self.arm_rto(ctx);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The receiving endpoint. Receives data, emits cumulative ACKs with SACK
/// hints, and meters goodput (bytes delivered *in order*, as an
/// application would see them).
pub struct TcpReceiver {
    flow: u32,
    ack_link: LinkId,
    rcv_nxt: u64,
    ooo: BTreeSet<u64>,
    /// Goodput meter (in-order delivery).
    pub meter: ThroughputMeter,
    pub packets_received: u64,
    next_pkt_id: u64,
}

impl TcpReceiver {
    /// Creates a receiver ACKing over `ack_link`.
    pub fn new(flow: u32, ack_link: LinkId) -> Self {
        Self {
            flow,
            ack_link,
            rcv_nxt: 0,
            ooo: BTreeSet::new(),
            meter: ThroughputMeter::new(),
            packets_received: 0,
            next_pkt_id: 1 << 40, // distinct id space from the sender
        }
    }

    /// Highest in-order sequence received.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }
}

impl Agent for TcpReceiver {
    fn on_packet(&mut self, ctx: &mut Context, _link: LinkId, packet: Packet) {
        if packet.is_ack || packet.flow != self.flow {
            return;
        }
        self.packets_received += 1;
        let before = self.rcv_nxt;
        if packet.seq == self.rcv_nxt {
            self.rcv_nxt += 1;
            // Drain any contiguous out-of-order run.
            while self.ooo.remove(&self.rcv_nxt) {
                self.rcv_nxt += 1;
            }
        } else if packet.seq > self.rcv_nxt {
            self.ooo.insert(packet.seq);
        } // duplicates below rcv_nxt are ignored

        let delivered = self.rcv_nxt - before;
        if delivered > 0 {
            self.meter
                .record(ctx.now(), delivered * packet.size_bytes as u64);
        }

        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        // ACK: cumulative in `ack`, SACK hint (triggering seq) in `aux_c`,
        // timestamp echo in `aux_b`.
        let ack = Packet::ack(id, self.flow, self.rcv_nxt, ctx.now())
            .with_aux(0, packet.aux_b)
            .with_aux_c(packet.seq);
        ctx.send(self.ack_link, ack);
    }

    fn on_timer(&mut self, _ctx: &mut Context, _timer_id: u64) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_netsim::{ConstPipe, Simulator};

    /// Builds sender→receiver over (rate, delay, loss) and runs `secs`.
    fn run_tcp(rate_mbps: f64, delay_ms: u64, loss: f64, secs: u64, cc: CcAlgorithm) -> (f64, f64) {
        let mut sim = Simulator::new(99);
        let queue = (rate_mbps * 1e6 / 8.0 * 2.0 * delay_ms as f64 / 1e3) as u64 + 30_000;
        let sender = sim.add_node(Box::new(TcpSender::new(TcpConfig {
            flow: 1,
            cc,
            rwnd_packets: 4096,
            data_link: LinkId(0),
            limit_packets: None,
        })));
        let receiver = sim.add_node(Box::new(TcpReceiver::new(1, LinkId(1))));
        sim.add_link(
            Box::new(ConstPipe::new(
                rate_mbps,
                SimTime::from_millis(delay_ms),
                loss,
                queue,
            )),
            receiver,
        );
        sim.add_link(
            Box::new(ConstPipe::new(
                rate_mbps,
                SimTime::from_millis(delay_ms),
                0.0,
                queue,
            )),
            sender,
        );
        sim.with_agent(sender, |a, ctx| {
            a.as_any_mut()
                .downcast_mut::<TcpSender>()
                .unwrap()
                .start(ctx)
        });
        sim.run_until(SimTime::from_secs(secs));
        let goodput = sim
            .agent_as::<TcpReceiver>(receiver)
            .meter
            .mean_mbps_over(SimTime::from_secs(secs));
        let retx = sim.agent_as::<TcpSender>(sender).retransmission_rate();
        (goodput, retx)
    }

    #[test]
    fn clean_link_reaches_near_capacity() {
        for cc in [CcAlgorithm::Reno, CcAlgorithm::Cubic] {
            let (goodput, retx) = run_tcp(50.0, 20, 0.0, 10, cc);
            assert!(
                goodput > 40.0,
                "{cc:?}: goodput {goodput} Mbps on a clean 50 Mbps link"
            );
            assert!(retx < 0.05, "{cc:?}: retx {retx} without random loss");
        }
    }

    #[test]
    fn heavy_loss_craters_throughput() {
        // §4.1's headline mechanism: random loss devastates TCP.
        let (clean, _) = run_tcp(100.0, 30, 0.0, 10, CcAlgorithm::Cubic);
        let (lossy, retx) = run_tcp(100.0, 30, 0.02, 10, CcAlgorithm::Cubic);
        assert!(
            lossy < clean / 2.0,
            "2% loss: {lossy} vs clean {clean} Mbps"
        );
        assert!(retx > 0.01, "retx rate {retx} should reflect channel loss");
    }

    #[test]
    fn bbr_lite_beats_cubic_on_random_loss() {
        // The paper's "better congestion control" call, demonstrated at
        // packet level: on a 1.5 % random-loss link, the model-based
        // controller sustains a large multiple of CUBIC's goodput.
        let (cubic, _) = run_tcp(100.0, 30, 0.015, 12, CcAlgorithm::Cubic);
        let (bbr, _) = run_tcp(100.0, 30, 0.015, 12, CcAlgorithm::BbrLite);
        assert!(
            bbr > cubic * 2.0,
            "BBR-lite {bbr} Mbps should far exceed CUBIC {cubic} Mbps under loss"
        );
        // And on a clean link it must not be wildly unfair to itself.
        let (bbr_clean, _) = run_tcp(100.0, 30, 0.0, 12, CcAlgorithm::BbrLite);
        assert!(bbr_clean > 60.0, "BBR-lite clean-link {bbr_clean} Mbps");
    }

    #[test]
    fn retransmission_rate_tracks_loss_rate() {
        let (_, retx) = run_tcp(50.0, 20, 0.01, 15, CcAlgorithm::Cubic);
        assert!(
            (0.005..0.06).contains(&retx),
            "retx {retx} for 1% channel loss"
        );
    }

    #[test]
    fn bounded_transfer_completes_exactly() {
        let mut sim = Simulator::new(7);
        let sender = sim.add_node(Box::new(TcpSender::new(TcpConfig {
            flow: 1,
            cc: CcAlgorithm::Reno,
            rwnd_packets: 64,
            data_link: LinkId(0),
            limit_packets: Some(500),
        })));
        let receiver = sim.add_node(Box::new(TcpReceiver::new(1, LinkId(1))));
        sim.add_link(
            Box::new(ConstPipe::new(
                20.0,
                SimTime::from_millis(10),
                0.005,
                1 << 20,
            )),
            receiver,
        );
        sim.add_link(
            Box::new(ConstPipe::new(20.0, SimTime::from_millis(10), 0.0, 1 << 20)),
            sender,
        );
        sim.with_agent(sender, |a, ctx| {
            a.as_any_mut()
                .downcast_mut::<TcpSender>()
                .unwrap()
                .start(ctx)
        });
        sim.run_until(SimTime::from_secs(60));
        assert!(sim.agent_as::<TcpSender>(sender).finished());
        assert_eq!(sim.agent_as::<TcpReceiver>(receiver).rcv_nxt(), 500);
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut sim = Simulator::new(1);
        let receiver = sim.add_node(Box::new(TcpReceiver::new(9, LinkId(0))));
        let sink = sim.add_node(Box::new(NullAgent));
        sim.add_link(
            Box::new(ConstPipe::new(1000.0, SimTime::ZERO, 0.0, 1 << 20)),
            sink,
        );
        sim.with_agent(receiver, |a, ctx| {
            let r = a.as_any_mut().downcast_mut::<TcpReceiver>().unwrap();
            r.on_packet(ctx, LinkId(9), Packet::data(1, 9, 0, ctx.now()));
            r.on_packet(ctx, LinkId(9), Packet::data(2, 9, 2, ctx.now())); // hole at 1
            assert_eq!(r.rcv_nxt(), 1);
            r.on_packet(ctx, LinkId(9), Packet::data(3, 9, 1, ctx.now()));
            assert_eq!(r.rcv_nxt(), 3, "hole filled drains the OOO buffer");
            r.on_packet(ctx, LinkId(9), Packet::data(4, 9, 0, ctx.now()));
            assert_eq!(r.rcv_nxt(), 3, "stale duplicate ignored");
        });
    }

    #[test]
    fn rto_fires_on_total_blackout() {
        let mut sim = Simulator::new(1);
        let sender = sim.add_node(Box::new(TcpSender::new(TcpConfig {
            flow: 1,
            cc: CcAlgorithm::Reno,
            rwnd_packets: 64,
            data_link: LinkId(0),
            limit_packets: Some(10),
        })));
        let receiver = sim.add_node(Box::new(TcpReceiver::new(1, LinkId(1))));
        sim.add_link(
            Box::new(ConstPipe::new(10.0, SimTime::ZERO, 1.0, 1 << 20)),
            receiver,
        );
        sim.add_link(
            Box::new(ConstPipe::new(10.0, SimTime::ZERO, 0.0, 1 << 20)),
            sender,
        );
        sim.with_agent(sender, |a, ctx| {
            a.as_any_mut()
                .downcast_mut::<TcpSender>()
                .unwrap()
                .start(ctx)
        });
        sim.run_until(SimTime::from_secs(30));
        let s = sim.agent_as::<TcpSender>(sender);
        assert!(s.timeouts() >= 3, "timeouts {}", s.timeouts());
        assert!(!s.finished());
    }

    #[test]
    fn rwnd_caps_inflight() {
        // A tiny receive window on a long-delay link caps throughput at
        // rwnd/RTT regardless of capacity — §6's buffer story in
        // single-path form.
        let mut sim = Simulator::new(3);
        let sender = sim.add_node(Box::new(TcpSender::new(TcpConfig {
            flow: 1,
            cc: CcAlgorithm::Cubic,
            rwnd_packets: 10,
            data_link: LinkId(0),
            limit_packets: None,
        })));
        let receiver = sim.add_node(Box::new(TcpReceiver::new(1, LinkId(1))));
        sim.add_link(
            Box::new(ConstPipe::new(
                1000.0,
                SimTime::from_millis(50),
                0.0,
                1 << 24,
            )),
            receiver,
        );
        sim.add_link(
            Box::new(ConstPipe::new(
                1000.0,
                SimTime::from_millis(50),
                0.0,
                1 << 24,
            )),
            sender,
        );
        sim.with_agent(sender, |a, ctx| {
            a.as_any_mut()
                .downcast_mut::<TcpSender>()
                .unwrap()
                .start(ctx)
        });
        sim.run_until(SimTime::from_secs(10));
        let goodput = sim
            .agent_as::<TcpReceiver>(receiver)
            .meter
            .mean_mbps_over(SimTime::from_secs(10));
        // 10 pkts × 1500 B / 100 ms RTT = 1.2 Mbps.
        assert!(
            (0.8..1.6).contains(&goodput),
            "rwnd-capped goodput {goodput} Mbps"
        );
    }

    struct NullAgent;
    impl Agent for NullAgent {
        fn on_packet(&mut self, _: &mut Context, _: LinkId, _: Packet) {}
        fn on_timer(&mut self, _: &mut Context, _: u64) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
}
