//! Per-second throughput accounting.

use leo_netsim::SimTime;
use serde::{Deserialize, Serialize};

/// Buckets delivered bytes into one-second bins — the shape iPerf reports
/// and the shape the paper's throughput traces (Figures 1, 11) use.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThroughputMeter {
    bytes_per_sec: Vec<u64>,
    total_bytes: u64,
    last_at_ns: u64,
}

impl ThroughputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` delivered at `at`.
    ///
    /// Delivery timestamps must be non-decreasing — agents record at the
    /// simulator clock, which never runs backwards. Under
    /// `LEO_CONFORMANCE=1` a regression panics; otherwise it is only
    /// debug-asserted.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        let ns = at.as_nanos();
        if ns < self.last_at_ns {
            debug_assert!(false, "throughput recorded at a rewound clock");
            if leo_netsim::strict_checks() {
                panic!(
                    "throughput recorded at {} ns after {} ns: sim clock went backwards",
                    ns, self.last_at_ns
                );
            }
        }
        self.last_at_ns = self.last_at_ns.max(ns);
        let sec = (ns / 1_000_000_000) as usize;
        if self.bytes_per_sec.len() <= sec {
            self.bytes_per_sec.resize(sec + 1, 0);
        }
        self.bytes_per_sec[sec] += bytes;
        self.total_bytes += bytes;
    }

    /// Total delivered bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Per-second throughput in Mbps, one entry per elapsed second.
    pub fn series_mbps(&self) -> Vec<f64> {
        self.bytes_per_sec
            .iter()
            .map(|&b| b as f64 * 8.0 / 1e6)
            .collect()
    }

    /// Mean throughput over `duration`, Mbps.
    pub fn mean_mbps_over(&self, duration: SimTime) -> f64 {
        let secs = duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_bytes as f64 * 8.0 / 1e6 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_second() {
        let mut m = ThroughputMeter::new();
        m.record(SimTime::from_millis(100), 1_000_000);
        m.record(SimTime::from_millis(900), 500_000);
        m.record(SimTime::from_millis(1100), 250_000);
        let series = m.series_mbps();
        assert_eq!(series.len(), 2);
        assert!((series[0] - 12.0).abs() < 1e-9);
        assert!((series[1] - 2.0).abs() < 1e-9);
        assert_eq!(m.total_bytes(), 1_750_000);
    }

    #[test]
    fn mean_over_duration() {
        let mut m = ThroughputMeter::new();
        m.record(SimTime::from_millis(500), 5_000_000);
        assert!((m.mean_mbps_over(SimTime::from_secs(4)) - 10.0).abs() < 1e-9);
        assert_eq!(m.mean_mbps_over(SimTime::ZERO), 0.0);
    }

    #[test]
    fn empty_meter() {
        let m = ThroughputMeter::new();
        assert!(m.series_mbps().is_empty());
        assert_eq!(m.total_bytes(), 0);
    }
}
