//! UDP blast: the iPerf-UDP equivalent.
//!
//! §4.1 uses UDP transfers to probe the *available bandwidth* of each
//! network, free of congestion-control effects. [`UdpBlaster`] paces
//! MTU-sized datagrams at a configured rate; [`UdpSink`] counts what
//! survives the pipe, yielding delivered throughput and loss.

use crate::throughput::ThroughputMeter;
use leo_netsim::{Agent, Context, LinkId, Packet, SimTime};

/// Constant-rate UDP sender.
pub struct UdpBlaster {
    flow: u32,
    out: LinkId,
    /// Inter-packet gap for the configured rate.
    gap: SimTime,
    /// Stop time (sender-side).
    until: SimTime,
    pub packets_sent: u64,
    next_seq: u64,
    started: bool,
}

impl UdpBlaster {
    /// Blasts at `rate_mbps` until `until` (simulated time).
    pub fn new(flow: u32, out: LinkId, rate_mbps: f64, until: SimTime) -> Self {
        let pps = (rate_mbps.max(0.001) * 1e6 / 8.0) / 1500.0;
        Self {
            flow,
            out,
            gap: SimTime::from_secs_f64(1.0 / pps),
            until,
            packets_sent: 0,
            next_seq: 0,
            started: false,
        }
    }

    /// Starts the blast.
    pub fn start(&mut self, ctx: &mut Context) {
        if !self.started {
            self.started = true;
            self.tick(ctx);
        }
    }

    fn tick(&mut self, ctx: &mut Context) {
        if ctx.now() >= self.until {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        ctx.send(self.out, Packet::data(seq, self.flow, seq, ctx.now()));
        self.packets_sent += 1;
        ctx.set_timer(self.gap, 0);
    }
}

impl Agent for UdpBlaster {
    fn on_packet(&mut self, _ctx: &mut Context, _link: LinkId, _packet: Packet) {}

    fn on_timer(&mut self, ctx: &mut Context, _timer_id: u64) {
        self.tick(ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Counting UDP receiver.
pub struct UdpSink {
    flow: u32,
    pub meter: ThroughputMeter,
    pub packets_received: u64,
    /// Highest sequence seen, for loss estimation.
    pub max_seq_seen: u64,
}

impl UdpSink {
    /// Creates a sink for `flow`.
    pub fn new(flow: u32) -> Self {
        Self {
            flow,
            meter: ThroughputMeter::new(),
            packets_received: 0,
            max_seq_seen: 0,
        }
    }

    /// Loss rate inferred from sequence gaps.
    pub fn loss_rate(&self) -> f64 {
        let expected = self.max_seq_seen + 1;
        if self.packets_received == 0 {
            return 0.0;
        }
        1.0 - self.packets_received as f64 / expected as f64
    }
}

impl Agent for UdpSink {
    fn on_packet(&mut self, ctx: &mut Context, _link: LinkId, packet: Packet) {
        if packet.flow != self.flow {
            return;
        }
        self.packets_received += 1;
        self.max_seq_seen = self.max_seq_seen.max(packet.seq);
        self.meter.record(ctx.now(), packet.size_bytes as u64);
    }

    fn on_timer(&mut self, _ctx: &mut Context, _timer_id: u64) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_netsim::{ConstPipe, Simulator};

    fn run_udp(blast_mbps: f64, pipe_mbps: f64, loss: f64, secs: u64) -> (f64, f64) {
        let mut sim = Simulator::new(11);
        let sink = sim.add_node(Box::new(UdpSink::new(1)));
        let blaster = sim.add_node(Box::new(UdpBlaster::new(
            1,
            LinkId(0),
            blast_mbps,
            SimTime::from_secs(secs),
        )));
        sim.add_link(
            Box::new(ConstPipe::new(
                pipe_mbps,
                SimTime::from_millis(25),
                loss,
                90_000,
            )),
            sink,
        );
        sim.with_agent(blaster, |a, ctx| {
            a.as_any_mut()
                .downcast_mut::<UdpBlaster>()
                .unwrap()
                .start(ctx)
        });
        sim.run_until(SimTime::from_secs(secs + 1));
        let s = sim.agent_as::<UdpSink>(sink);
        (
            s.meter.mean_mbps_over(SimTime::from_secs(secs)),
            s.loss_rate(),
        )
    }

    #[test]
    fn undersubscribed_blast_passes_through() {
        let (mbps, loss) = run_udp(20.0, 100.0, 0.0, 5);
        assert!((mbps - 20.0).abs() < 1.0, "delivered {mbps}");
        assert!(loss < 0.01);
    }

    #[test]
    fn oversubscribed_blast_measures_capacity() {
        // Blast 120 Mbps through a 50 Mbps pipe: the sink sees ~50.
        let (mbps, loss) = run_udp(120.0, 50.0, 0.0, 5);
        assert!((mbps - 50.0).abs() < 3.0, "delivered {mbps}");
        assert!(loss > 0.4, "queue drops should show as loss: {loss}");
    }

    #[test]
    fn channel_loss_shows_up() {
        let (mbps, loss) = run_udp(20.0, 100.0, 0.10, 5);
        assert!((0.07..0.13).contains(&loss), "loss {loss}");
        assert!(mbps < 20.0);
    }
}
