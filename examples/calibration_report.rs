//! Calibration report: every paper anchor next to its measured value.
//!
//! Prints the table that `EXPERIMENTS.md` summarises — useful after
//! touching any world-model constant to see at a glance what moved.
//!
//! ```sh
//! cargo run --release --example calibration_report -- --scale 0.3
//! ```

use leo_cell::analysis::stats::mean;
use leo_cell::core::{campaign, fig10, fig3, fig4, fig5, fig7, fig8, fig9};
use leo_cell::geo::area::AreaType;

struct Row {
    metric: &'static str,
    paper: String,
    measured: String,
    ok: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15_f64)
        .clamp(0.01, 1.0);
    eprintln!("Generating campaign at scale {scale}…");
    let c = campaign(scale, 42);

    let mut rows: Vec<Row> = Vec::new();
    let mut row = |metric: &'static str, paper: String, measured: String, ok: bool| {
        rows.push(Row {
            metric,
            paper,
            measured,
            ok,
        });
    };

    // Figure 3 anchors.
    let d3 = fig3::run(&c);
    let get3 = |sets: &[fig3::LabelledSamples], l: &str| {
        sets.iter()
            .find(|s| s.label == l)
            .and_then(|s| mean(&s.mbps))
            .unwrap_or(0.0)
    };
    let mob_udp = get3(&d3.tcp_vs_udp, "MOB-UDP");
    let mob_tcp = get3(&d3.tcp_vs_udp, "MOB-TCP");
    let rm_udp = get3(&d3.roam_vs_mobility, "RM");
    let up = get3(&d3.up_vs_down, "Uplink");
    row(
        "MOB UDP down mean (Mbps)",
        "128".into(),
        format!("{mob_udp:.0}"),
        (90.0..210.0).contains(&mob_udp),
    );
    row(
        "MOB UDP/TCP ratio",
        "≈5x".into(),
        format!("{:.1}x", mob_udp / mob_tcp.max(1e-9)),
        (2.5..9.0).contains(&(mob_udp / mob_tcp.max(1e-9))),
    );
    row(
        "RM UDP down mean (Mbps)",
        "63".into(),
        format!("{rm_udp:.0}"),
        (35.0..110.0).contains(&rm_udp),
    );
    row(
        "MOB/RM ratio",
        "≈2x".into(),
        format!("{:.1}x", mob_udp / rm_udp.max(1e-9)),
        (1.4..3.5).contains(&(mob_udp / rm_udp.max(1e-9))),
    );
    row(
        "down/up ratio (MOB)",
        "≈10x".into(),
        format!("{:.1}x", mob_udp / up.max(1e-9)),
        (6.0..16.0).contains(&(mob_udp / up.max(1e-9))),
    );

    // Figure 4 anchors.
    let d4 = fig4::run(&c);
    let rtt = |l: &str| fig4::mean_rtt(&d4, l).unwrap_or(f64::NAN);
    row(
        "RTT ordering",
        "VZ≈TM < MOB,RM < ATT".into(),
        format!(
            "VZ {:.0}, TM {:.0}, MOB {:.0}, RM {:.0}, ATT {:.0} ms",
            rtt("VZ"),
            rtt("TM"),
            rtt("MOB"),
            rtt("RM"),
            rtt("ATT")
        ),
        rtt("VZ").min(rtt("TM")) < rtt("MOB") && rtt("ATT") > rtt("MOB"),
    );

    // Figure 5 anchors.
    let d5 = fig5::run(&c);
    let retr = |l: &str| {
        d5.rows
            .iter()
            .find(|(rl, ..)| rl == l)
            .map(|(_, _, down)| *down)
            .unwrap_or(0.0)
    };
    row(
        "Starlink retransmissions (down)",
        "0.3–1.3 %".into(),
        format!("RM {:.1}%, MOB {:.1}%", retr("RM"), retr("MOB")),
        retr("MOB") > 5.0 * retr("VZ").max(0.01),
    );

    // Figure 7 anchors.
    let d7 = fig7::run(&c);
    let (rm4, rm8) = d7
        .rows
        .iter()
        .find(|(l, ..)| l == "Roam")
        .map(|(_, a, b)| (*a, *b))
        .unwrap_or((0.0, 0.0));
    row(
        "Roam parallelism gain 4P/8P",
        ">+50 % / >+130 %".into(),
        format!("+{rm4:.0}% / +{rm8:.0}%"),
        rm4 > 40.0 && rm8 >= rm4,
    );

    // Figure 8 anchors.
    let d8 = fig8::run(&c);
    let g8 = |l: &str, a: AreaType| fig8::group_mean(&d8, l, a).unwrap_or(0.0);
    row(
        "area crossover",
        "cellular wins urban; Starlink wins suburban+rural".into(),
        format!(
            "urban {:.0}/{:.0}, rural {:.0}/{:.0} (cell/MOB)",
            g8("Cellular", AreaType::Urban),
            g8("MOB", AreaType::Urban),
            g8("Cellular", AreaType::Rural),
            g8("MOB", AreaType::Rural)
        ),
        g8("Cellular", AreaType::Urban) > g8("MOB", AreaType::Urban)
            && g8("MOB", AreaType::Rural) > g8("Cellular", AreaType::Rural),
    );

    // Figure 9 anchors.
    let d9 = fig9::run(&c);
    let high = |l: &str| fig9::high_share(&d9, l).unwrap_or(0.0) * 100.0;
    row(
        "MOB high-coverage share",
        "60.61 %".into(),
        format!("{:.0}%", high("MOB")),
        (35.0..80.0).contains(&high("MOB")),
    );
    row(
        "VZ / TM high share",
        "44.39 / 42.47 %".into(),
        format!("{:.0}% / {:.0}%", high("VZ"), high("TM")),
        high("VZ") > 20.0 && high("TM") > 20.0,
    );

    // Figure 10 anchors (packet-level, small windows to stay fast).
    let d10 = fig10::run(
        &c,
        fig10::Fig10Params {
            windows: 3,
            window_s: 90,
            seed: 42,
        },
    );
    for (label, u) in &d10.utilisation {
        let anchors = if label == "MOB+ATT" { "81 %" } else { "84 %" };
        row(
            if label == "MOB+ATT" {
                "MPTCP utilisation MOB+ATT"
            } else {
                "MPTCP utilisation MOB+VZ"
            },
            anchors.into(),
            format!("{:.0}%", u * 100.0),
            (0.4..1.01).contains(u),
        );
    }
    for (label, imp) in &d10.improvement_over_better {
        let anchors = if label == "MOB+ATT" { "+30 %" } else { "+66 %" };
        row(
            if label == "MOB+ATT" {
                "MPTCP gain over better path (ATT pair)"
            } else {
                "MPTCP gain over better path (VZ pair)"
            },
            anchors.into(),
            format!("{imp:+.0}%"),
            *imp > 0.0,
        );
    }

    println!("\n{:<42} {:<28} {:<36} ok", "metric", "paper", "measured");
    println!("{}", "-".repeat(112));
    let mut all_ok = true;
    for r in &rows {
        println!(
            "{:<42} {:<28} {:<36} {}",
            r.metric,
            r.paper,
            r.measured,
            if r.ok { "✔" } else { "✘" }
        );
        all_ok &= r.ok;
    }
    println!("{}", "-".repeat(112));
    println!(
        "{}",
        if all_ok {
            "All calibration anchors hold."
        } else {
            "Some anchors are out of band — see rows marked ✘."
        }
    );
}
