//! Conformance driver: golden-digest checking, blessing, and the seeded
//! schedule fuzzer — the same entry points CI uses.
//!
//! ```text
//! cargo run --release --example conformance               # check goldens + invariants
//! cargo run --release --example conformance -- --bless    # regenerate tests/goldens/
//! cargo run --release --example conformance -- --fuzz --cases 500 --seed 7
//! cargo run --release --example conformance -- --case-seed 0xdeadbeef
//! ```
//!
//! `--case-seed` replays exactly one fuzzer case: it is the reproduction
//! command a fuzz failure prints, so a CI finding replays locally in
//! milliseconds.

use leo_cell::conformance::fuzz::{self, FuzzConfig};
use leo_cell::conformance::goldens;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| parse_u64(v).unwrap_or_else(|| die(&format!("bad value for {name}: {v}"))))
    };

    if flag("--help") || flag("-h") {
        println!(
            "usage: conformance [--bless] [--fuzz [--cases N] [--seed S]] [--case-seed 0xS]\n\
             default: verify the committed golden digests and run the invariant suite"
        );
        return ExitCode::SUCCESS;
    }

    if let Some(seed) = value("--case-seed") {
        println!("replaying fuzz case {seed:#018x} ...");
        let report = fuzz::run_case(seed);
        println!(
            "case held every invariant: {} offers, {} delivered, transport={}",
            report.offers, report.delivered, report.transport
        );
        return ExitCode::SUCCESS;
    }

    if flag("--fuzz") {
        let cfg = FuzzConfig {
            cases: value("--cases").unwrap_or(500),
            seed: value("--seed").unwrap_or(7),
        };
        println!(
            "fuzzing {} cases from master seed {:#x} ...",
            cfg.cases, cfg.seed
        );
        let summary = fuzz::run(&cfg);
        println!("{summary}");
        return ExitCode::SUCCESS;
    }

    if flag("--bless") {
        let digests = goldens::compute_digests();
        let path = goldens::golden_path();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create goldens directory");
        }
        std::fs::write(&path, goldens::render(&digests)).expect("write golden file");
        println!("blessed {} digests into {}", digests.len(), path.display());
        return ExitCode::SUCCESS;
    }

    // Default: the full conformance check.
    let violations = goldens::check_invariants();
    if !violations.is_empty() {
        eprintln!("{} invariant violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }
    println!("invariant suite clean over the canonical campaign and scenario sweep");

    let golden_text = match std::fs::read_to_string(goldens::golden_path()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "cannot read {} ({e}); generate it with --bless",
                goldens::golden_path().display()
            );
            return ExitCode::FAILURE;
        }
    };
    match goldens::compare(&goldens::compute_digests(), &golden_text) {
        Ok(n) => {
            println!("{n} golden digests match");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        s.replace('_', "").parse().ok()
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
