//! Coverage study (§5), interactive form: drives the corridor and prints
//! a geographic strip-map of which network is fastest along the way, plus
//! the Figure 9 coverage table.
//!
//! ```sh
//! cargo run --release --example coverage_map -- --scale 0.15
//! ```

use leo_cell::analysis::coverage::CoverageLevel;
use leo_cell::core::{campaign, fig9};
use leo_cell::dataset::record::NetworkId;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1_f64)
        .clamp(0.005, 1.0);

    let c = campaign(scale, 5);
    println!("{}\n", c.summary().render());

    // Strip map: one character per km of drive — which network delivers
    // the most at that point, or '.' when everything is very low.
    println!("Winner strip-map (M=Mobility, R=Roam, a=ATT, t=TM, v=VZ, .=all <20 Mbps):");
    let nets = [
        (NetworkId::Mobility, 'M'),
        (NetworkId::Roam, 'R'),
        (NetworkId::Att, 'a'),
        (NetworkId::TMobile, 't'),
        (NetworkId::Verizon, 'v'),
    ];
    let mut strip = String::new();
    let mut last_km = -1i64;
    for (i, s) in c.samples.iter().enumerate() {
        let km = s.travelled_km.floor() as i64;
        if km == last_km {
            continue;
        }
        last_km = km;
        let mut best = ('.', 20.0);
        for (n, ch) in nets {
            let cap = c.traces[&n]
                .0
                .at(i as u64)
                .map(|cond| cond.capacity_mbps * (1.0 - cond.loss))
                .unwrap_or(0.0);
            if cap > best.1 {
                best = (ch, cap);
            }
        }
        strip.push(best.0);
        if strip.len().is_multiple_of(100) {
            strip.push('\n');
        }
    }
    println!("{strip}\n");

    // The Figure 9 table.
    let data = fig9::run(&c);
    println!("{}", fig9::render(&data));
    println!("(paper anchors: MOB high 60.61%, VZ 44.39%, TM 42.47%; ATT low+very-low 53.45%)");

    // Level legend.
    println!("\nLevels:");
    for level in CoverageLevel::ALL {
        println!(
            "  {:<9} {}",
            level.label(),
            match level {
                CoverageLevel::VeryLow => "< 20 Mbps",
                CoverageLevel::Low => "20–50 Mbps",
                CoverageLevel::Medium => "50–100 Mbps",
                CoverageLevel::High => "> 100 Mbps",
            }
        );
    }
}
