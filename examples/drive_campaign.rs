//! Generates a driving campaign and exports the dataset — the §3.3
//! "data collection" pipeline end to end.
//!
//! Writes `campaign.csv` and `campaign.json` into the current directory
//! and prints the dataset summary plus a per-area, per-network breakdown.
//!
//! ```sh
//! cargo run --release --example drive_campaign -- --scale 0.2
//!
//! # With an observability run report (per-stage timings, sim counters):
//! cargo run --release --example drive_campaign -- --metrics-json metrics.json
//! ```

use leo_cell::dataset::campaign::{Campaign, CampaignConfig};
use leo_cell::dataset::io;
use leo_cell::dataset::record::{NetworkId, TestKind};
use leo_cell::geo::area::AreaType;
use leo_cell::link::condition::Direction;
use std::fs::File;
use std::io::{BufWriter, Write};

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let arg_value = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let scale = arg_value("--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1_f64)
        .clamp(0.005, 1.0);
    let metrics_json = arg_value("--metrics-json");
    if metrics_json.is_some() {
        // Force the gate on before the first `enabled()` read caches it.
        std::env::set_var("LEO_OBS", "1");
    }

    eprintln!("Driving the five-state tour at scale {scale}…");
    let campaign = Campaign::generate(CampaignConfig {
        scale,
        ..CampaignConfig::default()
    });
    let summary = campaign.summary();
    println!("{}", summary.render());
    println!("(paper: 1,239 tests, 9,083 trace minutes, >3,800 km, areas 29.78/34.30/35.91%)\n");

    // Export.
    let csv = File::create("campaign.csv")?;
    io::write_csv(BufWriter::new(csv), &campaign.records)?;
    let mut json = BufWriter::new(File::create("campaign.json")?);
    json.write_all(
        io::to_json(&campaign.records)
            .expect("records serialise")
            .as_bytes(),
    )?;
    println!(
        "Exported {} records to campaign.csv and campaign.json",
        campaign.records.len()
    );

    // Mahimahi traces: the same files the paper fed to MpShell.
    std::fs::create_dir_all("traces")?;
    let mahi = io::export_mahimahi(&campaign);
    for (name, text) in &mahi {
        std::fs::write(format!("traces/{name}"), text)?;
    }
    println!("Exported {} Mahimahi traces to traces/*.mahi\n", mahi.len());

    // Per-area, per-network mean UDP downlink throughput (the Figure 8
    // aggregate, as a table).
    println!("Mean UDP downlink Mbps by area type:");
    print!("{:>6}", "");
    for n in NetworkId::ALL {
        print!("{:>8}", n.label());
    }
    println!();
    for area in AreaType::ALL {
        print!("{:>6}", area.label());
        for n in NetworkId::ALL {
            let v: Vec<f64> = campaign
                .records_where(|r| {
                    r.network == n
                        && r.kind == TestKind::Udp
                        && r.direction == Direction::Down
                        && r.area == area
                })
                .iter()
                .map(|r| r.mean_mbps)
                .collect();
            match leo_cell::analysis::stats::mean(&v) {
                Some(m) => print!("{m:>8.1}"),
                None => print!("{:>8}", "-"),
            }
        }
        println!();
    }

    if let Some(path) = metrics_json {
        let json = leo_cell::obs::snapshot().to_json();
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(&path, &json)?;
            eprintln!("Wrote obs run report to {path}");
        }
    }
    Ok(())
}
