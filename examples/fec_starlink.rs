//! Quantifies the paper's FEC suggestion: §1 notes Starlink's packet loss
//! "calls for better congestion control or Forward Error Correction (FEC)
//! algorithms tailored for such characteristics."
//!
//! This example streams UDP at a fixed rate over a Starlink-like link
//! (random + bursty loss), with and without XOR-parity FEC at several
//! group sizes, and reports effective delivery and overhead.
//!
//! ```sh
//! cargo run --release --example fec_starlink
//! ```

use leo_cell::link::mahimahi::MahimahiTrace;
use leo_cell::netsim::{ConstPipe, LinkId, SimTime, Simulator, TracePipe};
use leo_cell::transport::fec::{FecBlaster, FecSink};

/// One run: returns (effective delivery %, raw delivery %, overhead %).
fn run(group_size: u64, bursty: bool, secs: u64) -> (f64, f64, f64) {
    let mut sim = Simulator::new(17);
    let sink = sim.add_node(Box::new(FecSink::new(1, group_size)));
    let blaster = sim.add_node(Box::new(FecBlaster::new(
        1,
        LinkId(0),
        30.0,
        group_size,
        SimTime::from_secs(secs),
    )));
    if bursty {
        // Starlink-like: 0.4% base loss with a 30% loss second every 15 s
        // (the obstruction/handover bursts behind Figure 5).
        let losses: Vec<f64> = (0..secs)
            .map(|t| if t % 15 == 0 { 0.30 } else { 0.004 })
            .collect();
        let trace = MahimahiTrace::from_capacity_series(&vec![100.0; secs as usize]);
        sim.add_link(
            Box::new(
                TracePipe::new(trace, SimTime::from_millis(30), 1 << 20).with_loss_series(losses),
            ),
            sink,
        );
    } else {
        // The same average loss, spread i.i.d.
        sim.add_link(
            Box::new(ConstPipe::new(
                100.0,
                SimTime::from_millis(30),
                0.024,
                1 << 20,
            )),
            sink,
        );
    }
    sim.with_agent(blaster, |a, ctx| {
        a.as_any_mut()
            .downcast_mut::<FecBlaster>()
            .expect("blaster")
            .start(ctx)
    });
    sim.run_until(SimTime::from_secs(secs + 1));
    let s = sim.agent_as::<FecSink>(sink);
    let raw = s.data_received as f64 / (s.max_seq_seen + 1) as f64;
    let overhead = 100.0 / group_size as f64;
    (s.effective_delivery_rate() * 100.0, raw * 100.0, overhead)
}

fn main() {
    println!("FEC over a Starlink-like lossy link (30 Mbps stream, 60 s)\n");
    for (label, bursty) in [
        ("i.i.d. loss (2.4%)", false),
        ("bursty loss (same average)", true),
    ] {
        println!("{label}:");
        println!(
            "  {:<12} {:>10} {:>10} {:>10}",
            "group size", "raw %", "FEC %", "overhead"
        );
        for k in [4u64, 8, 16, 32] {
            let (eff, raw, ovh) = run(k, bursty, 60);
            println!("  k = {k:<8} {raw:>9.2}% {eff:>9.2}% {ovh:>9.1}%");
        }
        println!();
    }
    println!("Reading: XOR parity nearly eliminates i.i.d. loss at modest overhead,");
    println!("but bursty (obstruction-driven) loss defeats single-parity groups —");
    println!("the paper's call for *tailored* FEC is exactly about this gap.");
}
