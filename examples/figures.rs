//! Regenerates every figure of the paper and prints the terminal
//! renderings — the reproduction's main deliverable.
//!
//! ```sh
//! # Fast pass (5% campaign, seconds):
//! cargo run --release --example figures
//!
//! # Paper-scale pass (full 3,800 km campaign, several minutes):
//! cargo run --release --example figures -- --scale 1.0
//!
//! # One figure only:
//! cargo run --release --example figures -- --only fig9
//! ```

use leo_cell::core::{all_figures, campaign};
use leo_cell::dataset::campaign::campaign_threads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05_f64)
        .clamp(0.005, 1.0);
    let seed = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let only = arg_value(&args, "--only");
    let metrics_json = arg_value(&args, "--metrics-json");
    if metrics_json.is_some() {
        // Force the gate on before the first `enabled()` read caches it.
        std::env::set_var("LEO_OBS", "1");
    }

    eprintln!("Generating campaign at scale {scale} (seed {seed})…");
    let start = std::time::Instant::now();
    let c = campaign(scale, seed);
    eprintln!(
        "Campaign ready in {:.1?}: {}\n",
        start.elapsed(),
        c.summary().render()
    );

    // Render every selected figure concurrently (each reads the shared
    // campaign immutably), then print in the paper's figure order. The
    // scenario sweep rides along as a pseudo-figure after the paper's.
    let figures: Vec<_> = all_figures()
        .into_iter()
        .chain(std::iter::once(leo_cell::scenario::figure_entry()))
        .filter(|fig| only.as_ref().is_none_or(|id| fig.id == id))
        .collect();
    let workers = campaign_threads().min(figures.len().max(1));
    let rendered: Vec<(String, std::time::Duration)> = crossbeam::thread::scope(|s| {
        let c = &c;
        let figures = &figures;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move |_| {
                    figures
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, fig)| {
                            let t = std::time::Instant::now();
                            (i, ((fig.render)(c), t.elapsed()))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut out: Vec<Option<(String, std::time::Duration)>> = vec![None; figures.len()];
        for h in handles {
            for (i, r) in h.join().expect("figure renderer panicked") {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("figure rendered"))
            .collect()
    })
    .expect("figure scope panicked");

    for (fig, (out, took)) in figures.iter().zip(rendered) {
        println!("{}", "=".repeat(78));
        println!("{} — {}\n", fig.id, fig.title);
        println!("{out}");
        eprintln!("[{} rendered in {took:.1?}]\n", fig.id);
    }

    if let Some(path) = metrics_json {
        let obs_json = leo_cell::obs::snapshot().to_json();
        if path == "-" {
            println!("{obs_json}");
        } else {
            std::fs::write(&path, &obs_json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("Wrote obs run report to {path}");
        }
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
