//! Regenerates every figure of the paper and prints the terminal
//! renderings — the reproduction's main deliverable.
//!
//! ```sh
//! # Fast pass (5% campaign, seconds):
//! cargo run --release --example figures
//!
//! # Paper-scale pass (full 3,800 km campaign, several minutes):
//! cargo run --release --example figures -- --scale 1.0
//!
//! # One figure only:
//! cargo run --release --example figures -- --only fig9
//! ```

use leo_cell::core::{all_figures, campaign};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05_f64)
        .clamp(0.005, 1.0);
    let seed = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let only = arg_value(&args, "--only");

    eprintln!("Generating campaign at scale {scale} (seed {seed})…");
    let start = std::time::Instant::now();
    let c = campaign(scale, seed);
    eprintln!(
        "Campaign ready in {:.1?}: {}\n",
        start.elapsed(),
        c.summary().render()
    );

    for fig in all_figures() {
        if let Some(ref id) = only {
            if fig.id != id {
                continue;
            }
        }
        let t = std::time::Instant::now();
        let out = (fig.render)(&c);
        println!("{}", "=".repeat(78));
        println!("{} — {}\n", fig.id, fig.title);
        println!("{out}");
        eprintln!("[{} rendered in {:.1?}]\n", fig.id, t.elapsed());
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
