//! The §6 experiment, standalone: replay aligned Starlink + cellular
//! traces through the MpShell-style emulator and compare single-path TCP
//! against MPTCP under every scheduler and both buffer regimes.
//!
//! ```sh
//! cargo run --release --example mptcp_emulation -- --window 300
//! ```

use leo_cell::core::campaign;
use leo_cell::core::mptcp_emu::{buffer_packets, run_mptcp, run_single_path, BufferTuning};
use leo_cell::dataset::record::NetworkId;
use leo_cell::transport::mptcp::SchedulerKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let window: u64 = args
        .iter()
        .position(|a| a == "--window")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);

    eprintln!("Generating campaign traces…");
    let c = campaign(0.08, 7);
    let timeline = c.samples.len() as u64;
    let t0 = (timeline / 3).min(timeline.saturating_sub(window));
    let t1 = t0 + window.min(timeline);

    let mob = c.traces[&NetworkId::Mobility].0.window(t0, t1);
    let att = c.traces[&NetworkId::Att].0.window(t0, t1);
    let vz = c.traces[&NetworkId::Verizon].0.window(t0, t1);

    println!("Replay window: {window}s starting at t={t0}s of the drive");
    for (label, t) in [("MOB", &mob), ("ATT", &att), ("VZ", &vz)] {
        let s = t.stats().expect("non-empty window");
        println!(
            "  {label:<4} capacity mean {:>6.1} Mbps, RTT {:>5.1} ms, loss {:.3}%",
            s.mean_mbps,
            s.mean_rtt_ms,
            s.mean_loss * 100.0
        );
    }

    println!("\nSingle-path TCP downloads:");
    let s_mob = run_single_path(&mob, 1).mean_mbps;
    let s_att = run_single_path(&att, 1).mean_mbps;
    let s_vz = run_single_path(&vz, 1).mean_mbps;
    println!("  MOB {s_mob:>6.1} Mbps   ATT {s_att:>6.1} Mbps   VZ {s_vz:>6.1} Mbps");

    for (cell_label, cell, single_cell) in [("ATT", &att, s_att), ("VZ", &vz, s_vz)] {
        println!("\nMPTCP MOB+{cell_label}:");
        println!(
            "  buffers: default {} pkts, tuned {} pkts",
            buffer_packets(BufferTuning::Default, &mob, cell),
            buffer_packets(BufferTuning::Tuned, &mob, cell)
        );
        for sched in SchedulerKind::ALL {
            let tuned = run_mptcp(&mob, cell, sched, BufferTuning::Tuned, 1).mean_mbps;
            let untuned = run_mptcp(&mob, cell, sched, BufferTuning::Default, 1).mean_mbps;
            let better = s_mob.max(single_cell);
            println!(
                "  {:<10} tuned {tuned:>6.1} Mbps ({:+.0}% vs better path)   untuned {untuned:>6.1} Mbps ({:+.0}%)",
                sched.label(),
                (tuned - better) / better.max(1e-9) * 100.0,
                (untuned - better) / better.max(1e-9) * 100.0,
            );
        }
    }
    println!("\n(paper: tuned MPTCP improved over the better path by 30% and 66%;");
    println!(" with default buffers the gains were marginal)");
}
