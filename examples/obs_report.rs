//! Exercises every instrumented subsystem under `LEO_OBS=1` and emits
//! the JSON run report — the observability layer's demo *and* its smoke
//! test: the example exits non-zero unless every required metric family
//! actually recorded something.
//!
//! ```sh
//! # Print the run report to stdout:
//! cargo run --release --example obs_report
//!
//! # Bigger campaign, report to a file:
//! cargo run --release --example obs_report -- --scale 0.02 --out obs.json
//! ```
//!
//! The report covers, in one process:
//! * campaign generation — per-stage wall clock (drive / area / trace /
//!   tests), per-network trace timings, per-worker busy time;
//! * the orbit fast path — searcher rebuild/reuse counts and the plane
//!   pruning survivor ratio;
//! * the packet emulator — per-cause drop counters and the queue
//!   high-water mark, flushed once per finished simulation;
//! * the §6 MPTCP harness — per-subflow packets/retransmissions/bytes,
//!   SRTT samples, scheduler usage (driven here through a faulted run so
//!   `netsim.drop.fault` is exercised too);
//! * the scenario engine — sweep and per-scenario wall clock, worker
//!   utilisation.

use leo_cell::core::mptcp_emu::{run_mptcp_faulted, BufferTuning};
use leo_cell::dataset::campaign::{Campaign, CampaignConfig};
use leo_cell::dataset::record::NetworkId;
use leo_cell::netsim::FaultSchedule;
use leo_cell::obs;
use leo_cell::scenario::{builtin, ScenarioRunner, BASELINE};
use leo_cell::transport::mptcp::SchedulerKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_value = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let scale = arg_value("--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01_f64)
        .clamp(0.005, 1.0);
    let out = arg_value("--out");

    // Force the gate on before the first `enabled()` read caches it.
    std::env::set_var("LEO_OBS", "1");
    assert!(obs::enabled(), "LEO_OBS=1 must enable the obs registry");

    // 1. A campaign: stage spans, orbit fast-path counters, and (through
    //    its measurement sims) the netsim drop/queue counters. Two
    //    explicit workers so the per-worker spans record even on a
    //    single-core box (the output is byte-identical regardless).
    eprintln!("[1/3] campaign at scale {scale}…");
    let campaign = Campaign::generate_with_threads(
        CampaignConfig {
            scale,
            seed: 0xcafe_2023,
            ..CampaignConfig::default()
        },
        2,
    );

    // 2. A deliberately faulted MPTCP download over two of its traces:
    //    per-subflow stats plus fault-caused drops.
    eprintln!("[2/3] faulted MPTCP emulation…");
    let (sat_down, _) = &campaign.traces[&NetworkId::Mobility];
    let (cell_down, _) = &campaign.traces[&NetworkId::Att];
    let secs = sat_down.duration_s();
    let faults =
        FaultSchedule::new()
            .outage_s(secs / 4, secs / 2)
            .loss_s(secs / 2, 3 * secs / 4, 0.2);
    let r = run_mptcp_faulted(
        sat_down,
        cell_down,
        SchedulerKind::MinRtt,
        BufferTuning::Tuned,
        7,
        &faults,
        &FaultSchedule::new(),
    );
    eprintln!("      faulted MPTCP mean: {:.1} Mbps", r.mean_mbps);

    // 3. A two-scenario sweep: runner spans and worker utilisation.
    eprintln!("[3/3] scenario sweep…");
    let base = CampaignConfig {
        scale,
        seed: 0x5eed,
        ..CampaignConfig::default()
    };
    let specs = vec![
        builtin(BASELINE).expect("baseline exists"),
        builtin("carrier-outage").expect("carrier-outage exists"),
    ];
    let _ = ScenarioRunner::new(base).with_threads(2).run(&specs);

    let report = obs::snapshot();

    // Self-verification: the report is only useful if the hot paths
    // really flowed through the instrumentation.
    let required_counters = [
        "campaign.generations",
        "orbit.searcher.queries",
        "orbit.searcher.rebuilds",
        "orbit.prune.planes_total",
        "orbit.prune.planes_survived",
        "netsim.sims",
        "netsim.packets.offered",
        "netsim.packets.delivered",
        "netsim.drop.fault",
        "mptcp.runs",
        "mptcp.subflow.0.packets_sent",
        "mptcp.subflow.1.packets_sent",
        "mptcp.subflow.0.bytes_delivered",
        "mptcp.scheduler.min_rtt.runs",
        "scenario.sweeps",
        "scenario.runs",
    ];
    let required_histograms = [
        "campaign.stage.drive_s",
        "campaign.stage.area_s",
        "campaign.stage.trace_s",
        "campaign.stage.tests_s",
        "campaign.worker.trace_s",
        "campaign.worker.tests_s",
        "orbit.prune.survivor_frac",
        "mptcp.subflow.srtt_ms",
        "scenario.sweep_s",
        "scenario.run_s",
        "scenario.worker.busy_s",
    ];
    let mut missing = Vec::new();
    for name in required_counters {
        if report.counter(name) == 0 {
            missing.push(format!("counter {name} is zero"));
        }
    }
    for name in required_histograms {
        match report.histogram(name) {
            None => missing.push(format!("histogram {name} is absent")),
            Some(h) if h.count == 0 => missing.push(format!("histogram {name} is empty")),
            Some(_) => {}
        }
    }
    // At least one drop cause beyond faults must have fired in the
    // campaign's measurement sims (queue drops are guaranteed by TCP
    // probing; random drops by the lossy cellular replay).
    if report.counter("netsim.drop.queue") + report.counter("netsim.drop.random") == 0 {
        missing.push("no queue/random drops recorded across the campaign".into());
    }
    // Stage timings must be real wall clock, not zeros.
    for name in ["campaign.stage.drive_s", "campaign.stage.trace_s"] {
        if report.histogram(name).is_none_or(|h| h.sum <= 0.0) {
            missing.push(format!("histogram {name} has zero total time"));
        }
    }

    let json = report.to_json();
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("Wrote obs run report to {path}");
        }
        None => println!("{json}"),
    }

    if !missing.is_empty() {
        eprintln!("obs_report: required metrics missing:");
        for m in &missing {
            eprintln!("  - {m}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "obs_report: all {} required metric families present.",
        required_counters.len() + required_histograms.len()
    );
}
