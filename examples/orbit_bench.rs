//! Orbit fast-path benchmark: naive scan vs. indexed fast path, plus the
//! end-to-end campaign-generation wall clock, emitting `BENCH_orbit.json`.
//!
//! This is the repo's perf-trajectory recorder for the orbit subsystem:
//! run it after touching `crates/orbit` and commit the refreshed JSON.
//!
//! ```sh
//! cargo run --release --example orbit_bench                 # full run
//! cargo run --release --example orbit_bench -- --quick      # CI smoke
//! cargo run --release --example orbit_bench -- --out /tmp/b.json
//! ```
//!
//! Every timed configuration is also cross-checked for exact equality
//! against the naive oracle, so a regression in correctness fails the run
//! rather than silently recording fast-but-wrong numbers.

use leo_cell::dataset::campaign::{Campaign, CampaignConfig};
use leo_cell::geo::point::GeoPoint;
use leo_cell::orbit::constellation::Constellation;
use leo_cell::orbit::fastpath::{visible_satellites_fast, PropagationTable, VisibilitySearcher};
use leo_cell::orbit::visibility::visible_satellites;
use std::fmt::Write as _;
use std::time::Instant;

/// Medians are robust to container-scheduler noise; each measurement is
/// the median of `reps` timings of a `queries`-query sweep.
fn median_us_per_query(reps: usize, queries: usize, mut sweep: impl FnMut(usize) -> usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            let mut sink = 0usize;
            for q in 0..queries {
                sink = sink.wrapping_add(sweep(q));
            }
            std::hint::black_box(sink);
            start.elapsed().as_secs_f64() * 1e6 / queries as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct VisibilityRow {
    name: &'static str,
    total_sats: u32,
    naive_us: f64,
    fast_oneshot_us: f64,
    fast_searcher_1hz_us: f64,
}

fn bench_visibility(
    name: &'static str,
    constellation: Constellation,
    reps: usize,
) -> VisibilityRow {
    let ground = GeoPoint::new(44.5, -93.3);
    let mask = 25.0;
    let queries = 64;
    let table = PropagationTable::new(&constellation);

    // Correctness cross-check before timing anything.
    let mut searcher = VisibilitySearcher::new(&constellation);
    for q in 0..queries {
        let t = q as f64;
        let oracle = visible_satellites(&constellation, &ground, t, mask);
        assert_eq!(oracle, visible_satellites_fast(&table, &ground, t, mask));
        assert_eq!(oracle, searcher.visible(&ground, t, mask));
    }

    let naive_us = median_us_per_query(reps, queries, |q| {
        visible_satellites(&constellation, &ground, q as f64 * 15.0, mask).len()
    });
    let fast_oneshot_us = median_us_per_query(reps, queries, |q| {
        visible_satellites_fast(&table, &ground, q as f64 * 15.0, mask).len()
    });
    let mut searcher = VisibilitySearcher::new(&constellation);
    let mut views = Vec::new();
    let mut t_base = 0.0;
    let fast_searcher_1hz_us = median_us_per_query(reps, queries, |q| {
        // Monotone 1 Hz time across reps: the coherent access pattern.
        if q == 0 {
            t_base += queries as f64;
        }
        searcher.visible_into(&ground, t_base + q as f64, mask, &mut views);
        views.len()
    });

    VisibilityRow {
        name,
        total_sats: constellation.total_sats(),
        naive_us,
        fast_oneshot_us,
        fast_searcher_1hz_us,
    }
}

fn bench_campaign(scale: f64, reps: usize) -> (f64, f64) {
    let config = || CampaignConfig {
        scale,
        seed: 7,
        ..Default::default()
    };
    // Warm one generation of each mode and verify the determinism
    // contract: the naive and fast orbit paths yield identical campaigns.
    std::env::set_var("LEO_ORBIT_NAIVE", "1");
    let naive_campaign = Campaign::generate(config());
    std::env::remove_var("LEO_ORBIT_NAIVE");
    let fast_campaign = Campaign::generate(config());
    assert_eq!(naive_campaign.traces, fast_campaign.traces);
    assert_eq!(naive_campaign.records, fast_campaign.records);

    let time_ms = |reps: usize| -> f64 {
        let mut times: Vec<f64> = (0..reps)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(Campaign::generate(config()));
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };

    std::env::set_var("LEO_ORBIT_NAIVE", "1");
    let naive_ms = time_ms(reps);
    std::env::remove_var("LEO_ORBIT_NAIVE");
    let fast_ms = time_ms(reps);
    (naive_ms, fast_ms)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_orbit.json".to_string());
    let (vis_reps, campaign_reps, campaign_scale) = if quick { (3, 1, 0.01) } else { (9, 3, 0.02) };

    println!(
        "orbit fast-path benchmark ({})",
        if quick { "quick" } else { "full" }
    );

    let rows = [
        bench_visibility("starlink_shell1", Constellation::starlink(), vis_reps),
        bench_visibility("starlink_full", Constellation::starlink_full(), vis_reps),
    ];
    for r in &rows {
        println!(
            "  {:>16} ({:>4} sats): naive {:>9.2} µs | fast one-shot {:>7.2} µs ({:>5.1}×) | searcher 1 Hz {:>7.2} µs ({:>5.1}×)",
            r.name,
            r.total_sats,
            r.naive_us,
            r.fast_oneshot_us,
            r.naive_us / r.fast_oneshot_us,
            r.fast_searcher_1hz_us,
            r.naive_us / r.fast_searcher_1hz_us,
        );
    }

    let (campaign_naive_ms, campaign_fast_ms) = bench_campaign(campaign_scale, campaign_reps);
    println!(
        "  campaign generate (scale {campaign_scale}): naive orbit {campaign_naive_ms:.0} ms | fast orbit {campaign_fast_ms:.0} ms ({:.2}×)",
        campaign_naive_ms / campaign_fast_ms
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"leo-cell/orbit-bench/v1\",\n");
    json.push_str("  \"generated_by\": \"cargo run --release --example orbit_bench\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"visible_satellites_us_per_query\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"total_sats\": {}, \"naive\": {:.3}, \"fast_oneshot\": {:.3}, \"fast_searcher_1hz\": {:.3}, \"speedup_oneshot\": {:.2}, \"speedup_searcher\": {:.2} }}{}",
            r.name,
            r.total_sats,
            r.naive_us,
            r.fast_oneshot_us,
            r.fast_searcher_1hz_us,
            r.naive_us / r.fast_oneshot_us,
            r.naive_us / r.fast_searcher_1hz_us,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"campaign_generation_ms\": {\n");
    let _ = writeln!(json, "    \"scale\": {campaign_scale},");
    let _ = writeln!(json, "    \"naive_orbit\": {campaign_naive_ms:.1},");
    let _ = writeln!(json, "    \"fast_orbit\": {campaign_fast_ms:.1},");
    let _ = writeln!(
        json,
        "    \"speedup\": {:.2}",
        campaign_naive_ms / campaign_fast_ms
    );
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
