//! Quickstart: a five-minute tour of the `leo-cell` stack.
//!
//! Builds a tiny measurement campaign — a short drive through the
//! synthetic five-state corridor, all five networks traced — and prints
//! the headline comparisons the paper is about.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use leo_cell::analysis::stats::mean;
use leo_cell::core;
use leo_cell::dataset::record::{NetworkId, TestKind};
use leo_cell::link::condition::Direction;

fn main() {
    // A 5 % scale campaign: a ~200 km slice of the field trip.
    println!("Generating a 5% scale campaign (use scale 1.0 for the full 3,800 km trip)…\n");
    let campaign = core::campaign(0.05, 42);
    println!("{}\n", campaign.summary().render());

    // Per-network UDP downlink means — the coverage workhorse metric.
    println!("Mean UDP downlink throughput per network:");
    for n in NetworkId::ALL {
        let samples: Vec<f64> = campaign
            .records_where(|r| {
                r.network == n && r.kind == TestKind::Udp && r.direction == Direction::Down
            })
            .iter()
            .map(|r| r.mean_mbps)
            .collect();
        if let Some(m) = mean(&samples) {
            println!(
                "  {:<4} {m:>7.1} Mbps  ({} tests)",
                n.label(),
                samples.len()
            );
        }
    }

    // The paper's headline findings, as live numbers.
    println!("\nHeadline findings (paper anchor in parentheses):");
    println!(
        "  Starlink UDP/TCP ratio:      {:>5.1}x  (≈5x)",
        core::findings::starlink_udp_tcp_ratio(&campaign)
    );
    println!(
        "  Mobility/Roam ratio:         {:>5.1}x  (≈2x)",
        core::findings::mobility_roam_ratio(&campaign)
    );
    println!(
        "  Starlink down/up ratio:      {:>5.1}x  (≈10x)",
        core::findings::starlink_down_up_ratio(&campaign)
    );
    let (mob_rtt, cell_rtt) = core::findings::latency_comparison(&campaign);
    println!("  RTT: MOB {mob_rtt:.0} ms vs best cellular {cell_rtt:.0} ms  (similar, 50-100 ms)");
    println!(
        "  Urban/rural crossover holds: {}",
        core::findings::area_crossover_holds(&campaign)
    );

    // The §4.1 cost argument: which applications does each plan satisfy?
    println!("\nApplication satisfaction (UDP downlink samples + ping RTTs):");
    let catalogue = leo_cell::analysis::apps::default_catalogue();
    for n in [NetworkId::Roam, NetworkId::Mobility] {
        let rtt = {
            let v: Vec<f64> = campaign
                .records_where(|r| r.network == n && r.mean_rtt_ms.is_some())
                .iter()
                .filter_map(|r| r.mean_rtt_ms)
                .collect();
            mean(&v).unwrap_or(70.0)
        };
        let samples: Vec<(f64, f64)> = campaign
            .records_where(|r| {
                r.network == n && r.kind == TestKind::Udp && r.direction == Direction::Down
            })
            .iter()
            .map(|r| (r.mean_mbps, rtt))
            .collect();
        let table = leo_cell::analysis::apps::satisfaction_table(&catalogue, &samples);
        print!("  {:<4}", n.label());
        for (name, frac) in &table {
            if name.contains("1080p") || name.contains("4K") || name.contains("gaming") {
                print!("  {name}: {:>3.0}%", frac * 100.0);
            }
        }
        println!();
    }

    // One figure, rendered.
    println!(
        "\n{}",
        leo_cell::core::fig1::render(&leo_cell::core::fig1::run(&campaign))
    );
    println!("Run `cargo run --release --example figures` to regenerate every figure.");
}
