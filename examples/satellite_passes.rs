//! Satellite-pass and dish-plan geometry explorer.
//!
//! Shows the orbital mechanics behind the Roam-vs-Mobility gap (§4.1):
//! the same constellation, seen through two different fields of view,
//! yields different visible-satellite counts, pass lengths, and handover
//! rates — and reproduces the paper's Eq. 1 latency estimate from raw
//! geometry.
//!
//! ```sh
//! cargo run --release --example satellite_passes -- --lat 44.5 --lon -93.0
//! ```

use leo_cell::geo::point::GeoPoint;
use leo_cell::orbit::constellation::{Constellation, Shell};
use leo_cell::orbit::dish::DishPlan;
use leo_cell::orbit::fastpath::VisibilitySearcher;
use leo_cell::orbit::ground::eq1_one_way_latency_ms;
use leo_cell::orbit::passes::{coverage_stats_with, passes_of_with, serving_timeline_with};

fn arg(args: &[String], key: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ground = GeoPoint::new(arg(&args, "--lat", 44.5), arg(&args, "--lon", -93.0));
    let constellation = Constellation::starlink();
    let shell = Shell::starlink_shell1();

    println!(
        "Starlink shell 1: {} satellites, {:.1} min period, {:.0} km/h orbital speed",
        shell.total_sats(),
        shell.period_s() / 60.0,
        shell.orbital_speed_km_s() * 3600.0
    );
    println!(
        "Paper Eq. 1: one-way vertical hop latency = {:.3} ms\n",
        eq1_one_way_latency_ms(shell.altitude_km)
    );

    println!(
        "Observer at ({:.2}, {:.2}):\n",
        ground.lat_deg, ground.lon_deg
    );
    // One searcher (and its propagation table) serves every sweep below —
    // the fast path returns bit-identical results to the naive scan.
    let mut searcher = VisibilitySearcher::new(&constellation);
    for plan in DishPlan::ALL {
        let mask = plan.min_elevation_deg();
        let stats = coverage_stats_with(&mut searcher, &ground, mask, 0.0, 1800.0, 15.0);
        let (_, handovers) = serving_timeline_with(&mut searcher, &ground, mask, 0.0, 1800.0, 15.0);
        println!(
            "{} (mask {mask:.0}°): availability {:.1}%, mean visible {:.1} sats, \
             {handovers} handovers / 30 min, longest gap {:.0}s",
            plan.label(),
            stats.availability * 100.0,
            stats.mean_visible,
            stats.longest_gap_s
        );
    }

    // Follow the currently-best satellite through its pass.
    if let Some(view) = searcher.best(&ground, 0.0, 25.0) {
        println!(
            "\nBest satellite now: shell {} plane {} slot {} at {:.1}° elevation, {:.0} km slant range",
            view.sat.shell, view.sat.plane, view.sat.slot, view.elevation_deg, view.range_km
        );
        let passes = passes_of_with(searcher.table(), view.sat, &ground, 25.0, 0.0, 5700.0, 5.0);
        println!("Its passes over the next ~95 min (one orbit):");
        for p in passes {
            println!(
                "  AOS {:>6.0}s  LOS {:>6.0}s  duration {:>4.0}s  peak elevation {:>4.1}°",
                p.aos_s,
                p.los_s,
                p.duration_s(),
                p.max_elevation_deg
            );
        }
    }
}
