//! Runs a what-if scenario sweep over the driving campaign and prints
//! the comparison table (plus optional JSON report).
//!
//! ```sh
//! # Built-in library at 2% scale:
//! cargo run --release --example scenario_sweep
//!
//! # Bigger campaign, explicit seed, four workers, one scenario:
//! cargo run --release --example scenario_sweep -- \
//!     --scale 0.05 --seed 7 --threads 4 --only carrier-outage
//!
//! # Machine-readable report (byte-identical at any --threads):
//! cargo run --release --example scenario_sweep -- --json
//! ```
//!
//! Custom scenarios: pass `--spec file.json` with a JSON array of
//! `ScenarioSpec` values (see EXPERIMENTS.md for the format); they run
//! after the baseline so the delta columns stay meaningful.

use leo_cell::dataset::campaign::{campaign_threads, CampaignConfig};
use leo_cell::scenario::{builtin, builtin_scenarios, ScenarioRunner, ScenarioSpec, BASELINE};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02_f64)
        .clamp(0.005, 1.0);
    let seed = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xcafe_2023u64);
    let threads = arg_value(&args, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(campaign_threads);
    let json = args.iter().any(|a| a == "--json");
    let metrics_json = arg_value(&args, "--metrics-json");
    if metrics_json.is_some() {
        // Force the gate on before the first `enabled()` read caches it.
        std::env::set_var("LEO_OBS", "1");
    }

    let mut specs: Vec<ScenarioSpec> = match arg_value(&args, "--spec") {
        Some(path) => {
            let text =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
            let custom: Vec<ScenarioSpec> =
                serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
            // Baseline first, so the report's delta columns have a
            // reference even for fully custom sweeps.
            let mut specs = vec![builtin(BASELINE).expect("baseline exists")];
            specs.extend(custom.into_iter().filter(|s| s.name != BASELINE));
            specs
        }
        None => builtin_scenarios(),
    };
    if let Some(only) = arg_value(&args, "--only") {
        specs.retain(|s| s.name == BASELINE || s.name == only);
    }

    let base = CampaignConfig {
        scale,
        seed,
        ..CampaignConfig::default()
    };
    eprintln!(
        "Sweeping {} scenario(s) at scale {scale}, seed {seed:#x}, {threads} worker(s)…",
        specs.len()
    );
    let start = std::time::Instant::now();
    let report = ScenarioRunner::new(base).with_threads(threads).run(&specs);
    eprintln!("Sweep done in {:.1?}\n", start.elapsed());

    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.render_table());
    }

    if let Some(path) = metrics_json {
        let obs_json = leo_cell::obs::snapshot().to_json();
        if path == "-" {
            println!("{obs_json}");
        } else {
            std::fs::write(&path, &obs_json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("Wrote obs run report to {path}");
        }
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
