//! `leo-cell` — umbrella crate for the reproduction of *LEO Satellite vs.
//! Cellular Networks: Exploring the Potential for Synergistic Integration*
//! (CoNEXT Companion '23).
//!
//! This crate re-exports every subsystem so examples and downstream users
//! can depend on a single crate:
//!
//! * [`geo`] — geodesy, routes, places, area classification
//! * [`orbit`] — Starlink-like LEO constellation, visibility, dish plans
//! * [`cellular`] — carrier deployments, path loss, RAT selection
//! * [`link`] — link-condition time series and Mahimahi-format traces
//! * [`netsim`] — deterministic discrete-event emulator (MpShell substitute)
//! * [`transport`] — TCP (Reno/CUBIC), UDP, parallel TCP, MPTCP + schedulers
//! * [`measure`] — iPerf-like, UDP-Ping, and tracker measurement tools
//! * [`dataset`] — the synthetic driving-campaign dataset
//! * [`analysis`] — CDFs, coverage levels, box stats, terminal plots
//! * [`core`] — one module per paper figure, regenerating each experiment
//! * [`scenario`] — declarative what-if campaigns: fault injection and a
//!   deterministic parallel sweep runner
//! * [`conformance`] — simulation invariants, golden digests, and the
//!   seeded schedule fuzzer guarding all of the above
//! * [`obs`] — zero-cost-when-off observability: metrics, span timers,
//!   and JSON run reports (`LEO_OBS=1`)
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use leo_analysis as analysis;
pub use leo_cellular as cellular;
pub use leo_conformance as conformance;
pub use leo_core as core;
pub use leo_dataset as dataset;
pub use leo_geo as geo;
pub use leo_link as link;
pub use leo_measure as measure;
pub use leo_netsim as netsim;
pub use leo_obs as obs;
pub use leo_orbit as orbit;
pub use leo_scenario as scenario;
pub use leo_transport as transport;
