//! Tier-1 conformance gate: the committed golden digests must match a
//! fresh computation, the invariant suite must be clean over the same
//! canonical artifacts, and a fixed-seed fuzz smoke must hold every
//! machine-checked law.

use leo_cell::conformance::fuzz::{self, FuzzConfig};
use leo_cell::conformance::goldens;

#[test]
fn invariant_suite_is_clean_on_canonical_artifacts() {
    let violations = goldens::check_invariants();
    assert!(
        violations.is_empty(),
        "{} invariant violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn golden_digests_match_the_committed_file() {
    let path = goldens::golden_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with \
             `cargo run --release --example conformance -- --bless`",
            path.display()
        )
    });
    let matched = goldens::compare(&goldens::compute_digests(), &text)
        .unwrap_or_else(|diff| panic!("{diff}"));
    // The set covers every layer: traces, records, all figures, all
    // scenarios, and the serialized report.
    assert!(matched >= 20, "only {matched} digests — coverage shrank?");
}

#[test]
fn fuzz_smoke_holds_all_invariants() {
    let summary = fuzz::run(&FuzzConfig { cases: 30, seed: 7 });
    assert_eq!(summary.cases, 30);
    assert!(summary.offers >= 30 * 50);
}
