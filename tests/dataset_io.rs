//! Dataset persistence integration: a generated campaign must survive the
//! CSV and JSON round trips bit-for-bit in every analysed field.

use leo_cell::dataset::campaign::{Campaign, CampaignConfig};
use leo_cell::dataset::io;

fn campaign() -> Campaign {
    Campaign::generate(CampaignConfig::small())
}

#[test]
fn csv_round_trip_of_generated_campaign() {
    let c = campaign();
    let mut buf = Vec::new();
    io::write_csv(&mut buf, &c.records).expect("write");
    let parsed = io::read_csv(buf.as_slice()).expect("parse");
    assert_eq!(parsed.len(), c.records.len());
    for (a, b) in parsed.iter().zip(&c.records) {
        assert_eq!(a.test_id, b.test_id);
        assert_eq!(a.network, b.network);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.area, b.area);
        // Floats go through fixed-precision formatting; compare coarsely.
        assert!((a.mean_mbps - b.mean_mbps).abs() < 0.01);
        assert!((a.retrans_rate - b.retrans_rate).abs() < 1e-5);
    }
}

#[test]
fn json_round_trip_of_generated_campaign_is_exact() {
    let c = campaign();
    let json = io::to_json(&c.records).expect("serialise");
    let parsed = io::from_json(&json).expect("parse");
    assert_eq!(parsed, c.records);
}

#[test]
fn analysis_results_survive_the_round_trip() {
    // Coverage proportions computed before and after persistence agree.
    let c = campaign();
    let before: Vec<f64> = c.records.iter().map(|r| r.mean_mbps).collect();
    let json = io::to_json(&c.records).unwrap();
    let after: Vec<f64> = io::from_json(&json)
        .unwrap()
        .iter()
        .map(|r| r.mean_mbps)
        .collect();
    assert_eq!(
        leo_cell::analysis::coverage::coverage_proportions(&before),
        leo_cell::analysis::coverage::coverage_proportions(&after)
    );
}
