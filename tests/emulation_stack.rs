//! Cross-crate integration of the emulation stack: link traces from the
//! world models, replayed through `leo-netsim`, driven by `leo-transport`
//! via `leo-measure` — the §6 pipeline without the campaign layer.

use leo_cell::core::mptcp_emu::{run_mptcp, run_single_path, BufferTuning};
use leo_cell::geo::area::AreaType;
use leo_cell::geo::drive::{DayPhase, EnvironmentSample, Weather};
use leo_cell::geo::point::GeoPoint;
use leo_cell::link::trace::LinkTrace;
use leo_cell::measure::iperf::{Engine, IperfConfig, IperfRunner};
use leo_cell::orbit::dish::DishPlan;
use leo_cell::orbit::model::{StarlinkLinkModel, StarlinkModelConfig};
use leo_cell::transport::mptcp::SchedulerKind;

fn rural_drive(len_s: u64) -> (Vec<EnvironmentSample>, Vec<AreaType>) {
    let samples: Vec<EnvironmentSample> = (0..len_s)
        .map(|t| EnvironmentSample {
            t_s: t,
            position: GeoPoint::new(43.9, -99.5).destination(90.0, t as f64 * 0.025),
            speed_kmh: 90.0,
            heading_deg: 90.0,
            day_phase: DayPhase::Day,
            weather: Weather::Clear,
            travelled_km: t as f64 * 0.025,
        })
        .collect();
    let areas = vec![AreaType::Rural; samples.len()];
    (samples, areas)
}

fn starlink_trace(plan: DishPlan, len_s: u64) -> LinkTrace {
    let (samples, areas) = rural_drive(len_s);
    StarlinkLinkModel::new(StarlinkModelConfig::for_plan(plan))
        .trace_for_drive(&samples, &areas)
        .0
}

#[test]
fn orbit_trace_feeds_packet_level_iperf() {
    let trace = starlink_trace(DishPlan::Mobility, 20);
    let analytic = IperfRunner::new(IperfConfig::udp_down()).run(&trace);
    let packet =
        IperfRunner::new(IperfConfig::udp_down().with_engine(Engine::PacketLevel)).run(&trace);
    assert!(analytic.mean_mbps > 50.0, "analytic {}", analytic.mean_mbps);
    assert!(packet.mean_mbps > 30.0, "packet {}", packet.mean_mbps);
    // The engines agree within a factor band on the same trace.
    let ratio = packet.mean_mbps / analytic.mean_mbps;
    assert!(
        (0.5..1.4).contains(&ratio),
        "engines disagree: packet {} vs analytic {}",
        packet.mean_mbps,
        analytic.mean_mbps
    );
}

#[test]
fn starlink_tcp_packet_level_shows_loss_collapse() {
    // The full mechanism end to end: orbit model loss → TracePipe loss
    // series → CUBIC collapse. TCP must land well below UDP.
    let trace = starlink_trace(DishPlan::Mobility, 25);
    let udp =
        IperfRunner::new(IperfConfig::udp_down().with_engine(Engine::PacketLevel)).run(&trace);
    let tcp = IperfRunner::new(IperfConfig::tcp_down_starlink(1).with_engine(Engine::PacketLevel))
        .run(&trace);
    assert!(
        tcp.mean_mbps < udp.mean_mbps * 0.75,
        "packet-level TCP {} vs UDP {}",
        tcp.mean_mbps,
        udp.mean_mbps
    );
    assert!(tcp.retrans_rate > 0.001, "retrans {}", tcp.retrans_rate);
}

#[test]
fn mptcp_over_model_traces_pools_capacity() {
    let mob = starlink_trace(DishPlan::Mobility, 30);
    // A synthetic steady cellular path as the second subflow.
    let cell = LinkTrace::new(
        "VZ",
        0,
        vec![leo_cell::link::condition::LinkCondition::new(60.0, 45.0, 0.0005); 30],
    );
    let single_mob = run_single_path(&mob, 11).mean_mbps;
    let single_cell = run_single_path(&cell, 11).mean_mbps;
    let mp = run_mptcp(&mob, &cell, SchedulerKind::Blest, BufferTuning::Tuned, 11).mean_mbps;
    let better = single_mob.max(single_cell);
    assert!(
        mp > better,
        "MPTCP {mp} vs best single {better} (mob {single_mob}, cell {single_cell})"
    );
}

#[test]
fn roam_trace_is_slower_than_mobility_trace_through_the_whole_stack() {
    let rm = starlink_trace(DishPlan::Roam, 25);
    let mob = starlink_trace(DishPlan::Mobility, 25);
    let rm_rate = IperfRunner::new(IperfConfig::udp_down()).run(&rm).mean_mbps;
    let mob_rate = IperfRunner::new(IperfConfig::udp_down())
        .run(&mob)
        .mean_mbps;
    assert!(
        mob_rate > rm_rate * 1.3,
        "MOB {mob_rate} vs RM {rm_rate} through the full stack"
    );
}
