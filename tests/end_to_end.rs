//! End-to-end integration: world → campaign → analysis → figures.
//!
//! These tests drive the whole stack exactly as the `figures` example
//! does, at a small scale, and assert the paper's qualitative results
//! survive the full pipeline (not just the per-crate unit paths).

use leo_cell::core;
use leo_cell::dataset::campaign::Campaign;
use leo_cell::dataset::record::{NetworkId, TestKind};
use leo_cell::link::condition::Direction;

/// One shared medium-scale campaign: enough drive to reach rural country
/// and fill every (network, kind) slot, generated once per process via
/// the core campaign cache.
fn shared_campaign() -> &'static Campaign {
    core::cached_campaign(0.15, 4242)
}

#[test]
fn campaign_schedules_all_network_kind_pairs() {
    let c = shared_campaign();
    // The nested scheduling must give every network every test kind.
    for n in NetworkId::ALL {
        for kind in [TestKind::Udp, TestKind::Tcp { parallel: 1 }, TestKind::Ping] {
            assert!(
                c.records.iter().any(|r| r.network == n && r.kind == kind),
                "missing ({n}, {kind:?}) tests"
            );
        }
    }
}

#[test]
fn every_figure_renders_from_one_campaign() {
    let c = shared_campaign();
    for fig in core::all_figures() {
        let out = (fig.render)(c);
        assert!(out.len() > 40, "{} output too small", fig.id);
    }
}

#[test]
fn figure3_summary_shape_matches_paper() {
    let c = shared_campaign();
    let d = core::fig3::run(c);
    let mean = |sets: &[core::fig3::LabelledSamples], label: &str| {
        sets.iter()
            .find(|s| s.label == label)
            .and_then(|s| leo_cell::analysis::stats::mean(&s.mbps))
            .unwrap_or(0.0)
    };
    // Panel a orderings.
    let mob_udp = mean(&d.tcp_vs_udp, "MOB-UDP");
    let mob_tcp = mean(&d.tcp_vs_udp, "MOB-TCP");
    let cell_udp = mean(&d.tcp_vs_udp, "Cellular-UDP");
    let cell_tcp = mean(&d.tcp_vs_udp, "Cellular-TCP");
    assert!(
        mob_udp > 2.0 * mob_tcp,
        "MOB UDP {mob_udp} vs TCP {mob_tcp}"
    );
    assert!(
        cell_tcp > 0.6 * cell_udp,
        "cellular TCP {cell_tcp} vs UDP {cell_udp}"
    );
    // Starlink TCP suffers more than cellular TCP in relative terms.
    let sl_eff = mob_tcp / mob_udp.max(1e-9);
    let cl_eff = cell_tcp / cell_udp.max(1e-9);
    assert!(
        sl_eff < cl_eff,
        "TCP efficiency: starlink {sl_eff} vs cellular {cl_eff}"
    );
}

#[test]
fn udp_downlink_means_are_in_paper_regime() {
    // Mobility UDP downlink mean ≈ 128 Mbps (paper), Roam ≈ 63. Allow a
    // generous band — the substrate is synthetic — but keep the order of
    // magnitude and the MOB > RM ordering.
    let c = shared_campaign();
    let mean_of = |n: NetworkId| {
        let v: Vec<f64> = c
            .records_where(|r| {
                r.network == n && r.kind == TestKind::Udp && r.direction == Direction::Down
            })
            .iter()
            .map(|r| r.mean_mbps)
            .collect();
        leo_cell::analysis::stats::mean(&v).unwrap_or(0.0)
    };
    let mob = mean_of(NetworkId::Mobility);
    let rm = mean_of(NetworkId::Roam);
    assert!(
        (70.0..220.0).contains(&mob),
        "MOB UDP mean {mob} (paper 128)"
    );
    assert!((30.0..120.0).contains(&rm), "RM UDP mean {rm} (paper 63)");
    assert!(mob > rm * 1.4, "MOB {mob} vs RM {rm}");
}

#[test]
fn summary_matches_paper_structure_at_scale() {
    let c = shared_campaign();
    let s = c.summary();
    assert_eq!(s.networks, 5);
    assert!(s.tests >= 50, "tests {}", s.tests);
    // Area mix: every type present, none dominant beyond the paper's
    // roughly-equal thirds.
    for (label, frac) in [
        ("urban", s.urban_frac),
        ("suburban", s.suburban_frac),
        ("rural", s.rural_frac),
    ] {
        assert!(
            (0.05..0.75).contains(&frac),
            "{label} fraction {frac} out of regime"
        );
    }
}

#[test]
fn deterministic_across_full_pipeline() {
    let a = core::campaign(0.03, 7);
    let b = core::campaign(0.03, 7);
    assert_eq!(a.records, b.records);
    let fa = core::fig9::run(&a);
    let fb = core::fig9::run(&b);
    assert_eq!(format!("{fa:?}"), format!("{fb:?}"));
}
