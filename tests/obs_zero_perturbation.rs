//! The observability layer's hard guarantee: `LEO_OBS=1` must not move a
//! single bit of any simulation output.
//!
//! One `#[test]` on purpose — the obs gate is a process-wide `OnceLock`,
//! so the whole binary runs with `LEO_OBS=1` (and 4 campaign threads) set
//! before the first `enabled()` read, then checks that the canonical
//! golden digests still match the committed file byte-for-byte while the
//! registry demonstrably recorded traffic.

use leo_cell::conformance::goldens;
use leo_cell::dataset::campaign::{Campaign, CampaignConfig};
use leo_cell::obs;

#[test]
fn goldens_are_byte_identical_with_obs_enabled() {
    std::env::set_var("LEO_OBS", "1");
    std::env::set_var("LEO_CAMPAIGN_THREADS", "4");
    assert!(
        obs::enabled(),
        "gate must be on for this test to mean anything"
    );

    // The committed goldens were blessed with obs off; recomputing them
    // with obs on (and parallel campaign workers) must change nothing.
    let path = goldens::golden_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with \
             `cargo run --release --example conformance -- --bless`",
            path.display()
        )
    });
    goldens::compare(&goldens::compute_digests(), &text)
        .unwrap_or_else(|diff| panic!("obs-on digests diverged from committed goldens:\n{diff}"));

    // Thread-count independence survives instrumentation: the worker
    // spans wrap the fan-out without touching its seeding.
    let cfg = CampaignConfig {
        scale: 0.01,
        seed: 0x0b5_2023,
        ..CampaignConfig::default()
    };
    let one = Campaign::generate_with_threads(cfg.clone(), 1);
    let four = Campaign::generate_with_threads(cfg, 4);
    assert_eq!(one.records, four.records);
    for (n, (down, up)) in &one.traces {
        assert_eq!(down.samples(), four.traces[n].0.samples(), "{n:?} down");
        assert_eq!(up.samples(), four.traces[n].1.samples(), "{n:?} up");
    }

    // And the registry really was live the whole time — this test must
    // not pass vacuously with the gate off.
    let report = obs::snapshot();
    assert!(report.counter("campaign.generations") >= 2);
    assert!(report.counter("orbit.searcher.queries") > 0);
    assert!(
        report.histogram("campaign.stage.trace_s").is_some(),
        "stage spans must have recorded"
    );
}
