//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning crate boundaries.

use leo_cell::dataset::campaign::{Campaign, CampaignConfig};
use leo_cell::geo::point::GeoPoint;
use leo_cell::link::condition::LinkCondition;
use leo_cell::link::mahimahi::MahimahiTrace;
use leo_cell::link::trace::LinkTrace;
use leo_cell::measure::iperf::{IperfConfig, IperfRunner};
use leo_cell::netsim::{ConstPipe, Pipe, SimTime};
use leo_cell::orbit::constellation::Constellation;
use leo_cell::orbit::fastpath::VisibilitySearcher;
use leo_cell::orbit::visibility::{best_satellite, visible_satellites};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Mahimahi conversion preserves long-run rate for arbitrary capacity
    /// series (to_capacity_series ∘ from_capacity_series ≈ id in total
    /// volume).
    #[test]
    fn mahimahi_round_trip_preserves_volume(caps in prop::collection::vec(0.0..300.0f64, 1..40)) {
        let trace = MahimahiTrace::from_capacity_series(&caps);
        let back = trace.to_capacity_series();
        let vol_in: f64 = caps.iter().sum();
        let vol_out: f64 = back.iter().sum();
        // One MTU (0.012 Mbit) per second of quantisation slack.
        prop_assert!((vol_in - vol_out).abs() <= 0.013 * caps.len() as f64 + 0.013,
            "in {vol_in} vs out {vol_out}");
    }

    /// Pipe conservation: every offered packet is delivered exactly once
    /// or dropped exactly once — never duplicated, never lost silently.
    #[test]
    fn pipe_conserves_packets(
        rate in 0.5..200.0f64,
        loss in 0.0..0.5f64,
        queue in 3000u64..100_000,
        n in 1usize..300,
    ) {
        let mut pipe = ConstPipe::new(rate, SimTime::from_millis(10), loss, queue);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            let _ = pipe.offer(1500, t, &mut rng);
            t += SimTime::from_micros(200);
        }
        let s = pipe.stats();
        prop_assert_eq!(s.offered_packets, n as u64);
        prop_assert_eq!(s.offered_packets,
            s.delivered_packets + s.dropped_random + s.dropped_queue);
    }

    /// Delivery times out of a pipe never decrease (FIFO).
    #[test]
    fn pipe_is_fifo(rate in 1.0..100.0f64, n in 2usize..100) {
        let mut pipe = ConstPipe::new(rate, SimTime::from_millis(5), 0.0, u64::MAX);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut last = SimTime::ZERO;
        for i in 0..n {
            let t = SimTime::from_micros(137 * i as u64);
            if let Some(d) = pipe.offer(1500, t, &mut rng) {
                prop_assert!(d >= last, "delivery went backwards");
                last = d;
            }
        }
    }

    /// The analytic iPerf engine never reports more UDP throughput than
    /// link capacity, for arbitrary conditions.
    #[test]
    fn analytic_udp_bounded_by_capacity(
        caps in prop::collection::vec(0.0..400.0f64, 1..30),
        rtt in 5.0..200.0f64,
        loss in 0.0..0.2f64,
    ) {
        let conditions: Vec<LinkCondition> = caps
            .iter()
            .map(|&c| LinkCondition::new(c, rtt, loss))
            .collect();
        let rep = IperfRunner::new(IperfConfig::udp_down()).run_analytic(&conditions);
        for (got, cap) in rep.per_second_mbps.iter().zip(&caps) {
            prop_assert!(*got <= cap + 1e-9, "udp {got} above capacity {cap}");
        }
    }

    /// TCP analytic throughput is monotone non-increasing in loss.
    #[test]
    fn analytic_tcp_monotone_in_loss(cap in 20.0..300.0f64, rtt in 20.0..120.0f64) {
        let rate = |loss: f64| {
            let conditions = vec![LinkCondition::new(cap, rtt, loss); 10];
            IperfRunner::new(IperfConfig::tcp_down_starlink(1))
                .run_analytic(&conditions)
                .mean_mbps
        };
        let r0 = rate(0.0005);
        let r1 = rate(0.01);
        let r2 = rate(0.05);
        prop_assert!(r0 >= r1 - 1e-9);
        prop_assert!(r1 >= r2 - 1e-9);
    }

    /// `LinkCondition` combinators keep every field in its valid range
    /// for arbitrary (even out-of-range) inputs: capacities and RTTs
    /// stay non-negative, loss stays a probability.
    #[test]
    fn link_condition_combinators_stay_in_range(
        cap_a in -50.0..500.0f64, rtt_a in -20.0..2000.0f64, loss_a in -0.5..1.5f64,
        cap_b in -50.0..500.0f64, rtt_b in -20.0..2000.0f64, loss_b in -0.5..1.5f64,
        t in -1.0..2.0f64,
        factor in -2.0..4.0f64,
    ) {
        let a = LinkCondition::new(cap_a, rtt_a, loss_a);
        let b = LinkCondition::new(cap_b, rtt_b, loss_b);
        for c in [a, b, a.lerp(&b, t), a.scale_capacity(factor), b.scale_capacity(factor)] {
            prop_assert!(c.capacity_mbps >= 0.0, "capacity {} < 0", c.capacity_mbps);
            prop_assert!(c.rtt_ms >= 0.0, "rtt {} < 0", c.rtt_ms);
            prop_assert!((0.0..=1.0).contains(&c.loss), "loss {} out of range", c.loss);
        }
    }

    /// `lerp` is monotone in `t`, field by field: as `t` grows, every
    /// field moves toward (never past, never away from) the `b` value.
    #[test]
    fn lerp_is_monotone_in_t(
        cap_a in 0.0..400.0f64, rtt_a in 1.0..500.0f64, loss_a in 0.0..1.0f64,
        cap_b in 0.0..400.0f64, rtt_b in 1.0..500.0f64, loss_b in 0.0..1.0f64,
        t1 in 0.0..1.0f64, t2 in 0.0..1.0f64,
    ) {
        let (t1, t2) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let a = LinkCondition::new(cap_a, rtt_a, loss_a);
        let b = LinkCondition::new(cap_b, rtt_b, loss_b);
        let x = a.lerp(&b, t1);
        let y = a.lerp(&b, t2);
        // The step from t1 to t2 points in the a→b direction per field.
        for (x_f, y_f, a_f, b_f) in [
            (x.capacity_mbps, y.capacity_mbps, a.capacity_mbps, b.capacity_mbps),
            (x.rtt_ms, y.rtt_ms, a.rtt_ms, b.rtt_ms),
            (x.loss, y.loss, a.loss, b.loss),
        ] {
            prop_assert!((y_f - x_f) * (b_f - a_f) >= -1e-9,
                "lerp not monotone: {x_f} -> {y_f} against {a_f} -> {b_f}");
            // And both stay inside the [min, max] envelope of a and b.
            prop_assert!(x_f >= a_f.min(b_f) - 1e-12 && x_f <= a_f.max(b_f) + 1e-12);
        }
    }

    /// The orbit fast path (propagation table + plane pruning + coherent
    /// searcher) is bit-identical to the naive full-constellation scan,
    /// across the whole pipeline's query pattern: repeated queries at 1 Hz
    /// from a moving observer, over the full four-shell constellation.
    #[test]
    fn orbit_fast_path_equals_naive_scan(
        lat in -85.0..85.0f64,
        lon in -180.0..180.0f64,
        t0 in 0.0..90_000.0f64,
        mask in 10.0..55.0f64,
        heading in 0.0..360.0f64,
        steps in 2usize..12,
    ) {
        let c = Constellation::starlink_full();
        let mut searcher = VisibilitySearcher::new(&c);
        let start = GeoPoint::new(lat, lon);
        for i in 0..steps {
            let t = t0 + i as f64;
            let ground = start.destination(heading, 0.03 * i as f64);
            prop_assert_eq!(
                visible_satellites(&c, &ground, t, mask),
                searcher.visible(&ground, t, mask)
            );
            prop_assert_eq!(
                best_satellite(&c, &ground, t, mask),
                searcher.best(&ground, t, mask)
            );
        }
    }

    /// Windowing a trace then taking stats equals taking stats of the
    /// slice directly.
    #[test]
    fn trace_window_consistency(
        caps in prop::collection::vec(0.0..300.0f64, 4..50),
        a_frac in 0.0..0.5f64,
    ) {
        let samples: Vec<LinkCondition> = caps
            .iter()
            .map(|&c| LinkCondition::new(c, 50.0, 0.0))
            .collect();
        let trace = LinkTrace::new("x", 100, samples);
        let a = 100 + (a_frac * caps.len() as f64) as u64;
        let b = 100 + caps.len() as u64;
        let window = trace.window(a, b);
        prop_assert_eq!(window.duration_s(), b - a);
        prop_assert_eq!(window.samples(),
            &trace.samples()[(a - 100) as usize..]);
    }
}

proptest! {
    // Campaign generation is expensive, so this block runs fewer cases
    // than the default 64; the seeds still vary run-structure enough to
    // exercise every parallel code path.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The parallel-determinism contract, for arbitrary seeds: campaign
    /// generation with one worker and with several is byte-identical.
    #[test]
    fn campaign_thread_count_invariant_over_seeds(seed in 0u64..=u64::MAX, threads in 2usize..7) {
        let cfg = CampaignConfig {
            seed,
            scale: 0.01,
            ..CampaignConfig::default()
        };
        let sequential = Campaign::generate_with_threads(cfg.clone(), 1);
        let parallel = Campaign::generate_with_threads(cfg, threads);
        prop_assert_eq!(&sequential.traces, &parallel.traces);
        prop_assert_eq!(&sequential.records, &parallel.records);
    }
}
