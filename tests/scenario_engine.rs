//! Integration tests of the scenario engine: the determinism contract,
//! the synergy-direction claims, and graceful degradation under
//! injected faults.

use leo_cell::dataset::campaign::CampaignConfig;
use leo_cell::scenario::{
    builtin, builtin_scenarios, graceful_degradation, NetworkSelector, Perturbation,
    ScenarioReport, ScenarioRunner, ScenarioSpec, Window, BASELINE,
};

fn tiny_base() -> CampaignConfig {
    CampaignConfig {
        scale: 0.01,
        seed: 0x5ce_11e,
        ..CampaignConfig::default()
    }
}

/// The headline determinism contract: the rendered JSON report is
/// byte-identical no matter how many workers the sweep uses.
#[test]
fn report_is_byte_identical_across_thread_counts() {
    let specs = vec![
        builtin(BASELINE).expect("baseline"),
        builtin("carrier-outage").expect("builtin"),
        builtin("handover-storm").expect("builtin"),
        builtin("mptcp-combined").expect("builtin"),
    ];
    let sequential = ScenarioRunner::new(tiny_base()).with_threads(1).run(&specs);
    let parallel = ScenarioRunner::new(tiny_base()).with_threads(4).run(&specs);
    assert_eq!(
        sequential.to_json(),
        parallel.to_json(),
        "scenario sweep must not depend on worker count"
    );
    // And the JSON is a faithful round trip of the report itself.
    let back = ScenarioReport::from_json(&sequential.to_json()).expect("round trip");
    assert_eq!(back, sequential);
}

/// §5's coverage synergy, preserved under every built-in scenario: the
/// combined satellite+cellular deployment covers at least as much as
/// the best single network, and the single-family ablations behave as
/// their names promise.
#[test]
fn combined_coverage_dominates_in_every_builtin_scenario() {
    let report = ScenarioRunner::new(tiny_base()).run(&builtin_scenarios());
    assert_eq!(report.outcomes.len(), 8);
    for o in &report.outcomes {
        let c = &o.coverage;
        let best_single = c.mob_high.max(c.best_cell_high);
        assert!(
            c.combined_high >= best_single - 1e-12,
            "{}: combined high {} < best single {}",
            o.name,
            c.combined_high,
            best_single
        );
    }
    let by_name = |n: &str| {
        report
            .outcomes
            .iter()
            .find(|o| o.name == n)
            .unwrap_or_else(|| panic!("{n} in report"))
    };
    // Ablations: killing one family zeroes that family's share and the
    // combined bar degenerates to the survivor.
    let leo = by_name("leo-only");
    assert!(leo.coverage.best_cell_high < 1e-12);
    assert!((leo.coverage.combined_high - leo.coverage.mob_high).abs() < 1e-12);
    let cell = by_name("cell-only");
    assert!(cell.coverage.mob_high < 1e-12);
    assert!((cell.coverage.combined_high - cell.coverage.best_cell_high).abs() < 1e-12);
    // A carrier outage hurts cellular coverage but the combined bar
    // stays at least as good as baseline satellite alone.
    let outage = by_name("carrier-outage");
    let base = by_name(BASELINE);
    assert!(outage.coverage.best_cell_high < base.coverage.best_cell_high);
    assert!(outage.coverage.combined_high >= base.coverage.mob_high - 1e-12);
}

/// §6 under fire: MPTCP with one path yanked mid-download still delivers
/// at least the surviving path's solo throughput.
#[test]
fn mptcp_degrades_gracefully_under_path_outage() {
    let campaign = leo_cell::dataset::Campaign::generate_with_threads(tiny_base(), 1);
    let r = graceful_degradation(&campaign, 60, 0.4, 7);
    assert!(
        r.degrades_gracefully(),
        "faulted MPTCP {} Mbps < surviving solo {} Mbps",
        r.mptcp_faulted_mbps,
        r.solo_surviving_mbps
    );
    assert!(r.mptcp_clean_mbps >= r.mptcp_faulted_mbps - 1e-9);
}

/// Custom (non-library) specs flow through the runner and the report
/// table end to end.
#[test]
fn custom_spec_sweeps_work_end_to_end() {
    let custom = ScenarioSpec::named("half-fade", "50% rain fade on everything").with(
        Perturbation::RainFade {
            window: Window::ALL,
            networks: NetworkSelector::All,
            capacity_factor: 0.5,
        },
    );
    let json = custom.to_json();
    let parsed = ScenarioSpec::from_json(&json).expect("spec parses");
    let report = ScenarioRunner::new(tiny_base())
        .with_threads(2)
        .run(&[builtin(BASELINE).unwrap(), parsed]);
    let base = &report.outcomes[0];
    let faded = &report.outcomes[1];
    assert!(faded.udp_down_mean_mbps < base.udp_down_mean_mbps);
    let table = report.render_table();
    assert!(table.contains("half-fade"));
}
