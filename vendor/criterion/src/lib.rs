//! Offline mini-criterion.
//!
//! Provides the Criterion API surface this workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` / `finish`), [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Under `cargo bench` (cargo passes `--bench`) each benchmark is warmed
//! up, then timed for a fixed number of samples and the median per-
//! iteration time is printed. Under `cargo test` (no `--bench` flag)
//! each benchmark body runs exactly once as a smoke test, so the bench
//! binaries stay cheap in the tier-1 gate.

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` if desired.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
const WARMUP_TARGET: Duration = Duration::from_millis(40);
const SAMPLE_TARGET: Duration = Duration::from_millis(15);

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Benchmark filter: first free (non-flag) CLI argument, if any.
fn filter() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bench" | "--test" | "--nocapture" | "--quiet" | "-q" | "--exact"
            | "--include-ignored" | "--ignored" | "--list" | "--show-output" => {}
            "--format" | "--logfile" | "-Z" => {
                let _ = args.next();
            }
            s if s.starts_with('-') => {}
            s => return Some(s.to_string()),
        }
    }
    None
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.bench_mode {
            black_box(f());
            self.last_median = None;
            return;
        }
        // Warm-up: find an iteration count that fills SAMPLE_TARGET.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= WARMUP_TARGET || iters >= 1 << 20 {
                break elapsed / iters.max(1) as u32;
            }
            iters = iters.saturating_mul(4);
        };
        let per_sample = if per_iter.is_zero() {
            1024
        } else {
            (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64
        };
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..per_sample {
                    black_box(f());
                }
                start.elapsed() / per_sample as u32
            })
            .collect();
        samples.sort_unstable();
        self.last_median = Some(samples[samples.len() / 2]);
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(pat) = filter() {
        if !id.contains(&pat) {
            return;
        }
    }
    let mode = bench_mode();
    let mut b = Bencher {
        bench_mode: mode,
        sample_size,
        last_median: None,
    };
    f(&mut b);
    match b.last_median {
        Some(t) => println!("{id:<40} time: [{}]", fmt_duration(t)),
        None if !mode => println!("{id:<40} ... ok (test mode)"),
        None => println!("{id:<40} ... (no measurement)"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut count = 0;
        let mut b = Bencher {
            bench_mode: false,
            sample_size: 5,
            last_median: None,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(b.last_median.is_none());
    }

    #[test]
    fn bench_mode_measures_something() {
        let mut b = Bencher {
            bench_mode: true,
            sample_size: 3,
            last_median: None,
        };
        b.iter(|| black_box(2u64.pow(10)));
        assert!(b.last_median.is_some());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
    }
}
