//! Offline mini-crossbeam.
//!
//! Only `crossbeam::thread::scope` is provided (the one API this
//! workspace uses), with crossbeam-0.8-shaped signatures: the scope
//! closure and every `spawn` closure receive `&Scope`, and `scope`
//! returns `thread::Result` (Err if the closure or any spawned thread
//! panicked). Internally it delegates to `std::thread::scope`.

pub mod thread {
    /// Result of a scope: `Err` holds the panic payload if the scope
    /// closure or an unjoined spawned thread panicked.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; spawned threads may borrow from the enclosing
    /// environment (`'env`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives `&Scope` so it
        /// can spawn nested scoped threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning scoped threads; all spawned threads
    /// are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scope_joins_and_returns() {
        let counter = AtomicU32::new(0);
        let out = thread::scope(|s| {
            let counter = &counter;
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(out, 60);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn threads_can_borrow_environment() {
        let data = [1u64, 2, 3, 4];
        let sum = thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u64>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn nested_spawn_works() {
        let v = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7u8).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
