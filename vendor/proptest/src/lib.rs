//! Offline mini-proptest.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`, numeric
//! range strategies, `prop::collection::vec`, tuple strategies and
//! `prop_map`. Each property runs a fixed number of deterministic
//! cases (seeded from the test name), so failures reproduce exactly;
//! there is no shrinking.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Default number of random cases run per property.
pub const CASES: u64 = 64;

/// Per-block configuration, set with `#![proptest_config(...)]` as in
/// real proptest. Only the case count is honoured here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: CASES as u32,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A sampler of values of type `Self::Value`.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut SmallRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut SmallRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Strategy modules, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub mod collection {
        use super::super::{SmallRng, Strategy};
        use rand::Rng;

        /// A `Vec` strategy: random length in `len`, elements from
        /// `element`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{prop, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs `case` for [`CASES`] deterministic seeds derived from `name`.
pub fn run_cases(name: &str, case: impl FnMut(&mut SmallRng)) {
    run_cases_with(name, CASES, case);
}

/// Runs `case` for `cases` deterministic seeds derived from `name`.
pub fn run_cases_with(name: &str, cases: u64, mut case: impl FnMut(&mut SmallRng)) {
    // FNV-1a over the property name keeps seeds stable across runs and
    // distinct across properties.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for i in 0..cases {
        let mut rng = SmallRng::seed_from_u64(h ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        case(&mut rng);
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a test that samples the strategies [`CASES`] times, or
/// `#![proptest_config(ProptestConfig::with_cases(n))]` times when the
/// block carries that header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                $crate::run_cases_with(stringify!($name), config.cases as u64, |rng| {
                    let ($($arg,)+) = $crate::Strategy::sample(&strategies, rng);
                    $body
                });
            }
        )*
    };
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let strategies = ($($strat,)+);
                $crate::run_cases(stringify!($name), |rng| {
                    let ($($arg,)+) = $crate::Strategy::sample(&strategies, rng);
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure, since this
/// mini-proptest has no shrinking pass to report to).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 1.5..9.5f64, n in 3usize..17) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..17).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0.0..1.0f64, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_cases("det", |rng| a.push((0.0..1.0f64).sample(rng)));
        crate::run_cases("det", |rng| b.push((0.0..1.0f64).sample(rng)));
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, crate::CASES);
    }

    #[test]
    fn prop_map_applies() {
        let s = (0u32..10).prop_map(|x| x * 2);
        crate::run_cases("map", |rng| {
            let v = s.sample(rng);
            assert!(v % 2 == 0 && v < 20);
        });
    }

    #[test]
    fn just_yields_value() {
        let s = Just(41u8);
        crate::run_cases("just", |rng| assert_eq!(s.sample(rng), 41));
    }
}
