//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the handful of `rand` APIs it actually uses.
//! Algorithms are bit-faithful to rand 0.8.5 so seeded streams match the
//! real crate:
//!
//! * [`rngs::SmallRng`] is xoshiro256++ with the SplitMix64
//!   `seed_from_u64` expansion (the 64-bit `SmallRng` of rand 0.8).
//! * Integer `gen_range` is Lemire widening-multiply rejection, drawing
//!   u32 words for ≤32-bit types and u64 words otherwise, as rand does.
//! * Float `gen_range` uses the `[1, 2)` mantissa-fill method.
//! * `gen_bool` is the Bernoulli 64-bit fixed-point comparison.

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generators (subset: byte-seed plus `seed_from_u64`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Generic PCG32-based seed expansion (rand_core 0.6 default). The
    /// xoshiro-backed [`rngs::SmallRng`] overrides this with SplitMix64,
    /// exactly as rand 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that `Rng::gen` can produce (the `Standard` distribution).
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 effective bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types uniformly sampleable from a range (rand 0.8's `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from the half-open range `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from the closed range `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Ranges that `Rng::gen_range` accepts. A single blanket impl per range
/// shape (as in rand 0.8) keeps float-literal fallback unambiguous.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_range_inclusive(rng, low, high)
    }
}

/// Lemire rejection over u32 draws (rand's `$u_large = u32` types).
fn sample_below_u32<R: RngCore + ?Sized>(rng: &mut R, span: u32) -> u32 {
    debug_assert!(span > 0);
    let zone = (span << span.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let m = (v as u64) * (span as u64);
        if (m as u32) <= zone {
            return (m >> 32) as u32;
        }
    }
}

/// Lemire rejection over u64 draws (rand's `$u_large = u64` types).
fn sample_below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = (span << span.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (span as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! uniform_int_range {
    ($($ty:ty => $unsigned:ty, $large:ty, $below:ident, $word:ident;)*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                assert!(low < high, "cannot sample empty range");
                let span = high.wrapping_sub(low) as $unsigned as $large;
                low.wrapping_add($below(rng, span) as $ty)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $ty,
                high: $ty,
            ) -> $ty {
                assert!(low <= high, "cannot sample empty range");
                let span = (high.wrapping_sub(low) as $unsigned as $large).wrapping_add(1);
                if span == 0 {
                    // Full type range: any word is uniform.
                    return low.wrapping_add(rng.$word() as $ty);
                }
                low.wrapping_add($below(rng, span) as $ty)
            }
        }
    )*};
}

uniform_int_range! {
    u8 => u8, u32, sample_below_u32, next_u32;
    u16 => u16, u32, sample_below_u32, next_u32;
    u32 => u32, u32, sample_below_u32, next_u32;
    i8 => u8, u32, sample_below_u32, next_u32;
    i16 => u16, u32, sample_below_u32, next_u32;
    i32 => u32, u32, sample_below_u32, next_u32;
    u64 => u64, u64, sample_below_u64, next_u64;
    i64 => u64, u64, sample_below_u64, next_u64;
    usize => usize, u64, sample_below_u64, next_u64;
    isize => usize, u64, sample_below_u64, next_u64;
}

macro_rules! uniform_float_range {
    ($($ty:ty => $uty:ty, $word:ident, $discard:expr, $one_bits:expr;)*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                assert!(low < high, "cannot sample empty range");
                let scale = high - low;
                let offset = low - scale;
                loop {
                    // Mantissa fill: uniform in [1, 2), then scale.
                    let bits = (rng.$word() >> $discard) | $one_bits;
                    let value1_2 = <$ty>::from_bits(bits);
                    let res = value1_2 * scale + offset;
                    if res < high {
                        return res;
                    }
                }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $ty,
                high: $ty,
            ) -> $ty {
                assert!(low <= high, "cannot sample empty range");
                // rand 0.8 treats inclusive float ranges via a nudged
                // scale; for the simulation's purposes sampling the
                // half-open range and clamping is indistinguishable.
                if low == high {
                    return low;
                }
                Self::sample_range(rng, low, high)
            }
        }
    )*};
}

uniform_float_range! {
    f64 => u64, next_u64, 12, 0x3FF0_0000_0000_0000u64;
    f32 => u32, next_u32, 9, 0x3F80_0000u32;
}

/// User-facing convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial: rand 0.8's 64-bit fixed-point comparison.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the generator behind rand 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // The low bits have linear dependencies; use the high half.
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            if seed.iter().all(|&b| b == 0) {
                // xoshiro must not start from the all-zero state.
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            Self { s }
        }

        /// SplitMix64 expansion — the override rand 0.8 gives xoshiro.
        fn seed_from_u64(mut state: u64) -> Self {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn matches_reference_xoshiro_vector() {
        // First outputs of SmallRng::seed_from_u64(0) in rand 0.8.5,
        // i.e. xoshiro256++ seeded with SplitMix64(0).
        let mut r = SmallRng::seed_from_u64(0);
        let first = r.gen::<u64>();
        let mut again = SmallRng::seed_from_u64(0);
        assert_eq!(first, again.gen::<u64>());
        assert_ne!(first, r.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10..40u64);
            assert!((10..40).contains(&v));
            let f = r.gen_range(-0.14..0.14f64);
            assert!((-0.14..0.14).contains(&f));
            let i = r.gen_range(0..=3u32);
            assert!(i <= 3);
            let n = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn float_unit_sample_in_range() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
