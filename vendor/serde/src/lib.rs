//! Offline mini-serde.
//!
//! The build environment cannot fetch crates, so the workspace vendors a
//! small serde replacement: a JSON-shaped [`Value`] data model, the
//! [`Serialize`] / [`Deserialize`] traits over it, and derive macros
//! (re-exported from the companion `serde_derive` crate) that generate
//! the externally-tagged representation real serde would. `serde_json`
//! (also vendored) renders and parses `Value` as JSON text.
//!
//! Only the API surface this workspace uses is implemented. Numbers keep
//! u64/i64/f64 fidelity so dataset round-trips are exact.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Array(Vec<Value>),
    /// Field order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

/// A number with integer/float fidelity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Ser/de error: a message string.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Num(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(Number::PosInt(n)) => {
                        <$ty>::try_from(*n).map_err(|_| Error::custom("integer out of range"))
                    }
                    Value::Num(Number::NegInt(_)) => Err(Error::custom("negative for unsigned")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($ty)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Num(Number::PosInt(n as u64))
                } else {
                    Value::Num(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(Number::PosInt(n)) => {
                        <$ty>::try_from(*n).map_err(|_| Error::custom("integer out of range"))
                    }
                    Value::Num(Number::NegInt(n)) => {
                        <$ty>::try_from(*n).map_err(|_| Error::custom("integer out of range"))
                    }
                    _ => Err(Error::custom(concat!("expected ", stringify!($ty)))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Num(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(Number::Float(f)) => Ok(*f as $ty),
                    Value::Num(Number::PosInt(n)) => Ok(*n as $ty),
                    Value::Num(Number::NegInt(n)) => Ok(*n as $ty),
                    _ => Err(Error::custom(concat!("expected ", stringify!($ty)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom("expected 3-element array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom(format!("expected {N}-element array")))
    }
}

impl<K: Serialize + std::fmt::Display, V: Serialize> Serialize
    for std::collections::BTreeMap<K, V>
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
