//! Derive macros for the vendored mini-serde.
//!
//! The offline build cannot fetch `syn`/`quote`, so these derives parse
//! the item's token stream by hand and emit the impl as source text. The
//! supported shape is exactly what this workspace uses: non-generic
//! structs with named fields, tuple structs, and enums whose variants are
//! unit, tuple, or struct-like. The only recognised attribute is
//! `#[serde(skip)]` on a named field (omitted on serialize, filled from
//! `Default::default()` on deserialize).
//!
//! The generated code targets the externally-tagged JSON data model of
//! real serde: structs become objects, unit variants become strings, and
//! data-carrying variants become single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    Struct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading attributes; returns true if any was `#[serde(skip)]`.
fn skip_attributes(it: &mut TokenIter) -> bool {
    let mut has_skip = false;
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        let Some(TokenTree::Group(g)) = it.next() else {
            panic!("expected attribute body after '#'");
        };
        let mut inner = g.stream().into_iter();
        if let Some(TokenTree::Ident(id)) = inner.next() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    let args = args.stream().to_string();
                    if args.split(',').any(|a| a.trim() == "skip") {
                        has_skip = true;
                    } else {
                        panic!("mini-serde supports only #[serde(skip)], got #[serde({args})]");
                    }
                }
            }
        }
    }
    has_skip
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_visibility(it: &mut TokenIter) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

/// Skips a type (or any token run) up to a top-level `,`, honouring
/// angle-bracket nesting; consumes the comma if present.
fn skip_past_comma(it: &mut TokenIter) {
    let mut depth = 0i32;
    while let Some(tt) = it.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                it.next();
                return;
            }
            _ => {}
        }
        it.next();
    }
}

/// Counts top-level comma-separated entries in a tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut it = stream.into_iter().peekable();
    if it.peek().is_none() {
        return 0;
    }
    let mut n = 1;
    let mut depth = 0i32;
    let mut trailing = true;
    for tt in it {
        trailing = false;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    n += 1;
                    trailing = true;
                }
                _ => {}
            }
        }
    }
    if trailing {
        n -= 1;
    }
    n
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = skip_attributes(&mut it);
        skip_visibility(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else {
            break;
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field {name}, got {other:?}"),
        }
        skip_past_comma(&mut it);
        fields.push(Field {
            name: name.to_string(),
            skip,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else {
            break;
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        skip_past_comma(&mut it);
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attributes(&mut it);
    skip_visibility(&mut it);
    let keyword = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum keyword, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("mini-serde derives do not support generic type {name}");
    }
    let kind = match (keyword.as_str(), it.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            ItemKind::Struct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            ItemKind::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => ItemKind::Struct(Vec::new()),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            ItemKind::Enum(parse_variants(g.stream()))
        }
        (kw, other) => panic!("unsupported item shape: {kw} {name} {other:?}"),
    };
    Item { name, kind }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Object(__fields)");
            s
        }
        ItemKind::TupleStruct(n) => {
            if *n == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "{ let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "__m.push((\"{n}\".to_string(), ::serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        inner.push_str("::serde::Value::Object(__m) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}\n"
    )
}

fn named_fields_ctor(source: &str, fields: &[Field], missing_ctx: &str) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            s.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else {
            s.push_str(&format!(
                "{n}: ::serde::Deserialize::from_value({src}.get(\"{n}\").ok_or_else(|| ::serde::Error::custom(\"missing field `{n}` in {ctx}\"))?)?,\n",
                n = f.name,
                src = source,
                ctx = missing_ctx
            ));
        }
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let ctor = named_fields_ctor("__v", fields, name);
            format!(
                "if !__v.is_object() {{ return Err(::serde::Error::custom(\"expected object for {name}\")); }}\nOk({name} {{\n{ctor}}})"
            )
        }
        ItemKind::TupleStruct(n) => {
            if *n == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let mut s = format!(
                    "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\nif __arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\nOk({name}("
                );
                for i in 0..*n {
                    s.push_str(&format!("::serde::Deserialize::from_value(&__arr[{i}])?, "));
                }
                s.push_str("))");
                s
            }
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"))
                    }
                    VariantKind::Tuple(n) => {
                        if *n == 1 {
                            keyed_arms.push_str(&format!(
                                "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                            ));
                        } else {
                            let mut arm = format!(
                                "\"{vn}\" => {{ let __arr = __inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\nif __arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\nreturn Ok({name}::{vn}("
                            );
                            for i in 0..*n {
                                arm.push_str(&format!(
                                    "::serde::Deserialize::from_value(&__arr[{i}])?, "
                                ));
                            }
                            arm.push_str(")); }\n");
                            keyed_arms.push_str(&arm);
                        }
                    }
                    VariantKind::Named(fields) => {
                        let ctor = named_fields_ctor("__inner", fields, &format!("{name}::{vn}"));
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{ if !__inner.is_object() {{ return Err(::serde::Error::custom(\"expected object for {name}::{vn}\")); }}\nreturn Ok({name}::{vn} {{\n{ctor}}}); }}\n"
                        ));
                    }
                }
            }
            format!(
                "if let Some(__s) = __v.as_str() {{\n match __s {{\n{unit_arms} _ => {{}}\n }}\n}}\nif let Some(__obj) = __v.as_object() {{\n if __obj.len() == 1 {{\n let (__k, __inner) = &__obj[0];\n match __k.as_str() {{\n{keyed_arms} _ => {{}}\n }}\n }}\n}}\nErr(::serde::Error::custom(\"unknown variant for {name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n {body}\n }}\n}}\n"
    )
}
