//! Offline mini serde_json over the vendored mini-serde [`Value`].
//!
//! Supports exactly what the workspace uses: `to_string`,
//! `to_string_pretty`, `from_str`, and `Result`. Floats are printed with
//! Rust's shortest round-trip formatting, so `from_str(to_string(x))`
//! reproduces every finite `f64` bit-exactly (the `float_roundtrip`
//! behaviour of real serde_json).

pub use serde::Error;
use serde::{Deserialize, Number, Serialize, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialises a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n)?,
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) -> Result<()> {
    use std::fmt::Write;
    match n {
        Number::PosInt(v) => write!(out, "{v}").unwrap(),
        Number::NegInt(v) => write!(out, "{v}").unwrap(),
        Number::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent non-finite floats"));
            }
            // Shortest round-trip representation; keep a float marker so
            // the text stays self-describing.
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom("expected ',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::custom("expected ',' or '}'")),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("short unicode escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad unicode escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad unicode escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad unicode scalar"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::custom("bad UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("expected value at byte {start}")));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Num(Number::NegInt(i)));
                    }
                    let _ = n;
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Num(Number::PosInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::Float(f)))
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["0", "42", "-17", "3.25", "true", "false", "null", "\"hi\""] {
            let v = parse_value(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0).unwrap();
            assert_eq!(out, text);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.0123f64, 87.125, 1.0 / 3.0, -93.2, 1e-12, 44.95123] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {text}");
        }
    }

    #[test]
    fn integral_floats_keep_a_marker() {
        assert_eq!(to_string(&92.0f64).unwrap(), "92.0");
        let back: f64 = from_str("92.0").unwrap();
        assert_eq!(back, 92.0);
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse_value(r#"{"a": [1, 2.5, {"b": null}], "c": "x\ny"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "x\ny");
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse_value(r#"{"k": [1, 2], "s": "v"}"#).unwrap();
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("tru").is_err());
        assert!(parse_value("1 2").is_err());
    }
}
